"""Tests for device profiles, Gumbel-Softmax quantization, and noise models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.codesign import (
    DetectorNoiseModel,
    DeviceProfile,
    FabricationVariation,
    PhaseNoiseModel,
    gumbel_softmax_probabilities,
    hard_assignment,
    ideal_profile,
    post_training_quantize,
    quantization_error,
    slm_profile,
    thz_mask_profile,
)


class TestDeviceProfile:
    def test_requires_at_least_two_levels(self):
        with pytest.raises(ValueError):
            DeviceProfile(phases=np.array([0.0]))

    def test_default_amplitudes_are_unity(self):
        profile = DeviceProfile(phases=np.linspace(0, np.pi, 4))
        np.testing.assert_allclose(profile.amplitudes, 1.0)

    def test_amplitude_shape_checked(self):
        with pytest.raises(ValueError):
            DeviceProfile(phases=np.zeros(4), amplitudes=np.ones(3))

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(phases=np.zeros(3), amplitudes=np.array([1.0, -0.1, 1.0]))

    def test_control_values_shape_checked(self):
        with pytest.raises(ValueError):
            DeviceProfile(phases=np.zeros(4), control_values=np.zeros(2))

    def test_complex_responses(self):
        profile = DeviceProfile(phases=np.array([0.0, np.pi / 2]), amplitudes=np.array([1.0, 0.5]))
        responses = profile.complex_responses()
        np.testing.assert_allclose(responses, [1.0, 0.5j], atol=1e-12)

    def test_phase_coverage(self):
        profile = ideal_profile(num_levels=4, coverage=2 * np.pi)
        assert profile.phase_coverage == pytest.approx(2 * np.pi * 3 / 4)

    def test_nearest_level_is_circular(self):
        profile = ideal_profile(num_levels=8)
        # A phase just below 2 pi is circularly closest to level 0.
        index = profile.nearest_level(np.array(2 * np.pi - 0.01))
        assert index == 0

    def test_control_for_levels_requires_calibration(self):
        profile = DeviceProfile(phases=np.linspace(0, 1, 4))
        with pytest.raises(ValueError):
            profile.control_for_levels(np.array([0, 1]))

    def test_slm_profile_monotonic_voltage(self):
        profile = slm_profile(num_levels=64)
        assert profile.control_unit == "V"
        assert np.all(np.diff(profile.control_values) > 0)
        assert profile.phase_coverage > np.pi  # close to 2 pi coverage

    def test_slm_profile_seeded_jitter_is_reproducible(self):
        a = slm_profile(num_levels=32, seed=1)
        b = slm_profile(num_levels=32, seed=1)
        np.testing.assert_allclose(a.phases, b.phases)

    def test_slm_profile_nonlinear_response(self):
        profile = slm_profile(num_levels=128, nonlinearity=0.3)
        steps = np.diff(profile.phases)
        # Nonlinear response: step sizes vary noticeably across the range.
        assert steps.max() > 1.5 * steps.min()

    def test_thz_mask_profile_thickness_calibration(self):
        profile = thz_mask_profile(num_levels=8, wavelength=400e-6, refractive_index=1.7)
        assert profile.control_unit == "m"
        # One full wave of phase at the maximum printable thickness step.
        np.testing.assert_allclose(profile.phases[-1], 2 * np.pi * 7 / 8, rtol=1e-6)


class TestGumbelSoftmax:
    def test_probabilities_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(4, 4, 6)))
        probabilities = gumbel_softmax_probabilities(logits, rng=rng)
        np.testing.assert_allclose(probabilities.data.sum(axis=-1), 1.0)

    def test_deterministic_without_rng(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)))
        a = gumbel_softmax_probabilities(logits).data
        b = gumbel_softmax_probabilities(logits).data
        np.testing.assert_allclose(a, b)

    def test_temperature_sharpens_distribution(self, rng):
        logits = Tensor(rng.normal(size=(10, 4)))
        hot = gumbel_softmax_probabilities(logits, temperature=5.0).data
        cold = gumbel_softmax_probabilities(logits, temperature=0.1).data
        assert cold.max(axis=-1).mean() > hot.max(axis=-1).mean()

    def test_invalid_temperature_rejected(self, rng):
        with pytest.raises(ValueError):
            gumbel_softmax_probabilities(Tensor(rng.normal(size=(2, 3))), temperature=0.0)

    def test_gradients_flow_through_probabilities(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        weights = rng.normal(size=(3, 4))
        (gumbel_softmax_probabilities(logits) * Tensor(weights)).sum().backward()
        assert logits.grad is not None

    def test_hard_assignment_matches_argmax(self, rng):
        logits = rng.normal(size=(5, 7))
        np.testing.assert_array_equal(hard_assignment(logits), logits.argmax(axis=-1))


class TestPostTrainingQuantization:
    def test_quantized_values_are_levels(self, rng):
        levels = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        phase = rng.uniform(0, 2 * np.pi, size=(8, 8))
        quantized = post_training_quantize(phase, levels)
        assert set(np.unique(quantized)).issubset(set(levels))

    def test_error_decreases_with_more_levels(self, rng):
        phase = rng.uniform(0, 2 * np.pi, size=(16, 16))
        coarse = quantization_error(phase, np.linspace(0, 2 * np.pi, 4, endpoint=False))
        fine = quantization_error(phase, np.linspace(0, 2 * np.pi, 64, endpoint=False))
        assert fine < coarse

    def test_error_zero_when_phase_on_levels(self):
        levels = np.linspace(0, 2 * np.pi, 8, endpoint=False)
        assert quantization_error(levels.copy(), levels) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=64))
    def test_error_bounded_by_half_step(self, num_levels):
        levels = np.linspace(0, 2 * np.pi, num_levels, endpoint=False)
        phase = np.random.default_rng(0).uniform(0, 2 * np.pi, size=64)
        error = quantization_error(phase, levels)
        assert error <= (np.pi / num_levels) + 1e-9


class TestNoiseModels:
    def test_detector_noise_level_zero_is_identity(self, rng):
        pattern = rng.uniform(size=(8, 8))
        noisy = DetectorNoiseModel(level=0.0).apply(pattern)
        np.testing.assert_allclose(noisy, pattern)

    def test_detector_noise_bounded(self, rng):
        pattern = rng.uniform(size=(16, 16))
        noisy = DetectorNoiseModel(level=0.05, seed=0).apply(pattern)
        assert np.all(noisy >= 0)
        assert np.all(noisy - pattern <= 0.05 * pattern.max() + 1e-12)

    def test_detector_noise_negative_level_rejected(self):
        with pytest.raises(ValueError):
            DetectorNoiseModel(level=-0.1)

    def test_phase_noise_statistics(self):
        model = PhaseNoiseModel(sigma=0.1, bias=0.5, seed=0)
        phase = np.zeros((64, 64))
        noisy = model.apply(phase)
        assert noisy.mean() == pytest.approx(0.5, abs=0.02)
        assert noisy.std() == pytest.approx(0.1, rel=0.15)

    def test_phase_noise_zero_is_copy(self):
        phase = np.ones((4, 4))
        noisy = PhaseNoiseModel().apply(phase)
        np.testing.assert_allclose(noisy, phase)
        assert noisy is not phase

    def test_phase_noise_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PhaseNoiseModel(sigma=-1.0)

    def test_fabrication_variation_frozen_by_seed(self):
        variation = FabricationVariation(amplitude_sigma=0.05, phase_sigma=0.1, seed=3)
        a = variation.sample((8, 8))
        b = variation.sample((8, 8))
        np.testing.assert_allclose(a, b)

    def test_fabrication_variation_magnitude_close_to_one(self):
        sample = FabricationVariation(amplitude_sigma=0.02, phase_sigma=0.02, seed=0).sample((32, 32))
        assert np.abs(sample).mean() == pytest.approx(1.0, abs=0.01)

    def test_fabrication_variation_zero_is_identity(self):
        sample = FabricationVariation().sample((4, 4))
        np.testing.assert_allclose(sample, 1.0)
