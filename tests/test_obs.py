"""Tests for ``repro.obs``: spans, tracing, metrics exposition, logging.

Four layers of coverage:

* pure units -- :class:`Span`/:class:`Trace` mechanics, the trace buffer's
  ring + slow-exemplar retention, sampling, the fixed-bucket histogram,
  the Prometheus writer, the JSON logger, and the single-sort
  ``PercentileWindow.quantiles`` consistency contract;
* exposition strictness -- ``GET /metrics`` passes a Prometheus
  line-grammar check and ``/v1/traces`` parses as *strict* JSON both
  under zero traffic and while a replica worker is crash-restarting;
* the ``X-Request-Id`` contract -- every response path echoes the id,
  including refusals answered before routing;
* the acceptance end-to-end: one HTTP request through the gateway to a
  ``SocketTransport`` remote worker yields one stitched trace whose
  per-hop spans tile the measured end-to-end latency within 10%.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import re
import signal
import time

import numpy as np
import pytest

from repro.cluster import ReplicaGroup, WorkerServer
from repro.engine import compile as engine_compile
from repro.gateway import Gateway, GatewayClient, GatewayError, GatewayLimits
from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.obs import (
    Histogram,
    JsonLogger,
    MetricsWriter,
    Span,
    Trace,
    TraceBuffer,
    Tracer,
    current_trace,
    get_logger,
    render_server_metrics,
    set_tracer,
    use_trace,
)
from repro.serve import InferenceServer
from repro.serve.metrics import PercentileWindow

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _tiny_model() -> DONN:
    config = DONNConfig(
        sys_size=16, pixel_size=36e-6, distance=0.05, num_layers=2, num_classes=4, approx="fresnel", seed=3
    )
    return DONN(config)


class FakeSession:
    """Echo session: doubles every payload."""

    input_shape = (4, 4)
    kind = "classifier"

    def run(self, batch, batch_size=None):
        return np.asarray(batch) * 2.0


@pytest.fixture()
def fresh_tracer():
    """Install an isolated tracer for the test; restore the old one after."""
    from repro.obs.tracer import get_tracer

    previous = get_tracer()
    tracer = set_tracer(Tracer())
    yield tracer
    set_tracer(previous)


def _strict_json(blob: bytes):
    """Parse refusing NaN/Infinity -- the wire must carry strict JSON."""
    return json.loads(
        blob.decode("utf-8"),
        parse_constant=lambda token: pytest.fail(f"non-strict JSON token {token!r} on the wire"),
    )


async def _raw_request(port: int, payload: bytes):
    """Fire raw bytes at the gateway; returns ``(status, headers, raw body)``."""
    from repro.gateway.codec import read_response

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        status, headers, body = await asyncio.wait_for(read_response(reader), 10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, headers, body


def _http(method: str, path: str, body: bytes = b"", extra_headers: str = "") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(body)}\r\n"
        f"{extra_headers}\r\n"
    ).encode() + body


# ---------------------------------------------------------------------- #
# Units: spans and traces
# ---------------------------------------------------------------------- #
class TestSpanTrace:
    def test_span_end_is_idempotent_and_attrs_chain(self):
        span = Span("x", start_s=10.0)
        assert not span.ended
        span.end(11.0)
        span.end(99.0)  # first end wins
        assert span.end_s == 11.0
        assert span.duration_ms == pytest.approx(1000.0)
        assert span.set(a=1).set(b=2) is span
        assert span.attrs == {"a": 1, "b": 2}

    def test_trace_finish_closes_every_open_span(self):
        trace = Trace("t1", "request")
        child = trace.span("serve.queue")
        trace.finish(error="boom")
        assert trace.finished
        assert child.ended and child.end_s == trace.root.end_s
        assert trace.root.attrs["error"] == "boom"

    def test_as_dict_offsets_are_relative_to_root(self):
        trace = Trace("t2")
        base = trace.root.start_s
        trace.span("a", start_s=base + 0.010).end(base + 0.030)
        trace.finish()
        frozen = trace.as_dict()
        assert frozen["trace_id"] == "t2" and frozen["finished"]
        (a,) = [s for s in frozen["spans"] if s["name"] == "a"]
        assert a["start_ms"] == pytest.approx(10.0, abs=1e-6)
        assert a["duration_ms"] == pytest.approx(20.0, abs=1e-6)
        assert a["parent_id"] == trace.root.span_id

    def test_span_cap_counts_dropped(self):
        from repro.obs.trace import MAX_SPANS_PER_TRACE

        trace = Trace()
        for index in range(MAX_SPANS_PER_TRACE + 5):
            trace.span(f"s{index}")
        assert len(trace.spans) == MAX_SPANS_PER_TRACE
        assert trace.dropped == 6  # root occupies one slot
        assert trace.as_dict()["dropped_spans"] == 6

    def test_use_trace_installs_and_restores(self):
        trace = Trace()
        assert current_trace() is None
        with use_trace(trace):
            assert current_trace() is trace
        assert current_trace() is None


# ---------------------------------------------------------------------- #
# Units: buffer, sampling
# ---------------------------------------------------------------------- #
def _finished_trace(trace_id: str, duration_s: float) -> Trace:
    trace = Trace(trace_id)
    trace.root.end(trace.root.start_s + duration_s)
    trace.finished = True
    return trace


class TestTraceBuffer:
    def test_ring_evicts_fifo_but_slow_exemplars_survive(self):
        buffer = TraceBuffer(capacity=4, slow_keep=2)
        buffer.add(_finished_trace("slowest", 9.0))
        for index in range(10):
            buffer.add(_finished_trace(f"fast{index}", 0.001))
        # "slowest" churned out of the ring long ago, but the exemplar
        # heap pinned it.  ("fast0" is pinned too -- the heap fills with
        # the first slow_keep arrivals -- so probe one that never was.)
        assert buffer.get("slowest") is not None
        assert buffer.get("fast2") is None
        assert len(buffer) == 4
        assert buffer.evicted == 7

    def test_slowest_ranks_worst_first(self):
        buffer = TraceBuffer(capacity=8, slow_keep=4)
        for trace_id, duration in [("a", 0.2), ("b", 0.9), ("c", 0.5)]:
            buffer.add(_finished_trace(trace_id, duration))
        ranked = [t["trace_id"] for t in buffer.slowest(2)]
        assert ranked == ["b", "c"]

    def test_recent_is_newest_first(self):
        buffer = TraceBuffer(capacity=8)
        for trace_id in ["a", "b", "c"]:
            buffer.add(_finished_trace(trace_id, 0.1))
        assert [t["trace_id"] for t in buffer.recent(2)] == ["c", "b"]


class TestTracer:
    def test_sample_rate_zero_allocates_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.trace() is None
        tracer.finish(None)  # no-op by contract
        snap = tracer.snapshot()
        assert snap["sampled_out"] == 1 and snap["started"] == 0 and snap["finished"] == 0

    def test_sample_rate_one_traces_everything(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.trace(trace_id="rid-1")
        assert trace is not None and trace.trace_id == "rid-1"
        tracer.finish(trace)
        assert tracer.get("rid-1") is not None
        assert tracer.snapshot()["finished"] == 1

    def test_fractional_sampling_is_a_coin_flip(self):
        import random

        tracer = Tracer(sample_rate=0.5, rng=random.Random(7))
        outcomes = [tracer.trace() is not None for _ in range(200)]
        assert 40 < sum(outcomes) < 160  # loose: both sides happen

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


# ---------------------------------------------------------------------- #
# Units: histogram + writer + quantiles
# ---------------------------------------------------------------------- #
class TestHistogram:
    def test_bucketing_and_cumulative(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in [0.5, 5.0, 50.0, 500.0]:
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.cumulative() == [1, 2, 3, 4]
        assert hist.count == 4 and hist.sum == pytest.approx(555.5)

    def test_non_finite_observations_are_dropped(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(float("nan"))
        hist.observe(float("inf"))
        assert hist.count == 0 and hist.sum == 0.0

    def test_boundary_lands_in_le_bucket(self):
        hist = Histogram(bounds=(10.0, 20.0))
        hist.observe(10.0)
        assert hist.counts[0] == 1  # le="10.0" includes 10.0


#: One Prometheus exposition line: a comment header or a sample.
_PROM_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|"
    r"[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\",?)*\})?"
    r" [-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf)"
    r")$"
)


def _check_prom_grammar(text: str) -> None:
    assert text.endswith("\n")
    assert "NaN" not in text
    for line in text.rstrip("\n").split("\n"):
        assert _PROM_LINE.match(line), f"bad exposition line: {line!r}"


class TestMetricsWriter:
    def test_nan_and_none_never_reach_the_wire(self):
        writer = MetricsWriter()
        writer.gauge("g", "a gauge", float("nan"))
        writer.gauge("g", "a gauge", None)
        writer.gauge("g", "a gauge", 1.5)
        text = writer.render()
        assert text.count("\ng ") == 1  # only the finite sample
        _check_prom_grammar(text)

    def test_header_emitted_once_and_labels_escaped(self):
        writer = MetricsWriter()
        writer.counter("c_total", "a counter", 1, {"model": 'we"ird\nname'})
        writer.counter("c_total", "a counter", 2, {"model": "plain"})
        text = writer.render()
        assert text.count("# TYPE c_total counter") == 1
        assert r"\"ird" in text and r"\n" in text

    def test_histogram_rendering_has_inf_bucket_sum_count(self):
        writer = MetricsWriter()
        hist = Histogram(bounds=(1.0, 10.0))
        hist.observe(5.0)
        writer.histogram("h_ms", "a histogram", hist, {"model": "m"})
        text = writer.render()
        assert 'h_ms_bucket{model="m",le="+Inf"} 1' in text
        assert 'h_ms_count{model="m"} 1' in text
        _check_prom_grammar(text)

    def test_render_server_metrics_over_empty_stats_is_clean(self):
        from repro.serve.metrics import BatcherStats

        text = render_server_metrics({"idle": BatcherStats()}, tracer=Tracer())
        # A cold window contributes no quantile gauges -- and no NaN.
        assert "repro_request_latency_quantile_ms" not in text
        assert 'repro_submitted_total{model="idle"} 0' in text
        _check_prom_grammar(text)


class TestPercentileWindowQuantiles:
    def test_quantiles_match_np_percentile_exactly(self):
        rng = np.random.default_rng(11)
        window = PercentileWindow(capacity=512)
        for value in rng.random(700) * 100.0:
            window.record(value)
        qs = (50, 95, 99)
        got = window.quantiles(qs)
        expected = tuple(window.percentile(q) for q in qs)
        assert got == pytest.approx(expected, abs=0.0)  # bit-exact vs np.percentile

    def test_quantiles_consistent_within_one_call(self):
        window = PercentileWindow(capacity=64)
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            window.record(value)
        p50, p95, p99 = window.quantiles((50, 95, 99))
        assert p50 <= p95 <= p99
        assert p50 == 3.0 and p99 == pytest.approx(4.96)

    def test_empty_window_answers_nan(self):
        window = PercentileWindow(capacity=4)
        assert all(math.isnan(v) for v in window.quantiles((50, 99)))


# ---------------------------------------------------------------------- #
# Units: the JSON logger
# ---------------------------------------------------------------------- #
class TestJsonLogger:
    def test_records_carry_event_fields_and_level(self, caplog):
        logger = JsonLogger("repro.obs.test1", keep=8)
        with caplog.at_level("INFO", logger="repro.obs.test1"):
            logger.info("unit.event", answer=42)
        (record,) = logger.records("unit.event")
        assert record["answer"] == 42 and record["level"] == "info"
        line = caplog.records[-1].getMessage()
        assert json.loads(line)["event"] == "unit.event"

    def test_trace_id_attached_automatically_in_scope(self):
        logger = JsonLogger("repro.obs.test2")
        trace = Trace("tid-9")
        with use_trace(trace):
            record = logger.warning("unit.scoped")
        assert record["trace_id"] == "tid-9"
        assert "trace_id" not in logger.info("unit.unscoped")

    def test_unserializable_values_are_stringified_not_raised(self):
        logger = JsonLogger("repro.obs.test3")
        record = logger.info("unit.weird", payload=object())
        assert "object object" in json.dumps(record, default=str)

    def test_ring_is_bounded(self):
        logger = JsonLogger("repro.obs.test4", keep=3)
        for index in range(10):
            logger.info("unit.ring", index=index)
        records = logger.records("unit.ring")
        assert len(records) == 3 and records[0]["index"] == 7

    def test_cluster_restart_emits_structured_event(self):
        spec = engine_compile(_tiny_model(), backend="numpy").to_spec()
        get_logger().clear()
        with ReplicaGroup(spec, replicas=1, restart_backoff_s=0.05, name="obslog") as group:
            os.kill(group._by_index[0].pid, signal.SIGKILL)
            group._schedule_restart(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if get_logger().records("cluster.replica_restarted"):
                    break
                time.sleep(0.05)
        (record,) = get_logger().records("cluster.replica_restarted")[:1]
        assert record["group"] == "obslog" and record["replica"] == 0


# ---------------------------------------------------------------------- #
# Exposition endpoints: strictness under zero traffic and mid-crash
# ---------------------------------------------------------------------- #
class TestExpositionEndpoints:
    def test_metrics_and_traces_under_zero_traffic(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                metrics = await _raw_request(gateway.port, _http("GET", "/metrics"))
                traces = await _raw_request(gateway.port, _http("GET", "/v1/traces"))
                missing = await _raw_request(gateway.port, _http("GET", "/v1/traces/nope"))
            return metrics, traces, missing

        metrics, traces, missing = asyncio.run(scenario())
        status, headers, body = metrics
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        _check_prom_grammar(text)
        assert 'repro_submitted_total{model="echo"} 0' in text
        assert "repro_obs_sample_rate 1" in text

        status, _, body = traces
        assert status == 200
        parsed = _strict_json(body)
        assert parsed == {"traces": [], "order": "recent", "count": 0}

        status, _, body = missing
        assert status == 404
        assert _strict_json(body)["error"]["type"] == "trace_not_found"

    def test_metrics_strict_during_crash_restart(self, fresh_tracer):
        spec = engine_compile(_tiny_model(), backend="numpy").to_spec()

        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            group = ReplicaGroup(spec, replicas=1, restart_backoff_s=5.0, name="donn")
            server.add_model("donn", group)
            async with Gateway(server, port=0) as gateway:
                # Kill the worker and scrape while the replica is down /
                # restarting: the exposition must stay strict.
                os.kill(group._by_index[0].pid, signal.SIGKILL)
                group._schedule_restart(0)
                metrics = await _raw_request(gateway.port, _http("GET", "/metrics"))
                stats = await _raw_request(gateway.port, _http("GET", "/v1/stats"))
                traces = await _raw_request(gateway.port, _http("GET", "/v1/traces?slow=3"))
            return metrics, stats, traces

        metrics, stats, traces = asyncio.run(scenario())
        status, _, body = metrics
        assert status == 200
        text = body.decode("utf-8")
        _check_prom_grammar(text)
        assert 'repro_replica_restarts_total{model="donn",replica="0"}' in text

        status, _, body = stats
        assert status == 200
        _strict_json(body)  # NaN percentiles must have been scrubbed

        status, _, body = traces
        assert status == 200
        assert _strict_json(body)["order"] == "slowest"

    def test_traces_query_validation(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                bad_key = await _raw_request(gateway.port, _http("GET", "/v1/traces?deep=1"))
                bad_val = await _raw_request(gateway.port, _http("GET", "/v1/traces?slow=soon"))
            return bad_key, bad_val

        bad_key, bad_val = asyncio.run(scenario())
        assert bad_key[0] == 400 and bad_val[0] == 400


# ---------------------------------------------------------------------- #
# The X-Request-Id contract
# ---------------------------------------------------------------------- #
class TestRequestIdEcho:
    def test_every_routed_path_echoes_or_mints(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            payload = json.dumps({"input": np.ones((4, 4)).tolist()}).encode()
            async with Gateway(server, port=0) as gateway:
                ok = await _raw_request(
                    gateway.port,
                    _http("POST", "/v1/models/echo/infer", payload, "X-Request-Id: rid-echo-1\r\n"),
                )
                minted = await _raw_request(gateway.port, _http("GET", "/healthz"))
                not_found = await _raw_request(gateway.port, _http("GET", "/nope"))
                wrong_method = await _raw_request(gateway.port, _http("DELETE", "/v1/models"))
                bad_json = await _raw_request(
                    gateway.port,
                    _http("POST", "/v1/models/echo/infer", b"{", "X-Request-Id: rid-echo-2\r\n"),
                )
                unknown_model = await _raw_request(
                    gateway.port, _http("POST", "/v1/models/ghost/infer", payload)
                )
                parse_error = await _raw_request(gateway.port, b"NONSENSE\r\n\r\n")
            return ok, minted, not_found, wrong_method, bad_json, unknown_model, parse_error

        ok, minted, not_found, wrong_method, bad_json, unknown_model, parse_error = asyncio.run(
            scenario()
        )
        assert ok[0] == 200 and ok[1]["x-request-id"] == "rid-echo-1"
        assert minted[0] == 200 and len(minted[1]["x-request-id"]) == 32
        assert not_found[0] == 404 and not_found[1]["x-request-id"]
        assert wrong_method[0] == 405 and wrong_method[1]["x-request-id"]
        assert bad_json[0] == 400 and bad_json[1]["x-request-id"] == "rid-echo-2"
        assert unknown_model[0] == 404 and unknown_model[1]["x-request-id"]
        assert parse_error[0] == 400 and parse_error[1]["x-request-id"]

    def test_connection_refusal_before_routing_carries_an_id(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            limits = GatewayLimits(max_connections=1, retry_after_s=2.0)
            async with Gateway(server, port=0, limits=limits) as gateway:
                # Hold the only connection slot open, then knock again.
                reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
                try:
                    refused = await _raw_request(gateway.port, _http("GET", "/healthz"))
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
            return refused

        status, headers, body = asyncio.run(scenario())
        assert status == 503
        assert len(headers["x-request-id"]) == 32
        assert headers["retry-after"] == "2"
        assert _strict_json(body)["error"]["type"] == "too_many_connections"

    def test_client_surfaces_request_id_on_failure(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    with pytest.raises(GatewayError) as info:
                        await client.trace("never-seen")
                    try:
                        await client.infer("ghost", np.ones((4, 4)), request_id="rid-ghost")
                    except Exception as exc:  # noqa: BLE001 - mapped type under test
                        mapped = exc
            return info.value, mapped

        gateway_error, mapped = asyncio.run(scenario())
        assert gateway_error.error_type == "trace_not_found"
        assert gateway_error.request_id and len(gateway_error.request_id) == 32
        assert mapped.request_id == "rid-ghost"


# ---------------------------------------------------------------------- #
# Acceptance: one stitched trace across gateway -> socket worker
# ---------------------------------------------------------------------- #
class TestEndToEndTrace:
    def test_remote_worker_trace_tiles_the_request_latency(self, fresh_tracer):
        spec = engine_compile(_tiny_model(), backend="numpy").to_spec()
        rid = "e2e-trace-0001"
        image = np.random.default_rng(0).random((16, 16))

        async def scenario():
            with WorkerServer(port=0) as worker:
                worker.serve_in_thread()
                server = InferenceServer(max_batch=4, max_wait_ms=1.0)
                # handicap_s pads the worker call so the dispatch hop
                # dominates -- the trace must show that, not hide it.
                group = ReplicaGroup(
                    spec, replicas=0, workers=[worker.address], handicaps={0: 0.05}, name="donn"
                )
                server.add_model("donn", group)
                async with Gateway(server, port=0) as gateway:
                    async with GatewayClient(port=gateway.port) as client:
                        started = time.perf_counter()
                        result = await client.infer("donn", image, request_id=rid)
                        measured_s = time.perf_counter() - started
                        frozen = await client.trace(rid)
            return result, measured_s, frozen

        result, measured_s, frozen = asyncio.run(scenario())
        assert result.shape == (4,)
        assert frozen["trace_id"] == rid and frozen["finished"]

        spans = {span["name"]: span for span in frozen["spans"]}
        for name in (
            "request",
            "gateway.decode",
            "serve.queue",
            "serve.batch",
            "serve.dispatch",
            "worker.compute",
            "gateway.encode",
        ):
            assert name in spans, f"missing span {name!r} in {sorted(spans)}"

        dispatch = spans["serve.dispatch"]
        compute = spans["worker.compute"]
        # The stitched worker span sits inside the parent's dispatch
        # window, is anchored at its end, and reflects the remote pid.
        assert compute["parent_id"] == dispatch["span_id"]
        assert compute["start_ms"] >= dispatch["start_ms"] - 1e-6
        assert compute["duration_ms"] > 0.0
        assert (
            compute["start_ms"] + compute["duration_ms"]
            <= dispatch["start_ms"] + dispatch["duration_ms"] + 1e-6
        )
        # The handicap attr only exists on the worker side of the socket:
        # its presence proves the obs payload crossed the wire rather
        # than being reconstructed locally.  (The in-thread WorkerServer
        # shares our pid, so pid inequality is not assertable here.)
        assert compute["attrs"]["handicap_ms"] == pytest.approx(50.0)
        assert "pid" in compute["attrs"]
        assert dispatch["attrs"]["replica"] == 0
        assert dispatch["attrs"]["transport"].startswith("socket(")

        # The per-hop spans tile the request: decode + queue + dispatch +
        # encode must account for the root duration within 10%.
        hop_sum = sum(
            spans[name]["duration_ms"]
            for name in ("gateway.decode", "serve.queue", "serve.dispatch", "gateway.encode")
        )
        root_ms = frozen["duration_ms"]
        assert root_ms > 45.0  # the handicap alone guarantees this
        assert abs(hop_sum - root_ms) <= 0.10 * root_ms, (
            f"span sum {hop_sum:.2f}ms vs root {root_ms:.2f}ms"
        )
        # And the trace's root tracks the out-of-process measurement.
        assert root_ms <= measured_s * 1000.0

    def test_inline_path_still_stitches_a_compute_span(self, fresh_tracer):
        rid = "inline-trace-01"

        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    await client.infer("echo", np.ones((4, 4)), request_id=rid)
                    return await client.trace(rid)

        frozen = asyncio.run(scenario())
        spans = {span["name"]: span for span in frozen["spans"]}
        assert spans["worker.compute"]["attrs"]["inline"] is True
        assert spans["worker.compute"]["attrs"]["pid"] == os.getpid()
        assert spans["serve.batch"]["attrs"]["batch_size"] >= 1

    def test_batch_fusion_shares_one_batch_span(self, fresh_tracer):
        async def scenario():
            server = InferenceServer(max_batch=8, max_wait_ms=20.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    rids = ["fused-a", "fused-b"]
                    await asyncio.gather(
                        *(
                            client.infer("echo", np.ones((4, 4)), request_id=rid)
                            for rid in rids
                        )
                    )
                    return [await client.trace(rid) for rid in rids]

        first, second = asyncio.run(scenario())
        batch_ids = {
            span["span_id"]
            for frozen in (first, second)
            for span in frozen["spans"]
            if span["name"] == "serve.batch"
        }
        # Either the two requests fused (one shared span object -- same
        # id in both traces) or they ran as two batches (two ids); both
        # are legal schedules, but a shared batch must share the id.
        fused = any(
            span["attrs"]["batch_size"] == 2
            for frozen in (first, second)
            for span in frozen["spans"]
            if span["name"] == "serve.batch"
        )
        if fused:
            assert len(batch_ids) == 1

    def test_sampled_out_requests_cost_no_trace(self, fresh_tracer):
        set_tracer(Tracer(sample_rate=0.0))

        async def scenario():
            server = InferenceServer(max_batch=4, max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    await client.infer("echo", np.ones((4, 4)), request_id="ghost-rid")
                    with pytest.raises(GatewayError):
                        await client.trace("ghost-rid")
                    return await _raw_request(gateway.port, _http("GET", "/metrics"))

        status, _, body = asyncio.run(scenario())
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_obs_traces_sampled_out_total 1" in text
        assert "repro_obs_sample_rate 0" in text
