"""Tests for the scalar-diffraction propagators (the physics IR of the framework)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.optics import (
    DirectIntegrationPropagator,
    FraunhoferPropagator,
    FresnelPropagator,
    RayleighSommerfeldPropagator,
    SpatialGrid,
    fresnel_number,
    make_propagator,
)
from repro.optics.elements import circular_aperture
from repro.optics.propagation import APPROXIMATIONS


@pytest.fixture(scope="module")
def optical_grid():
    # 64 x 10 um pixels = 0.64 mm aperture, visible light.
    return SpatialGrid(size=64, pixel_size=10e-6)


@pytest.fixture(scope="module")
def gaussian_field(optical_grid):
    x, y = optical_grid.coordinates
    waist = optical_grid.extent / 6
    field = np.exp(-(x**2 + y**2) / waist**2).astype(complex)
    return Tensor(field)


WAVELENGTH = 532e-9


class TestFactory:
    def test_all_registered_names_construct(self, optical_grid):
        for name in set(APPROXIMATIONS):
            propagator = make_propagator(name, optical_grid, WAVELENGTH, 0.01)
            assert propagator.grid is optical_grid

    def test_unknown_name_rejected(self, optical_grid):
        with pytest.raises(ValueError):
            make_propagator("fdtd", optical_grid, WAVELENGTH, 0.01)

    def test_invalid_parameters_rejected(self, optical_grid):
        with pytest.raises(ValueError):
            RayleighSommerfeldPropagator(optical_grid, wavelength=-1.0, distance=0.01)
        with pytest.raises(ValueError):
            RayleighSommerfeldPropagator(optical_grid, wavelength=WAVELENGTH, distance=0.0)
        with pytest.raises(ValueError):
            RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.01, pad_factor=0)

    def test_field_shape_mismatch_rejected(self, optical_grid):
        propagator = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.01)
        with pytest.raises(ValueError):
            propagator(Tensor(np.zeros((16, 16), dtype=complex)))

    def test_fresnel_number_definition(self):
        assert fresnel_number(1e-3, 500e-9, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            fresnel_number(1e-3, 500e-9, 0.0)


class TestRayleighSommerfeld:
    def test_energy_conserved_for_propagating_field(self, optical_grid, gaussian_field):
        """The angular-spectrum transfer function is unitary for propagating waves."""
        propagator = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.005)
        output = propagator(gaussian_field)
        energy_in = float(gaussian_field.abs2().sum().data)
        energy_out = float(output.abs2().sum().data)
        assert energy_out == pytest.approx(energy_in, rel=1e-6)

    def test_zero_distance_limit_is_identity_like(self, optical_grid, gaussian_field):
        propagator = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 1e-9)
        output = propagator(gaussian_field)
        np.testing.assert_allclose(np.abs(output.data), np.abs(gaussian_field.data), atol=1e-6)

    def test_beam_spreads_with_distance(self, optical_grid, gaussian_field):
        """Diffraction must widen a finite beam as it propagates."""

        def beam_width(field):
            intensity = np.abs(field) ** 2
            x, _ = optical_grid.coordinates
            return np.sqrt((intensity * x**2).sum() / intensity.sum())

        near = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.002)(gaussian_field)
        far = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.02)(gaussian_field)
        assert beam_width(far.data) > beam_width(near.data) > beam_width(gaussian_field.data) * 0.99

    def test_batched_propagation_matches_single(self, optical_grid, gaussian_field, rng):
        other = Tensor(rng.normal(size=optical_grid.shape) + 1j * rng.normal(size=optical_grid.shape))
        propagator = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.01)
        import repro.autograd.ops as ops

        batch = ops.stack([gaussian_field, other])
        batched = propagator(batch)
        np.testing.assert_allclose(batched.data[0], propagator(gaussian_field).data, atol=1e-10)
        np.testing.assert_allclose(batched.data[1], propagator(other).data, atol=1e-10)

    def test_linearity(self, optical_grid, gaussian_field, rng):
        other = Tensor(rng.normal(size=optical_grid.shape) + 1j * rng.normal(size=optical_grid.shape))
        propagator = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.01)
        combined = propagator(gaussian_field * 2.0 + other)
        separate = propagator(gaussian_field) * 2.0 + propagator(other)
        np.testing.assert_allclose(combined.data, separate.data, atol=1e-10)

    def test_padding_reduces_wraparound(self, optical_grid):
        """With a field that hits the window edge, padding changes (improves) the result."""
        x, y = optical_grid.coordinates
        field = Tensor((np.abs(x) < optical_grid.extent / 2.2).astype(complex))
        unpadded = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.02, pad_factor=1)(field)
        padded = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, 0.02, pad_factor=2)(field)
        assert padded.shape == unpadded.shape
        difference = np.abs(padded.data - unpadded.data).max()
        assert difference > 1e-6  # wrap-around is present and padding suppressed it

    def test_gradcheck_through_propagator(self):
        grid = SpatialGrid(size=6, pixel_size=10e-6)
        propagator = RayleighSommerfeldPropagator(grid, WAVELENGTH, 0.001)
        field = Tensor(np.random.default_rng(0).normal(size=(6, 6)).astype(complex), requires_grad=True)
        weights = np.random.default_rng(1).normal(size=(6, 6))
        assert check_gradients(lambda f: (propagator(f).abs2() * weights).sum(), [field], atol=1e-6)


class TestFresnelAgainstRayleighSommerfeld:
    def test_paraxial_agreement(self, optical_grid, gaussian_field):
        """In the paraxial regime Fresnel and RS must produce nearly identical patterns."""
        distance = 0.05  # far enough that angles are tiny for a 0.64 mm aperture
        rs = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, distance)(gaussian_field)
        fresnel = FresnelPropagator(optical_grid, WAVELENGTH, distance)(gaussian_field)
        intensity_rs = rs.abs2().data
        intensity_fr = fresnel.abs2().data
        correlation = np.corrcoef(intensity_rs.ravel(), intensity_fr.ravel())[0, 1]
        assert correlation > 0.999

    def test_fresnel_energy_conserved(self, optical_grid, gaussian_field):
        fresnel = FresnelPropagator(optical_grid, WAVELENGTH, 0.05)(gaussian_field)
        assert float(fresnel.abs2().sum().data) == pytest.approx(float(gaussian_field.abs2().sum().data), rel=1e-6)

    def test_validity_condition_improves_with_distance(self, optical_grid):
        near = FresnelPropagator(optical_grid, WAVELENGTH, 1e-6)
        far = FresnelPropagator(optical_grid, WAVELENGTH, 0.5)
        assert far.validity_condition()
        assert not near.validity_condition()


class TestDirectIntegrationCrossCheck:
    def test_direct_matches_angular_spectrum(self, optical_grid, gaussian_field):
        """Eq. 1 evaluated by convolution must agree with the transfer-function kernel.

        This is the numerical-fidelity cross-check: two independent
        evaluations of the same physics.
        """
        distance = 0.01
        spectral = RayleighSommerfeldPropagator(optical_grid, WAVELENGTH, distance, pad_factor=2)(gaussian_field)
        direct = DirectIntegrationPropagator(optical_grid, WAVELENGTH, distance, pad_factor=2)(gaussian_field)
        intensity_a = spectral.abs2().data
        intensity_b = direct.abs2().data
        correlation = np.corrcoef(intensity_a.ravel(), intensity_b.ravel())[0, 1]
        assert correlation > 0.99
        # Total power should agree to within a few percent as well.
        assert intensity_b.sum() == pytest.approx(intensity_a.sum(), rel=0.05)


class TestFraunhofer:
    def test_far_field_of_gaussian_is_gaussian(self, optical_grid, gaussian_field):
        propagator = FraunhoferPropagator(optical_grid, WAVELENGTH, 10.0)
        output = propagator(gaussian_field).abs2().data
        centre = optical_grid.size // 2
        assert output[centre, centre] == pytest.approx(output.max())

    def test_output_pixel_size(self, optical_grid):
        propagator = FraunhoferPropagator(optical_grid, WAVELENGTH, 1.0)
        expected = WAVELENGTH * 1.0 / optical_grid.extent
        assert propagator.output_pixel_size == pytest.approx(expected)

    def test_far_field_of_aperture_has_airy_like_rings(self, optical_grid):
        aperture = Tensor(circular_aperture(optical_grid, radius_fraction=0.3).astype(complex))
        output = FraunhoferPropagator(optical_grid, WAVELENGTH, 10.0)(aperture).abs2().data
        centre = optical_grid.size // 2
        profile = output[centre, centre:]
        # Intensity must fall from the central lobe and then rise again (first ring).
        first_minimum = np.argmin(profile[: optical_grid.size // 4])
        assert first_minimum > 0
        assert profile[first_minimum:].max() > profile[first_minimum] * 2

    def test_validity_condition_far_field_only(self, optical_grid):
        assert not FraunhoferPropagator(optical_grid, WAVELENGTH, 0.01).validity_condition()
        assert FraunhoferPropagator(optical_grid, WAVELENGTH, 1e4).validity_condition()

    def test_shape_mismatch_rejected(self, optical_grid):
        propagator = FraunhoferPropagator(optical_grid, WAVELENGTH, 1.0)
        with pytest.raises(ValueError):
            propagator(Tensor(np.zeros((8, 8), dtype=complex)))
