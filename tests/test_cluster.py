"""Tests for ``repro.cluster``: specs, shm transport, routers, replica groups.

Process-spawning tests share one module-scoped 2-replica group over a
tiny DONN so the suite pays the spawn+compile cost once.  Every test that
wounds the fleet (kills a worker) waits for recovery before returning,
keeping the fixture healthy for whoever runs next.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import (
    LeastLoadedRouter,
    NoReplicaAvailableError,
    PowerOfTwoChoicesRouter,
    ReplicaCrashError,
    ReplicaGroup,
    ReplicaView,
    RoundRobinRouter,
    ShmArena,
    ShmReader,
    make_router,
)
from repro.engine import InferenceSession, SessionSpec
from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.serve import DynamicBatcher, InferenceServer, ServerClosedError, SLOAwarePolicy

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _tiny_model() -> DONN:
    config = DONNConfig(
        sys_size=16, pixel_size=36e-6, distance=0.05, num_layers=2, num_classes=4, approx="fresnel", seed=3
    )
    return DONN(config)


@pytest.fixture(scope="module")
def tiny_session() -> InferenceSession:
    return _tiny_model().export_session(batch_size=32, backend="numpy")


@pytest.fixture(scope="module")
def group(tiny_session) -> ReplicaGroup:
    spec = tiny_session.to_spec()
    group = ReplicaGroup(spec, replicas=2, router="round_robin", max_retries=2, call_timeout_s=30.0)
    group.start()
    yield group
    group.close()


def _wait_until(predicate, timeout_s: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.05)


# --------------------------------------------------------------------- #
# SessionSpec
# --------------------------------------------------------------------- #
class TestSessionSpec:
    def test_round_trip_matches_export_session_exactly(self, tiny_session, rng):
        """spec.build() in-process reproduces the originating session."""
        spec = tiny_session.to_spec()
        rebuilt = spec.build()
        images = rng.uniform(size=(6, 16, 16))
        np.testing.assert_allclose(rebuilt.run(images), tiny_session.run(images), atol=1e-10)

    def test_spec_records_resolved_session_options(self, tiny_session):
        spec = tiny_session.to_spec()
        assert spec.backend == "numpy"  # resolved, never "auto"
        assert spec.dtype == "complex128"
        assert spec.batch_size == 32
        assert spec.model_type == "DONN"

    def test_spec_survives_pickle(self, tiny_session, rng):
        """The spec itself must cross process boundaries (spawn pickles it)."""
        import pickle

        spec = pickle.loads(pickle.dumps(tiny_session.to_spec()))
        images = rng.uniform(size=(2, 16, 16))
        np.testing.assert_allclose(spec.build().run(images), tiny_session.run(images), atol=1e-10)

    def test_spec_reflects_snapshot_not_later_training(self, rng):
        """to_spec() must rebuild the weights the session *compiled*, not
        whatever the live model trained to afterwards -- otherwise cluster
        replicas silently diverge from the in-process session."""
        model = _tiny_model()
        session = model.export_session(backend="numpy")
        images = rng.uniform(size=(3, 16, 16))
        frozen = session.run(images)
        for parameter in model.parameters():
            # Non-uniform perturbation: a constant phase offset would be a
            # global phase factor, invisible to detector intensity.
            parameter.data = parameter.data + rng.uniform(0.0, 1.0, size=parameter.data.shape)
        rebuilt = session.to_spec().build()
        np.testing.assert_allclose(rebuilt.run(images), frozen, atol=1e-10)
        # refresh() re-snapshots: now the spec follows the new weights.
        session.refresh()
        refreshed = session.to_spec().build()
        np.testing.assert_allclose(refreshed.run(images), session.run(images), atol=1e-10)
        assert np.abs(refreshed.run(images) - frozen).max() > 1e-6

    def test_unpicklable_model_is_refused(self):
        class Weird:
            def export_session(self):  # pragma: no cover - never called
                raise AssertionError

            def __reduce__(self):
                raise TypeError("nope")

        with pytest.raises(TypeError, match="failed to pickle"):
            SessionSpec.from_model(Weird())


# --------------------------------------------------------------------- #
# Shared-memory transport (no processes: arena and reader in one address space)
# --------------------------------------------------------------------- #
class TestShmTransport:
    def test_write_take_round_trip(self, rng):
        arena, reader = ShmArena(), ShmReader()
        try:
            array = rng.uniform(size=(3, 7, 5))
            ref = arena.write(array)
            out = reader.take(ref)
            np.testing.assert_array_equal(out, array)
            assert out.base is None or out.flags.owndata or not np.shares_memory(out, reader.view(ref))
        finally:
            reader.close()
            arena.close()

    def test_arena_grows_and_renames_only_when_needed(self, rng):
        arena, reader = ShmArena(min_bytes=256), ShmReader()
        try:
            small = rng.uniform(size=(4,))
            name_one = arena.write(small)[0]
            name_two = arena.write(small * 2)[0]
            assert name_one == name_two, "steady-state writes must reuse the block"
            big = rng.uniform(size=(4096,))
            ref_big = arena.write(big)
            assert ref_big[0] != name_one, "outgrown arena must reallocate"
            np.testing.assert_array_equal(reader.take(ref_big), big)
        finally:
            reader.close()
            arena.close()

    def test_view_is_zero_copy(self, rng):
        arena, reader = ShmArena(), ShmReader()
        try:
            array = rng.uniform(size=(8, 8))
            ref = arena.write(array)
            view = reader.view(ref)
            assert not view.flags.owndata
            np.testing.assert_array_equal(view, array)
        finally:
            reader.close()
            arena.close()


# --------------------------------------------------------------------- #
# Routers (pure decision logic)
# --------------------------------------------------------------------- #
def _views(*triples):
    """(alive, in_flight, ewma_ms) triples -> ReplicaView list."""
    return [
        ReplicaView(index=i, alive=alive, in_flight=depth, ewma_latency_ms=ewma)
        for i, (alive, depth, ewma) in enumerate(triples)
    ]


class TestRouters:
    def test_round_robin_cycles_alive_replicas(self):
        router = RoundRobinRouter()
        views = _views((True, 0, 1.0), (False, 0, 1.0), (True, 0, 1.0))
        picks = [router.select(views) for _ in range(4)]
        assert picks == [0, 2, 0, 2], "dead replica must be skipped, others cycled"

    def test_least_loaded_prefers_shallow_queue_then_fast_ewma(self):
        router = LeastLoadedRouter()
        assert router.select(_views((True, 2, 1.0), (True, 0, 9.0), (True, 1, 1.0))) == 1
        # Equal depth: the structurally faster replica wins.
        assert router.select(_views((True, 1, 9.0), (True, 1, 2.0))) == 1

    def test_power_of_two_picks_better_of_its_pair(self):
        router = PowerOfTwoChoicesRouter(seed=0)
        views = _views((True, 5, 1.0), (True, 0, 1.0), (True, 5, 1.0))
        # Whatever pair is sampled, index 1 wins any pair it appears in;
        # over many draws it must dominate the heavily loaded replicas.
        picks = [router.select(views) for _ in range(50)]
        assert picks.count(1) > 25

    def test_exclusion_and_exhaustion(self):
        router = LeastLoadedRouter()
        views = _views((True, 0, 1.0), (True, 1, 1.0))
        assert router.select(views, exclude={0}) == 1
        with pytest.raises(NoReplicaAvailableError):
            router.select(views, exclude={0, 1})
        with pytest.raises(NoReplicaAvailableError):
            router.select(_views((False, 0, 1.0)))

    def test_make_router_resolves_names_and_instances(self):
        assert make_router("least_loaded").name == "least_loaded"
        instance = RoundRobinRouter()
        assert make_router(instance) is instance
        with pytest.raises(ValueError, match="unknown router"):
            make_router("fastest_replica_wins")
        with pytest.raises(ValueError, match="router options"):
            make_router(instance, seed=1)


# --------------------------------------------------------------------- #
# Restart-backoff bookkeeping (pure, fake clock -- no processes)
# --------------------------------------------------------------------- #
class TestRestartBackoffClock:
    def _replica(self, tiny_session, clock):
        from repro.cluster.replica import Replica

        return Replica(
            tiny_session.to_spec(),
            index=0,
            restart_backoff_s=0.5,
            restart_backoff_cap_s=30.0,
            clock=clock,
        )

    def test_backoff_ladder_walks_production_delays_without_sleeping(self, tiny_session):
        """The default 0.5 s -> 30 s ladder, asserted on a fake timeline."""
        now = {"t": 1000.0}
        replica = self._replica(tiny_session, lambda: now["t"])
        delays = [replica.note_restart_failure() for _ in range(8)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]
        assert replica.restart_not_before == pytest.approx(1000.0 + 30.0)
        now["t"] += 12.0  # the window tracks the injected clock, not wall time
        assert replica.note_restart_failure() == 30.0
        assert replica.restart_not_before == pytest.approx(1012.0 + 30.0)

    def test_clock_defaults_to_wall_monotonic(self, tiny_session):
        from repro.cluster.replica import Replica

        replica = Replica(tiny_session.to_spec(), index=0, restart_backoff_s=0.5)
        assert replica.clock is time.monotonic
        before = time.monotonic()
        replica.note_restart_failure()
        assert replica.restart_not_before >= before + 0.5


# --------------------------------------------------------------------- #
# Replica groups (real spawned workers)
# --------------------------------------------------------------------- #
class TestReplicaGroup:
    def test_cluster_dispatch_matches_in_process_engine(self, group, tiny_session, rng):
        """The acceptance criterion: logit parity at 1e-10 for float64."""
        images = rng.uniform(size=(9, 16, 16))
        reference = tiny_session.run(images)
        np.testing.assert_allclose(group.infer_sync(images), reference, atol=1e-10)
        np.testing.assert_allclose(asyncio.run(group.infer(images)), reference, atol=1e-10)

    def test_handshake_metadata_and_empty_batch(self, group):
        assert group.kind == "classifier"
        assert group.input_shape == (16, 16)
        empty = group.run(np.empty((0, 16, 16)))
        assert empty.shape == (0, 4)
        with pytest.raises(RuntimeError, match="asynchronously"):
            group.run(np.zeros((1, 16, 16)))

    def test_requests_spread_across_replicas(self, group, rng):
        images = rng.uniform(size=(2, 16, 16))
        before = [replica["dispatched"] for replica in group.stats()]
        for _ in range(4):
            group.infer_sync(images)
        gained = [after["dispatched"] - b for after, b in zip(group.stats(), before)]
        assert sum(gained) == 4
        assert all(g > 0 for g in gained), f"round robin must touch every replica, got {gained}"

    def test_worker_crash_recovery_no_client_hang(self, group, tiny_session, rng):
        """Kill a replica mid-load: traffic keeps completing, the group
        restarts the dead worker, and no caller hangs."""
        images = rng.uniform(size=(4, 16, 16))
        reference = tiny_session.run(images)
        victim = group._replicas[0]
        os.kill(victim.pid, signal.SIGKILL)
        _wait_until(lambda: not victim.alive, what="the killed worker to be seen dead")
        for _ in range(6):  # every call answered correctly while one replica is down
            np.testing.assert_allclose(group.infer_sync(images), reference, atol=1e-10)
        _wait_until(lambda: victim.alive, what="the background restart")
        assert victim.restarts >= 1
        np.testing.assert_allclose(group.infer_sync(images), reference, atol=1e-10)

    def test_crash_mid_call_retries_on_another_replica(self, group, tiny_session, rng):
        """A worker dying *while serving* must not surface to the caller."""
        images = rng.uniform(size=(3, 16, 16))
        reference = tiny_session.run(images)
        victim = group._replicas[1]
        pid = victim.pid

        # Kill the worker the moment it goes busy, from a helper thread.
        import threading

        def assassin():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if victim.in_flight > 0 and victim.pid == pid:
                    os.kill(pid, signal.SIGKILL)
                    return
                time.sleep(0.0005)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        for _ in range(8):
            np.testing.assert_allclose(group.infer_sync(images), reference, atol=1e-10)
        thread.join(timeout=10.0)
        _wait_until(lambda: all(replica.alive for replica in group._replicas), what="fleet recovery")

    def test_all_replicas_dead_is_bounded_error_not_hang(self, tiny_session):
        solo = ReplicaGroup(tiny_session.to_spec(), replicas=1, max_retries=1, name="doomed")
        solo.start()
        try:
            os.kill(solo._replicas[0].pid, signal.SIGKILL)
            _wait_until(lambda: not solo._replicas[0].alive, what="worker death")
            started = time.monotonic()
            with pytest.raises((ReplicaCrashError, NoReplicaAvailableError)):
                solo.infer_sync(np.zeros((1, 16, 16)))
            assert time.monotonic() - started < 10.0, "failure must be prompt, not a hang"
        finally:
            solo.close()

    def test_check_health_reports_and_restarts(self, group):
        assert group.check_health(restart_dead=False) == [True, True]
        victim = group._replicas[1]
        os.kill(victim.pid, signal.SIGKILL)
        _wait_until(lambda: not victim.alive, what="worker death")
        health = group.check_health(restart_dead=True)
        assert health[1] is False, "health list reports pre-restart state"
        _wait_until(lambda: victim.alive, what="health-check restart")
        assert group.check_health(restart_dead=False) == [True, True]

    def test_rescue_uses_idle_replica_only(self, group, tiny_session, rng):
        image = rng.uniform(size=(16, 16))
        row = group.rescue_sync(image)
        np.testing.assert_allclose(row, tiny_session.run(image[None])[0], atol=1e-10)
        for replica in group._replicas:
            replica.in_flight += 1  # simulate a fully busy fleet
        try:
            with pytest.raises(NoReplicaAvailableError):
                group.rescue_sync(image)
        finally:
            for replica in group._replicas:
                replica.in_flight -= 1

    def test_handicapped_replica_shows_slower_ewma(self, tiny_session, rng):
        """The asymmetry hook: a handicapped replica's EWMA must reflect it."""
        slow = ReplicaGroup(
            tiny_session.to_spec(),
            replicas=2,
            router="round_robin",
            handicaps={0: 0.05},
            name="asym",
        )
        with slow:
            images = rng.uniform(size=(2, 16, 16))
            for _ in range(6):
                slow.infer_sync(images)
            stats = slow.stats()
            assert stats[0]["handicap_ms"] == pytest.approx(50.0)
            assert stats[0]["ewma_latency_ms"] > stats[1]["ewma_latency_ms"] + 40.0

    def test_failed_start_leaves_group_retryable(self):
        """A startup failure must tear down booted workers but not brick
        the group -- a transient miss should be retryable."""
        from repro.cluster import WorkerStartupError

        broken_spec = SessionSpec.from_model("not a model")  # workers cannot compile this
        group = ReplicaGroup(broken_spec, replicas=1, name="transient")
        with pytest.raises(WorkerStartupError):
            group.start()
        assert not group.started, "failed start must not report started"
        with pytest.raises(WorkerStartupError):
            group.start()  # retry reaches the workers again, not a 'closed' error
        group.close()

    def test_router_instance_shared_across_cluster_models_refused(self, tiny_session):
        router = LeastLoadedRouter()
        server = InferenceServer()
        server.add_model("one", tiny_session, replicas=2, router=router)
        with pytest.raises(TypeError, match="already serving"):
            server.add_model("two", tiny_session, replicas=2, router=router)

    def test_failed_add_does_not_lock_router_instance(self, tiny_session):
        """A router instance from an add that failed must stay usable."""
        router = LeastLoadedRouter()
        server = InferenceServer()
        with pytest.raises(TypeError, match="cannot shard"):
            server.add_model("bad", object(), replicas=2, router=router)
        server.add_model("duplicate", tiny_session)
        with pytest.raises(ValueError, match="already registered"):
            server.add_model("duplicate", tiny_session, replicas=2, router=router)
        server.add_model("good", tiny_session, replicas=2, router=router)  # no stale owner

    def test_failed_server_start_closes_sibling_groups(self, tiny_session):
        """When one group's startup fails, siblings' already-spawned
        workers must be reclaimed even though __aexit__ never runs."""
        from repro.cluster import WorkerStartupError

        good = ReplicaGroup(tiny_session.to_spec(), replicas=1, name="good")
        bad = ReplicaGroup(SessionSpec.from_model("not a model"), replicas=1, name="bad")
        server = InferenceServer()
        server.add_model("good", good)
        server.add_model("bad", bad)

        async def scenario():
            async with server:  # __aenter__ raises; __aexit__ never runs
                raise AssertionError("start must fail")

        with pytest.raises(WorkerStartupError):
            asyncio.run(scenario())
        # close() joins each worker; a pid still attached would mean a leak.
        assert all(not replica.alive and replica.pid is None for replica in good._replicas), (
            "sibling workers leaked"
        )
        with pytest.raises(ServerClosedError):
            asyncio.run(server.start())  # startup failure is terminal for the server

    def test_replace_swaps_cluster_model_for_in_process_session(self, tiny_session, rng):
        """replace=True from a cluster model to an in-process session must
        drop (and close) the displaced group, not keep serving through it."""
        server = InferenceServer()
        server.add_model("m", tiny_session, replicas=2)
        displaced = server._groups["m"]
        server.add_model("m", tiny_session, replace=True)  # back to in-process
        assert "m" not in server._groups, "stale group would shadow the new session"
        assert not displaced.started

        image = rng.uniform(size=(16, 16))

        async def scenario():
            async with server:
                result = await server.submit("m", image)
                return result, server.stats()["m"].replicas

        result, replicas = asyncio.run(scenario())
        np.testing.assert_allclose(result, tiny_session.run(image[None])[0], atol=1e-10)
        assert replicas is None, "in-process model must not report replica breakdowns"

    def test_close_terminates_workers_and_refuses_traffic(self, tiny_session):
        doomed = ReplicaGroup(tiny_session.to_spec(), replicas=1, name="closing")
        doomed.start()
        pid = doomed._replicas[0].pid
        doomed.close()
        _wait_until(lambda: not _pid_alive(pid), what="worker process exit")
        with pytest.raises(ReplicaCrashError, match="closed"):
            doomed.infer_sync(np.zeros((1, 16, 16)))
        doomed.close()  # idempotent


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user zombie
        return True
    return True


# --------------------------------------------------------------------- #
# Serving integration (InferenceServer(replicas=N))
# --------------------------------------------------------------------- #
class TestServerIntegration:
    @pytest.fixture(scope="class")
    def served(self, tiny_session):
        """One started cluster server shared by the class (spawn is slow)."""
        server = InferenceServer(replicas=2, router="least_loaded", max_wait_ms=1.0)
        server.add_model("digits", tiny_session)
        loop = asyncio.new_event_loop()
        loop.run_until_complete(server.start())
        yield loop, server
        loop.run_until_complete(server.close())
        loop.close()

    def test_submits_are_served_by_worker_processes_with_parity(self, served, tiny_session, rng):
        loop, server = served
        images = rng.uniform(size=(5, 16, 16))
        results = loop.run_until_complete(server.submit_many("digits", list(images)))
        np.testing.assert_allclose(results, tiny_session.run(images), atol=1e-10)
        replicas = server.stats()["digits"].replicas
        assert replicas is not None and len(replicas) == 2
        assert sum(r["dispatched"] for r in replicas) >= 1

    def test_stats_dict_carries_per_replica_breakdown(self, served):
        _, server = served
        snapshot = server.stats()["digits"].as_dict()
        assert "replicas" in snapshot
        for row in snapshot["replicas"]:
            assert {"replica", "alive", "in_flight", "dispatched", "restarts", "ewma_latency_ms"} <= set(row)

    def test_dispatched_batches_pipeline_across_replicas(self, tiny_session, rng):
        """With N replicas, N batches must compute concurrently -- the
        whole point of sharding.  Two sleepy replicas serving four
        one-request batches take ~2 sleeps when pipelined, ~4 when not."""
        group = ReplicaGroup(
            tiny_session.to_spec(), replicas=2, handicaps={0: 0.2, 1: 0.2}, name="pipeline"
        )

        async def scenario():
            server = InferenceServer(max_batch=1, max_wait_ms=0.0)
            server.add_model("m", group)
            async with server:
                images = rng.uniform(size=(4, 16, 16))
                started = time.perf_counter()
                await asyncio.gather(*(server.submit("m", image) for image in images))
                return time.perf_counter() - started

        elapsed = asyncio.run(scenario())
        assert elapsed < 0.65, f"4 batches on 2 replicas took {elapsed:.2f}s -- dispatch serialized"

    def test_group_workers_die_with_server_close(self, tiny_session, rng):
        """The graceful-shutdown satellite: close() drains in-flight
        requests and terminates every worker before returning."""

        async def scenario():
            server = InferenceServer(replicas=2, max_wait_ms=1.0)
            server.add_model("digits", tiny_session)
            await server.start()
            pids = [row["pid"] for row in server.stats()["digits"].replicas]
            images = rng.uniform(size=(12, 16, 16))
            pending = [asyncio.ensure_future(server.submit("digits", image)) for image in images]
            await asyncio.sleep(0)  # enqueue them all before the shutdown begins
            await server.close()
            results = await asyncio.gather(*pending, return_exceptions=True)
            return pids, images, results

        pids, images, results = asyncio.run(scenario())
        errors = [r for r in results if isinstance(r, BaseException)]
        assert not errors, f"close() must drain, not drop: {errors[:2]}"
        reference = _tiny_model().export_session(backend="numpy").run(images)
        np.testing.assert_allclose(np.stack(results), reference, atol=1e-10)
        for pid in pids:
            _wait_until(lambda: not _pid_alive(pid), timeout_s=10.0, what=f"worker {pid} exit")


# --------------------------------------------------------------------- #
# Shed-retry hook (no processes: fakes exercise the batcher seam)
# --------------------------------------------------------------------- #
class TestShedRetryHook:
    def test_shed_request_is_rescued_once(self):
        """An expired request goes to the hook instead of failing."""

        class NeverAdmit(SLOAwarePolicy):
            def admit(self, request, now):
                return False

        rescued = []

        async def hook(payload):
            rescued.append(payload)
            return np.asarray(payload) * 3.0

        class Echo:
            def run(self, batch, batch_size=None):  # pragma: no cover - never admitted
                return np.asarray(batch)

        async def scenario():
            batcher = DynamicBatcher(
                Echo(), policy=NeverAdmit(slo_ms=5.0), shed_retry=hook, run_in_executor=False
            )
            batcher.start()
            result = await batcher.submit(np.ones((2, 2)))
            await batcher.stop()
            return result, batcher.stats()

        result, stats = asyncio.run(scenario())
        np.testing.assert_array_equal(result, np.full((2, 2), 3.0))
        assert len(rescued) == 1
        assert stats.shed_retried == 1 and stats.shed_recovered == 1
        assert stats.deadline_missed == 0

    def test_explicit_caller_budget_is_never_rescued(self):
        """submit(slo_ms=...) promises DeadlineExceededError on expiry;
        a late rescued result must not masquerade as success."""
        from repro.serve import DeadlineExceededError

        class NeverAdmit(SLOAwarePolicy):
            def admit(self, request, now):
                return False

        rescued = []

        async def hook(payload):  # pragma: no cover - must never run
            rescued.append(payload)
            return np.asarray(payload)

        class Echo:
            def run(self, batch, batch_size=None):  # pragma: no cover - never admitted
                return np.asarray(batch)

        async def scenario():
            batcher = DynamicBatcher(
                Echo(), policy=NeverAdmit(slo_ms=5.0), shed_retry=hook, run_in_executor=False
            )
            batcher.start()
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(np.ones((2, 2)), slo_ms=5.0)
            await batcher.stop()
            return batcher.stats()

        stats = asyncio.run(scenario())
        assert not rescued, "explicit budgets must fail hard, not be rescued"
        assert stats.shed_retried == 0 and stats.deadline_missed == 1

    def test_failed_rescue_surfaces_deadline_error(self):
        from repro.serve import DeadlineExceededError

        class NeverAdmit(SLOAwarePolicy):
            def admit(self, request, now):
                return False

        async def hook(payload):
            raise NoReplicaAvailableError("everyone is busy")

        class Echo:
            def run(self, batch, batch_size=None):  # pragma: no cover - never admitted
                return np.asarray(batch)

        async def scenario():
            batcher = DynamicBatcher(
                Echo(), policy=NeverAdmit(slo_ms=5.0), shed_retry=hook, run_in_executor=False
            )
            batcher.start()
            with pytest.raises(DeadlineExceededError, match="rescue"):
                await batcher.submit(np.ones((2, 2)))
            await batcher.stop()
            return batcher.stats()

        stats = asyncio.run(scenario())
        assert stats.shed_retried == 1 and stats.shed_recovered == 0
        assert stats.deadline_missed == 1
