"""Tests for the optical nonlinearity extension layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.layers.nonlinearity import (
    KerrPhaseLayer,
    NonlinearLayer,
    SaturableAbsorber,
    make_nonlinearity,
)
from repro.models import DONN, DONNConfig


def _field(rng, shape=(4, 4)):
    return Tensor(rng.normal(size=shape) + 1j * rng.normal(size=shape))


class TestSaturableAbsorber:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SaturableAbsorber(saturation_intensity=0.0)
        with pytest.raises(ValueError):
            SaturableAbsorber(linear_transmission=0.0)
        with pytest.raises(ValueError):
            SaturableAbsorber(linear_transmission=1.5)

    def test_weak_light_attenuated_more_than_strong(self, rng):
        absorber = SaturableAbsorber(saturation_intensity=1.0, linear_transmission=0.1)
        weak = Tensor(np.full((4, 4), 0.01 + 0j))
        strong = Tensor(np.full((4, 4), 10.0 + 0j))
        weak_ratio = float((absorber(weak).abs2().sum() / weak.abs2().sum()).data)
        strong_ratio = float((absorber(strong).abs2().sum() / strong.abs2().sum()).data)
        assert weak_ratio < strong_ratio
        assert strong_ratio <= 1.0 + 1e-9

    def test_transmission_bounded(self, rng):
        absorber = SaturableAbsorber()
        out = absorber(_field(rng))
        ratio = out.abs2().data / np.maximum(_field(rng).abs2().data, 1e-12)
        assert np.all(out.abs2().data <= _field(rng, (4, 4)).abs2().data.max() * 10)

    def test_phase_preserved(self, rng):
        absorber = SaturableAbsorber()
        field = _field(rng)
        out = absorber(field)
        np.testing.assert_allclose(np.angle(out.data), np.angle(field.data), atol=1e-9)

    def test_gradients_flow_through(self, rng):
        absorber = SaturableAbsorber()
        field = Tensor(rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3)), requires_grad=True)
        assert check_gradients(lambda f: absorber(f).abs2().sum(), [field], atol=1e-5)

    def test_acts_as_activation_in_a_donn_stack(self, rng):
        """A DONN followed by a saturable absorber still produces valid logits."""
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=2, det_size=4, seed=0)
        model = DONN(config)
        absorber = SaturableAbsorber(saturation_intensity=0.5)
        field = model.encode(rng.uniform(size=(2, 32, 32)))
        for layer in model.diffractive_layers:
            field = absorber(layer(field))
        logits = model.detector(model.final_propagator(field))
        assert logits.shape == (2, 10)
        assert np.all(logits.data.real >= 0)


class TestKerrPhaseLayer:
    def test_intensity_preserved(self, rng):
        layer = KerrPhaseLayer(nonlinear_coefficient=2.0)
        field = _field(rng)
        np.testing.assert_allclose(layer(field).abs2().data, field.abs2().data, rtol=1e-10)

    def test_phase_shift_proportional_to_intensity(self):
        layer = KerrPhaseLayer(nonlinear_coefficient=0.5)
        field = Tensor(np.array([[2.0 + 0j]]))  # intensity 4 -> phase shift 2 rad
        out = layer(field)
        assert np.angle(out.data[0, 0]) == pytest.approx(0.5 * 4.0, abs=1e-9)

    def test_zero_coefficient_is_identity(self, rng):
        layer = KerrPhaseLayer(nonlinear_coefficient=0.0)
        field = _field(rng)
        np.testing.assert_allclose(layer(field).data, field.data)

    def test_gradients_flow_through(self, rng):
        layer = KerrPhaseLayer(nonlinear_coefficient=0.3)
        field = Tensor(rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3)), requires_grad=True)
        target = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        assert check_gradients(lambda f: (layer(f) - Tensor(target)).abs2().sum(), [field], atol=1e-5)


class TestNumpyEvalPath:
    """apply_numpy (the engine compilation hook) must match forward exactly."""

    @pytest.mark.parametrize(
        "layer",
        [SaturableAbsorber(saturation_intensity=0.7, linear_transmission=0.2), KerrPhaseLayer(0.8)],
        ids=["saturable", "kerr"],
    )
    def test_apply_numpy_matches_forward(self, layer, rng):
        field = rng.normal(size=(3, 5, 5)) + 1j * rng.normal(size=(3, 5, 5))
        autograd_out = layer(Tensor(field)).data
        np.testing.assert_allclose(layer.apply_numpy(field), autograd_out, atol=1e-12)

    @pytest.mark.parametrize(
        "layer", [SaturableAbsorber(), KerrPhaseLayer(0.5)], ids=["saturable", "kerr"]
    )
    def test_apply_numpy_preserves_complex64(self, layer, rng):
        field = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))).astype(np.complex64)
        out = layer.apply_numpy(field)
        assert out.dtype == np.complex64

    def test_base_class_is_abstract(self, rng):
        field = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        with pytest.raises(NotImplementedError):
            NonlinearLayer().apply_numpy(field)


class TestMakeNonlinearity:
    def test_resolves_names_and_instances(self):
        assert isinstance(make_nonlinearity("saturable"), SaturableAbsorber)
        assert isinstance(make_nonlinearity("kerr", nonlinear_coefficient=0.2), KerrPhaseLayer)
        layer = KerrPhaseLayer(0.3)
        assert make_nonlinearity(layer) is layer

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown nonlinearity"):
            make_nonlinearity("relu")

    def test_models_accept_nonlinearity_and_gradients_flow(self, rng):
        config = DONNConfig(sys_size=16, pixel_size=36e-6, distance=0.05, num_layers=2, num_classes=4, det_size=2, seed=0)
        model = DONN(config, nonlinearity="saturable")
        assert isinstance(model.nonlinearity, SaturableAbsorber)
        logits = model(rng.uniform(size=(2, 16, 16)))
        logits.sum().backward()
        grads = [layer.phase.grad for layer in model.diffractive_layers]
        assert all(g is not None and np.any(g != 0) for g in grads)
