"""Cross-module integration tests: full pipelines exercised end to end."""

import numpy as np
import pytest

from repro import DONN, DONNConfig, Trainer
from repro.autograd import Tensor, no_grad
from repro.baselines import LightPipesEmulator
from repro.baselines.regularization import build_regularized_donn
from repro.codesign import slm_profile
from repro.dsl import build_donn
from repro.hardware import HardwareTestbench, to_system
from repro.train import evaluate_classifier
from repro.utils import load_model_into, save_model


class TestTrainSaveDeployPipeline:
    """Train -> save -> reload -> deploy, checking consistency at each hop."""

    @pytest.fixture(scope="class")
    def trained(self, small_config, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        model = build_regularized_donn(small_config, train_x[:8])
        Trainer(model, num_classes=10, learning_rate=0.5, batch_size=25, seed=0).fit(train_x, train_y, epochs=4)
        return model

    def test_reloaded_model_reproduces_predictions(self, trained, small_config, tiny_digits, tmp_path):
        test_x = tiny_digits[2][:10]
        path = save_model(trained, tmp_path / "donn.npz")
        clone = DONN(trained.config)
        load_model_into(clone, path)
        np.testing.assert_array_equal(trained.predict(test_x), clone.predict(test_x))

    def test_deployment_records_match_trained_phases(self, trained):
        profile = slm_profile(num_levels=256)
        records = to_system(trained, profile)
        for record, phase in zip(records, trained.phase_patterns()):
            error = np.abs(np.angle(np.exp(1j * (record["phases"] - phase))))
            assert error.max() < 0.1  # 256 levels quantise finely

    def test_hardware_deployment_close_to_simulation(self, trained, tiny_digits):
        test_x, test_y = tiny_digits[2][:30], tiny_digits[3][:30]
        report = HardwareTestbench(trained, profile=slm_profile(num_levels=256), seed=0).report(test_x, test_y)
        assert abs(report.accuracy_gap) <= 0.15
        assert report.pattern_correlation > 0.9

    def test_trained_model_beats_untrained(self, trained, small_config, tiny_digits):
        test_x, test_y = tiny_digits[2], tiny_digits[3]
        untrained = DONN(small_config)
        assert evaluate_classifier(trained, test_x, test_y) > evaluate_classifier(untrained, test_x, test_y)


class TestEmulatorConsistency:
    """The optimised kernels, the LightPipes reference and the deployed hardware
    must all describe the same optical system."""

    def test_codesign_hard_deployment_equals_reference_emulation(self, tiny_digits):
        config = DONNConfig(
            sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=2, det_size=4, seed=1, amplitude_factor=1.0
        )
        profile = slm_profile(num_levels=32)
        model = DONN(config, device_profile=profile)
        model.eval()
        image = tiny_digits[0][:1]

        # Reference emulation using the hard (deployed) modulations.
        emulator = LightPipesEmulator(config.grid, config.wavelength, config.distance)
        field = model.encode(image).data[0]
        current = field
        for layer in model.diffractive_layers:
            current = emulator.propagate(current) * layer.hard_modulation()
        reference_intensity = np.abs(emulator.propagate(current)) ** 2

        # The same hard modulations applied through the tensor kernels.
        with no_grad():
            tensor_field = model.encode(image)
            for layer in model.diffractive_layers:
                tensor_field = layer.propagator(tensor_field) * Tensor(layer.hard_modulation())
            optimised_intensity = model.final_propagator(tensor_field).abs2().data[0]

        np.testing.assert_allclose(optimised_intensity, reference_intensity, atol=1e-8)

    def test_dsl_built_model_matches_direct_construction(self, tiny_digits):
        spec = {
            "sys_size": 32,
            "pixel_size": 36e-6,
            "distance": 0.05,
            "wavelength": 532e-9,
            "num_layers": 2,
            "num_classes": 10,
            "det_size": 4,
            "seed": 7,
        }
        from_dsl = build_donn(spec)
        direct = DONN(DONNConfig(**spec))
        np.testing.assert_allclose(
            from_dsl(tiny_digits[0][:2]).data, direct(tiny_digits[0][:2]).data, rtol=1e-12
        )


class TestCodesignTemperature:
    def test_config_validates_temperature(self):
        with pytest.raises(ValueError):
            DONNConfig(codesign_temperature=0.0)

    def test_temperature_propagates_to_layers(self, small_config):
        config = small_config.with_updates(codesign_temperature=0.25)
        model = DONN(config, device_profile=slm_profile(num_levels=16))
        assert all(layer.temperature == 0.25 for layer in model.diffractive_layers)

    def test_lower_temperature_gives_sharper_soft_hard_agreement(self, small_config, tiny_digits):
        """Colder Gumbel-Softmax brings the soft (training) modulation closer to
        the hard (deployed) modulation, shrinking the deployment mismatch."""
        image = tiny_digits[0][:1]
        profile = slm_profile(num_levels=16)

        def soft_hard_distance(temperature: float) -> float:
            config = small_config.with_updates(codesign_temperature=temperature)
            model = DONN(config, device_profile=profile)
            model.eval()
            layer = model.diffractive_layers[0]
            return float(np.abs(layer.modulation().data - layer.hard_modulation()).mean())

        assert soft_hard_distance(0.2) < soft_hard_distance(2.0)


class TestNoiseRobustnessPipeline:
    def test_more_detector_noise_never_helps_on_average(self, small_config, tiny_digits):
        from repro.train import evaluate_with_detector_noise

        train_x, train_y, test_x, test_y = tiny_digits
        model = build_regularized_donn(small_config, train_x[:8])
        Trainer(model, num_classes=10, learning_rate=0.5, batch_size=25, seed=0).fit(train_x, train_y, epochs=3)
        accuracies = [
            evaluate_with_detector_noise(model, test_x, test_y, noise_level=level, seed=1)["accuracy"]
            for level in (0.0, 0.2, 0.8)
        ]
        # Strong noise cannot beat the clean evaluation by more than statistical jitter.
        assert accuracies[2] <= accuracies[0] + 0.1

    def test_fabrication_variation_degrades_correlation(self, small_config, tiny_digits):
        from repro.codesign import FabricationVariation

        train_x = tiny_digits[0]
        model = build_regularized_donn(small_config, train_x[:8])
        profile = slm_profile(num_levels=256)
        clean = HardwareTestbench(
            model, profile=profile, variation=FabricationVariation(0.0, 0.0, seed=0), seed=0
        ).report(train_x[:20], tiny_digits[1][:20])
        dirty = HardwareTestbench(
            model, profile=profile, variation=FabricationVariation(0.2, 0.8, seed=0), seed=0
        ).report(train_x[:20], tiny_digits[1][:20])
        assert dirty.pattern_correlation < clean.pattern_correlation
