"""Tests for diffractive layers (raw and codesign) and the skip/norm helpers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.codesign import ideal_profile
from repro.layers import CodesignDiffractiveLayer, DiffractiveLayer, OpticalSkipConnection, PlaneNorm
from repro.optics import SpatialGrid

WAVELENGTH = 532e-9


@pytest.fixture(scope="module")
def layer_grid():
    return SpatialGrid(size=16, pixel_size=36e-6)


@pytest.fixture
def input_field(layer_grid):
    rng = np.random.default_rng(5)
    return Tensor(rng.normal(size=(2,) + layer_grid.shape) + 1j * rng.normal(size=(2,) + layer_grid.shape))


class TestDiffractiveLayer:
    def test_forward_shape_and_dtype(self, layer_grid, input_field):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05)
        out = layer(input_field)
        assert out.shape == input_field.shape
        assert out.is_complex

    def test_phase_is_trainable_parameter(self, layer_grid):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05)
        assert len(layer.parameters()) == 1
        assert layer.parameters()[0] is layer.phase

    def test_phase_init_shape_checked(self, layer_grid):
        with pytest.raises(ValueError):
            DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, phase_init=np.zeros((4, 4)))

    def test_explicit_phase_init_used(self, layer_grid):
        init = np.full(layer_grid.shape, 0.25)
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, phase_init=init)
        np.testing.assert_allclose(layer.phase.data, init)

    def test_modulation_unit_magnitude_without_gamma(self, layer_grid):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, amplitude_factor=1.0)
        np.testing.assert_allclose(np.abs(layer.modulation().data), 1.0)

    def test_amplitude_factor_scales_modulation(self, layer_grid):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, amplitude_factor=2.0)
        np.testing.assert_allclose(np.abs(layer.modulation().data), 2.0)

    def test_phase_values_wrapped(self, layer_grid):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, phase_init=np.full(layer_grid.shape, 7.0))
        values = layer.phase_values()
        assert np.all((values >= 0) & (values < 2 * np.pi))

    def test_zero_phase_layer_only_diffracts(self, layer_grid, input_field):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, phase_init=np.zeros(layer_grid.shape))
        out = layer(input_field)
        np.testing.assert_allclose(out.data, layer.propagator(input_field).data)

    def test_gradients_reach_phase(self, layer_grid, input_field):
        layer = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05)
        layer(input_field).abs2().sum().backward()
        assert layer.phase.grad is not None
        assert np.any(layer.phase.grad != 0)

    def test_gradcheck_small_layer(self):
        grid = SpatialGrid(size=5, pixel_size=36e-6)
        layer = DiffractiveLayer(grid, WAVELENGTH, 0.01)
        rng = np.random.default_rng(0)
        field = Tensor(rng.normal(size=grid.shape).astype(complex))
        weights = rng.normal(size=grid.shape)
        assert check_gradients(lambda p: (layer(field).abs2() * weights).sum(), [layer.phase], atol=1e-6)

    def test_approx_selection_changes_result(self, layer_grid, input_field):
        rs = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, approx="rayleigh_sommerfeld", phase_init=np.zeros(layer_grid.shape))
        fresnel = DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, approx="fresnel", phase_init=np.zeros(layer_grid.shape))
        assert not np.allclose(rs(input_field).data, fresnel(input_field).data)


class TestCodesignLayer:
    @pytest.fixture
    def profile(self):
        return ideal_profile(num_levels=8)

    def test_logits_shape(self, layer_grid, profile):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        assert layer.logits.shape == layer_grid.shape + (8,)

    def test_forward_shape(self, layer_grid, profile, input_field):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        assert layer(input_field).shape == input_field.shape

    def test_modulation_is_convex_combination_of_levels(self, layer_grid, profile):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        layer.eval()
        modulation = layer.modulation().data
        # Magnitude of a convex combination of unit-modulus responses is <= 1.
        assert np.all(np.abs(modulation) <= 1.0 + 1e-9)

    def test_hard_phase_values_are_device_levels(self, layer_grid, profile):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        deployed = layer.hard_phase_values()
        assert set(np.unique(deployed)).issubset(set(profile.phases))

    def test_hard_modulation_matches_level_responses(self, layer_grid, profile):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        modulation = layer.hard_modulation()
        np.testing.assert_allclose(np.abs(modulation), 1.0)

    def test_eval_mode_is_deterministic(self, layer_grid, profile, input_field):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        layer.eval()
        first = layer(input_field).data
        second = layer(input_field).data
        np.testing.assert_allclose(first, second)

    def test_train_mode_is_stochastic(self, layer_grid, profile, input_field):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        layer.train()
        first = layer(input_field).data
        second = layer(input_field).data
        assert not np.allclose(first, second)

    def test_gradients_reach_logits(self, layer_grid, profile, input_field):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        layer.eval()
        layer(input_field).abs2().sum().backward()
        assert layer.logits.grad is not None
        assert np.any(layer.logits.grad != 0)

    def test_phase_values_are_soft_expectation(self, layer_grid, profile):
        layer = CodesignDiffractiveLayer(layer_grid, WAVELENGTH, 0.05, device_profile=profile)
        values = layer.phase_values()
        assert values.shape == layer_grid.shape
        assert values.min() >= 0.0
        assert values.max() <= profile.phases.max() + 1e-9


class TestSkipAndNorm:
    def test_skip_connection_mixes_paths(self, layer_grid, input_field):
        identity_layers = [DiffractiveLayer(layer_grid, WAVELENGTH, 0.05, phase_init=np.zeros(layer_grid.shape))]
        skip = OpticalSkipConnection(identity_layers, skip_weight=0.5)
        out = skip(input_field)
        assert out.shape == input_field.shape

    def test_skip_weight_bounds(self, layer_grid):
        layers = [DiffractiveLayer(layer_grid, WAVELENGTH, 0.05)]
        with pytest.raises(ValueError):
            OpticalSkipConnection(layers, skip_weight=0.0)
        with pytest.raises(ValueError):
            OpticalSkipConnection(layers, skip_weight=1.0)

    def test_skip_registers_inner_parameters(self, layer_grid):
        layers = [DiffractiveLayer(layer_grid, WAVELENGTH, 0.05) for _ in range(3)]
        skip = OpticalSkipConnection(layers)
        assert len(skip.parameters()) == 3

    def test_full_skip_weight_dominates_bypass(self, layer_grid, input_field):
        scattering = [DiffractiveLayer(layer_grid, WAVELENGTH, 0.05)]
        almost_bypass = OpticalSkipConnection(scattering, skip_weight=0.99)(input_field)
        # With 99% of power bypassing, output stays close to the input field.
        relative = float((almost_bypass - input_field).abs2().sum().data / input_field.abs2().sum().data)
        assert relative < 0.3

    def test_plane_norm_identity_in_eval_mode(self, rng):
        norm = PlaneNorm(training_only=True)
        norm.eval()
        pattern = Tensor(rng.uniform(size=(2, 8, 8)))
        assert norm(pattern) is pattern

    def test_plane_norm_normalises_in_train_mode(self, rng):
        norm = PlaneNorm(training_only=True)
        norm.train()
        pattern = Tensor(rng.uniform(size=(2, 8, 8)) * 10 + 3)
        out = norm(pattern).data
        np.testing.assert_allclose(out.mean(axis=(-2, -1)), 0.0, atol=1e-7)

    def test_plane_norm_always_on_when_not_training_only(self, rng):
        norm = PlaneNorm(training_only=False)
        norm.eval()
        pattern = Tensor(rng.uniform(size=(4, 4)) + 5)
        assert abs(norm(pattern).data.mean()) < 1e-7
