"""Tests for the DSL builder / design flow and the shared utilities."""

import numpy as np
import pytest

from repro.dsl import DesignFlow, build_config, build_detector, build_donn, spec_from_config
from repro.layers import CodesignDiffractiveLayer, DiffractiveLayer
from repro.models import DONN, DONNConfig
from repro.utils import ascii_heatmap, format_table, load_model_into, pattern_summary, save_model


BASE_SPEC = {
    "sys_size": 32,
    "pixel_size": 36e-6,
    "distance": 0.05,
    "wavelength": 532e-9,
    "num_layers": 2,
    "num_classes": 10,
    "det_size": 4,
    "seed": 0,
}


class TestBuilder:
    def test_build_config_from_spec(self):
        config = build_config(BASE_SPEC)
        assert config.sys_size == 32
        assert config.num_layers == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            build_config({**BASE_SPEC, "warp_factor": 9})

    def test_build_donn_raw_layers_by_default(self):
        model = build_donn(BASE_SPEC)
        assert isinstance(model, DONN)
        assert all(isinstance(layer, DiffractiveLayer) for layer in model.diffractive_layers)

    def test_build_donn_codesign_layers(self):
        model = build_donn({**BASE_SPEC, "codesign": True, "device": {"kind": "slm", "levels": 16}})
        assert all(isinstance(layer, CodesignDiffractiveLayer) for layer in model.diffractive_layers)
        assert model.device_profile.num_levels == 16

    def test_build_donn_codesign_without_device_uses_default_slm(self):
        model = build_donn({**BASE_SPEC, "codesign": True})
        assert model.device_profile is not None

    def test_unknown_device_kind_rejected(self):
        with pytest.raises(ValueError):
            build_donn({**BASE_SPEC, "codesign": True, "device": {"kind": "hologram"}})

    def test_detector_from_explicit_regions(self):
        config = build_config(BASE_SPEC)
        detector = build_detector(config, {"regions": [{"x": 8, "y": 8, "size": 4}, {"x": 20, "y": 20, "size": 4}]})
        assert detector.num_classes == 2

    def test_detector_from_xy_lists(self):
        config = build_config(BASE_SPEC)
        detector = build_detector(config, {"x_loc": [8, 16, 24], "y_loc": [8, 16, 24], "det_size": 4})
        assert detector.num_classes == 3

    def test_detector_default_layout(self):
        config = build_config(BASE_SPEC)
        assert build_detector(config).num_classes == config.num_classes

    def test_spec_roundtrip(self):
        config = build_config(BASE_SPEC)
        assert build_config(spec_from_config(config)) == config

    def test_forward_pass_of_built_model(self, tiny_digits):
        model = build_donn(BASE_SPEC)
        logits = model(tiny_digits[0][:2])
        assert logits.shape == (2, 10)


class TestDesignFlow:
    def test_end_to_end_flow_produces_all_artifacts(self, tiny_digits, tmp_path):
        train_x, train_y, test_x, test_y = tiny_digits
        base = DONNConfig(
            sys_size=32, pixel_size=36e-6, distance=0.05, wavelength=532e-9, num_layers=2, det_size=4, seed=0
        )
        flow = DesignFlow(base_config=base, run_dse=False, seed=0)
        result = flow.run(
            train_x[:60],
            train_y[:60],
            test_x[:20],
            test_y[:20],
            raw_epochs=2,
            codesign_epochs=1,
            fabrication_dir=tmp_path,
            codesign=True,
            validate_deployment=True,
        )
        assert result.raw_training.losses
        assert result.codesign_training is not None
        assert result.deployment is not None
        assert result.fabrication_files and all(path.exists() for path in result.fabrication_files)
        assert 0.0 <= result.deployment.hardware_accuracy <= 1.0

    def test_flow_with_dse_updates_config(self, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        base = DONNConfig(
            sys_size=32, pixel_size=36e-6, distance=0.05, wavelength=532e-9, num_layers=2, det_size=4, seed=0
        )
        flow = DesignFlow(base_config=base, run_dse=True, seed=0)
        result = flow.run(
            train_x[:40], train_y[:40], test_x[:20], test_y[:20],
            raw_epochs=1, codesign=False, validate_deployment=False,
        )
        assert result.dse_result is not None
        assert result.config.distance == pytest.approx(result.dse_result.best_point.distance)

    def test_flow_without_codesign_deploys_raw_model(self, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        base = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=2, det_size=4, seed=0)
        flow = DesignFlow(base_config=base, run_dse=False)
        result = flow.run(
            train_x[:40], train_y[:40], test_x[:20], test_y[:20],
            raw_epochs=1, codesign=False, validate_deployment=True,
        )
        assert result.codesign_training is None
        assert result.deployment is not None


class TestVisualization:
    def test_ascii_heatmap_dimensions(self, rng):
        art = ascii_heatmap(rng.uniform(size=(64, 64)), width=20, height=10)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_ascii_heatmap_constant_input(self):
        art = ascii_heatmap(np.zeros((8, 8)))
        assert set(art) <= {" ", "\n"}

    def test_ascii_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(8))

    def test_pattern_summary_fields(self, rng):
        summary = pattern_summary(rng.uniform(size=(8, 8)))
        assert set(summary) == {"total", "peak", "mean", "contrast"}
        assert summary["peak"] >= summary["mean"]

    def test_format_table_alignment_and_content(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "long-name", "value": 2.0, "extra": "x"}]
        table = format_table(rows)
        assert "long-name" in table
        assert "1.235" in table
        assert len(table.splitlines()) == 4  # header + separator + 2 rows

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"


class TestSerialization:
    def test_save_and_load_roundtrip(self, small_config, tmp_path):
        source = DONN(small_config)
        path = save_model(source, tmp_path / "model.npz")
        target = DONN(small_config.with_updates(seed=small_config.seed + 1))
        assert not np.allclose(source.phase_patterns()[0], target.phase_patterns()[0])
        load_model_into(target, path)
        np.testing.assert_allclose(source.phase_patterns()[0], target.phase_patterns()[0])

    def test_load_appends_npz_suffix(self, small_config, tmp_path):
        source = DONN(small_config)
        save_model(source, tmp_path / "weights")
        target = DONN(small_config)
        load_model_into(target, tmp_path / "weights")
