"""Tests for the synthetic datasets and loaders."""

import numpy as np
import pytest

from repro.data import (
    DataSplit,
    SCENE_CLASSES,
    batch_iterator,
    load_digits,
    load_scenes,
    load_segmentation_scenes,
    render_digit,
    render_garment,
    train_test_split,
)
from repro.data.cityscapes import render_street_scene
from repro.data.scenes import render_scene


class TestDigits:
    def test_shapes_and_ranges(self, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        assert train_x.shape == (150, 32, 32)
        assert test_x.shape == (50, 32, 32)
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0
        assert set(np.unique(train_y)).issubset(set(range(10)))

    def test_deterministic_for_seed(self):
        a = load_digits(num_train=20, num_test=10, seed=3)
        b = load_digits(num_train=20, num_test=10, seed=3)
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seed_differs(self):
        a = load_digits(num_train=20, num_test=10, seed=3)
        b = load_digits(num_train=20, num_test=10, seed=4)
        assert not np.allclose(a[0], b[0])

    def test_classes_roughly_balanced(self):
        _, labels, _, _ = load_digits(num_train=200, num_test=0, seed=0)
        counts = np.bincount(labels, minlength=10)
        assert counts.min() >= 15

    def test_render_digit_deterministic_without_rng(self):
        np.testing.assert_allclose(render_digit(3), render_digit(3))

    def test_render_digit_rejects_invalid(self):
        with pytest.raises(ValueError):
            render_digit(10)

    def test_classes_are_visually_distinct(self):
        """Clean glyphs of different digits must differ in many pixels."""
        glyphs = [render_digit(d, size=28) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(glyphs[i] - glyphs[j]).sum() > 5

    def test_perturbed_samples_vary_within_class(self):
        rng = np.random.default_rng(0)
        a = render_digit(5, rng=rng)
        b = render_digit(5, rng=rng)
        assert not np.allclose(a, b)


class TestFashion:
    def test_shapes_and_labels(self, tiny_fashion):
        train_x, train_y, test_x, test_y = tiny_fashion
        assert train_x.shape == (60, 32, 32)
        assert set(np.unique(train_y)).issubset(set(range(10)))

    def test_render_garment_rejects_invalid(self):
        with pytest.raises(ValueError):
            render_garment(11)

    def test_all_classes_render_nonempty(self):
        for index in range(10):
            assert render_garment(index, size=28).sum() > 0

    def test_confusable_class_pairs_exist(self):
        """Several garment pairs (t-shirt/shirt, sneaker/boot) intentionally
        share silhouette structure, which is what makes the dataset harder
        than the digits, mirroring the paper's MNIST/FMNIST accuracy gap."""

        def overlap(a_index, b_index):
            a = render_garment(a_index, 28) > 0.5
            b = render_garment(b_index, 28) > 0.5
            return np.logical_and(a, b).sum() / max(1, np.logical_or(a, b).sum())

        assert overlap(0, 6) > 0.6  # t-shirt vs shirt
        assert overlap(7, 9) > 0.4  # sneaker vs ankle boot
        assert overlap(1, 8) < 0.5  # trouser vs bag stay distinguishable


class TestScenes:
    def test_shapes_and_channels(self):
        train_x, train_y, test_x, test_y = load_scenes(num_train=12, num_test=6, size=32, seed=0)
        assert train_x.shape == (12, 3, 32, 32)
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0

    def test_num_classes_argument(self):
        _, labels, _, _ = load_scenes(num_train=20, num_test=0, size=32, num_classes=4, seed=0)
        assert set(np.unique(labels)).issubset(set(range(4)))

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            load_scenes(num_classes=0)
        with pytest.raises(ValueError):
            load_scenes(num_classes=len(SCENE_CLASSES) + 1)

    def test_render_scene_rejects_invalid_class(self):
        with pytest.raises(ValueError):
            render_scene(len(SCENE_CLASSES))

    def test_channels_carry_distinct_information(self):
        """Across scene classes the per-channel mean intensities must differ,
        otherwise the RGB split of Figure 12 would be pointless."""
        rng = np.random.default_rng(0)
        channel_means = np.array(
            [render_scene(c, size=32, rng=rng).mean(axis=(1, 2)) for c in range(len(SCENE_CLASSES))]
        )
        assert channel_means.std(axis=0).max() > 0.05


class TestSegmentationScenes:
    def test_shapes_and_mask_values(self, tiny_segmentation):
        images, masks = tiny_segmentation
        assert images.shape == masks.shape == (12, 32, 32)
        assert set(np.unique(masks)).issubset({0.0, 1.0})

    def test_masks_mark_buildings(self):
        rng = np.random.default_rng(1)
        image, mask = render_street_scene(size=64, rng=rng)
        assert 0.05 < mask.mean() < 0.8  # buildings cover a plausible fraction

    def test_deterministic_for_seed(self):
        a = load_segmentation_scenes(num_samples=4, size=32, seed=5)
        b = load_segmentation_scenes(num_samples=4, size=32, seed=5)
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])


class TestLoaders:
    def test_train_test_split_sizes(self, rng):
        inputs = rng.normal(size=(50, 4))
        labels = rng.integers(0, 3, size=50)
        split = train_test_split(inputs, labels, test_fraction=0.2, seed=0)
        assert len(split.train_inputs) == 40
        assert len(split.test_inputs) == 10
        assert split.num_classes == labels.max() + 1

    def test_train_test_split_validation(self, rng):
        inputs = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            train_test_split(inputs, np.zeros(9))
        with pytest.raises(ValueError):
            train_test_split(inputs, np.zeros(10), test_fraction=0.0)

    def test_data_split_length_check(self):
        with pytest.raises(ValueError):
            DataSplit(np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1))

    def test_batch_iterator_covers_dataset(self, rng):
        inputs = rng.normal(size=(23, 3))
        labels = np.arange(23)
        seen = []
        for batch_inputs, batch_labels in batch_iterator(inputs, labels, batch_size=5, shuffle=True, seed=0):
            assert len(batch_inputs) == len(batch_labels)
            seen.extend(batch_labels.tolist())
        assert sorted(seen) == list(range(23))

    def test_batch_iterator_without_labels(self, rng):
        batches = list(batch_iterator(rng.normal(size=(8, 2)), batch_size=3, shuffle=False))
        assert batches[0][1] is None
        assert sum(len(batch) for batch, _ in batches) == 8

    def test_batch_iterator_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(batch_iterator(rng.normal(size=(8, 2)), batch_size=0))
