"""Tests for array-level ops: padding, cropping, stacking, where, roll."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, ops


class TestPadCrop:
    def test_pad_shape_and_values(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 4)))
        padded = ops.pad2d(x, 2)
        assert padded.shape == (2, 8, 8)
        np.testing.assert_allclose(padded.data[:, 2:6, 2:6], x.data)
        assert padded.data[:, 0, 0] == pytest.approx(0.0)

    def test_pad_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert ops.pad2d(x, 0) is x

    def test_crop_inverts_pad(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(ops.crop2d(ops.pad2d(x, 3), 3).data, x.data)

    def test_crop_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert ops.crop2d(x, 0) is x

    def test_gradcheck_pad(self, rng):
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        weights = rng.normal(size=(7, 7))
        assert check_gradients(lambda x: (ops.pad2d(x, 2) * weights).sum(), [x])

    def test_gradcheck_crop(self, rng):
        x = Tensor(rng.normal(size=(6, 6)), requires_grad=True)
        weights = rng.normal(size=(2, 2))
        assert check_gradients(lambda x: (ops.crop2d(x, 2) * weights).sum(), [x])

    def test_pad_complex_field(self, rng):
        field = Tensor(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))
        padded = ops.pad2d(field, 1)
        assert padded.is_complex
        assert padded.shape == (6, 6)


class TestStackConcat:
    def test_stack_shape(self, rng):
        parts = [Tensor(rng.normal(size=(3, 3))) for _ in range(4)]
        assert ops.stack(parts, axis=0).shape == (4, 3, 3)

    def test_stack_axis1(self, rng):
        parts = [Tensor(rng.normal(size=(3, 3))) for _ in range(2)]
        assert ops.stack(parts, axis=1).shape == (3, 2, 3)

    def test_stack_gradients_route_to_sources(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        weights = rng.normal(size=(2, 2, 2))
        assert check_gradients(lambda a, b: (ops.stack([a, b]) * weights).sum(), [a, b])

    def test_concatenate_values(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(4, 3)))
        out = ops.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        np.testing.assert_allclose(out.data[:2], a.data)

    def test_concatenate_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        weights = rng.normal(size=(5, 2))
        assert check_gradients(lambda a, b: (ops.concatenate([a, b], axis=0) * weights).sum(), [a, b])


class TestWhereMaximumRoll:
    def test_where_selects(self):
        condition = np.array([True, False, True])
        out = ops.where(condition, Tensor([1.0, 1.0, 1.0]), Tensor([2.0, 2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0, 1.0])

    def test_where_gradcheck(self, rng):
        condition = rng.random(5) > 0.5
        a = Tensor(rng.normal(size=5), requires_grad=True)
        b = Tensor(rng.normal(size=5), requires_grad=True)
        assert check_gradients(lambda a, b: (ops.where(condition, a, b) ** 2).sum(), [a, b])

    def test_maximum_values(self):
        out = ops.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_roll_values_and_grad(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        rolled = ops.roll(x, 1, axis=0)
        np.testing.assert_allclose(rolled.data, np.roll(x.data, 1))
        weights = rng.normal(size=4)
        assert check_gradients(lambda x: (ops.roll(x, 1, axis=0) * weights).sum(), [x])

    def test_roll_multiple_axes(self, rng):
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        weights = rng.normal(size=(3, 3))
        assert check_gradients(lambda x: (ops.roll(x, (1, 2), axis=(0, 1)) * weights).sum(), [x])
