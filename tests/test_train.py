"""Tests for metrics and the training loops."""

import numpy as np
import pytest

from repro.autograd import Adam
from repro.baselines.regularization import build_regularized_donn
from repro.models import DONN, DONNConfig, SegmentationDONN
from repro.train import (
    SegmentationTrainer,
    Trainer,
    accuracy,
    confusion_matrix,
    evaluate_classifier,
    evaluate_with_detector_noise,
    intersection_over_union,
    prediction_confidence,
    top_k_accuracy,
)
from repro.train.metrics import pixel_accuracy


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0
        assert accuracy(logits, (np.arange(4) + 1) % 4) == 0.0

    def test_accuracy_accepts_tensor(self):
        from repro.autograd import Tensor

        assert accuracy(Tensor(np.eye(3)), np.arange(3)) == 1.0

    def test_top_k_accuracy_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 10))
        labels = rng.integers(0, 10, size=50)
        top1 = top_k_accuracy(logits, labels, k=1)
        top3 = top_k_accuracy(logits, labels, k=3)
        top5 = top_k_accuracy(logits, labels, k=5)
        assert top1 <= top3 <= top5

    def test_top_k_equals_accuracy_for_k1(self, rng):
        logits = rng.normal(size=(20, 6))
        labels = rng.integers(0, 6, size=20)
        assert top_k_accuracy(logits, labels, k=1) == accuracy(logits, labels)

    def test_top_k_caps_at_num_classes(self, rng):
        logits = rng.normal(size=(10, 3))
        labels = rng.integers(0, 3, size=10)
        assert top_k_accuracy(logits, labels, k=10) == 1.0

    def test_confusion_matrix_diagonal_for_perfect(self):
        logits = np.eye(5)
        matrix = confusion_matrix(logits, np.arange(5), 5)
        np.testing.assert_array_equal(matrix, np.eye(5, dtype=int))

    def test_confusion_matrix_row_sums_are_class_counts(self, rng):
        logits = rng.normal(size=(30, 4))
        labels = rng.integers(0, 4, size=30)
        matrix = confusion_matrix(logits, labels, 4)
        np.testing.assert_array_equal(matrix.sum(axis=1), np.bincount(labels, minlength=4))

    def test_iou_perfect_and_disjoint(self):
        mask = np.zeros((8, 8))
        mask[:4] = 1.0
        assert intersection_over_union(mask, mask) == 1.0
        assert intersection_over_union(mask, 1.0 - mask) == 0.0

    def test_iou_partial_overlap(self):
        a = np.zeros((4, 4))
        a[:, :2] = 1.0
        b = np.zeros((4, 4))
        b[:, 1:3] = 1.0
        assert intersection_over_union(a, b) == pytest.approx(1.0 / 3.0)

    def test_iou_empty_masks_count_as_match(self):
        empty = np.zeros((4, 4))
        assert intersection_over_union(empty, empty) == 1.0

    def test_pixel_accuracy(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        b[0, 0] = 1.0
        assert pixel_accuracy(a, b) == pytest.approx(15 / 16)

    def test_prediction_confidence_bounds(self, rng):
        logits = rng.normal(size=(20, 10))
        confidence = prediction_confidence(logits)
        assert 0.1 <= confidence <= 1.0

    def test_prediction_confidence_increases_with_margin(self, rng):
        weak = rng.normal(size=(20, 10))
        strong = weak.copy()
        strong[np.arange(20), weak.argmax(axis=1)] += 10.0
        assert prediction_confidence(strong) > prediction_confidence(weak)


class TestTrainer:
    def test_invalid_loss_rejected(self, small_config):
        with pytest.raises(ValueError):
            Trainer(DONN(small_config), num_classes=10, loss="hinge")

    @pytest.mark.slow
    def test_training_reduces_loss_and_improves_accuracy(self, small_config, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        model = build_regularized_donn(small_config, train_x[:8])
        trainer = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=25, seed=0)
        result = trainer.fit(train_x, train_y, epochs=8, test_images=test_x, test_labels=test_y)
        assert len(result.losses) == 8
        assert result.losses[-1] < result.losses[0]
        assert result.final_test_accuracy > 0.25  # well above the 10% chance level
        assert result.total_seconds > 0

    def test_custom_optimizer_used(self, small_config, tiny_digits):
        model = DONN(small_config)
        optimizer = Adam(model.parameters(), lr=0.1)
        trainer = Trainer(model, num_classes=10, optimizer=optimizer)
        assert trainer.optimizer is optimizer

    @pytest.mark.slow
    def test_cross_entropy_training(self, small_config, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        model = build_regularized_donn(small_config, train_x[:8])
        trainer = Trainer(model, num_classes=10, learning_rate=0.1, batch_size=25, loss="cross_entropy", seed=0)
        result = trainer.fit(train_x, train_y, epochs=8, test_images=test_x, test_labels=test_y)
        assert result.final_test_accuracy > 0.3

    def test_evaluate_classifier_range(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        score = evaluate_classifier(DONN(small_config), train_x[:20], train_y[:20])
        assert 0.0 <= score <= 1.0

    def test_training_result_empty_accuracy_is_nan(self):
        from repro.train.loop import TrainingResult

        assert np.isnan(TrainingResult().final_test_accuracy)


class TestNoiseRobustnessEvaluation:
    def test_noise_free_matches_clean_accuracy(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        model = DONN(small_config)
        clean = evaluate_classifier(model, train_x[:20], train_y[:20])
        report = evaluate_with_detector_noise(model, train_x[:20], train_y[:20], noise_level=0.0)
        assert report["accuracy"] == pytest.approx(clean, abs=1e-9)

    def test_report_contains_confidence_and_level(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        report = evaluate_with_detector_noise(DONN(small_config), train_x[:10], train_y[:10], noise_level=0.03)
        assert set(report) == {"accuracy", "confidence", "noise_level"}
        assert report["noise_level"] == pytest.approx(0.03)

    def test_heavy_noise_hurts_untrained_model_no_more_than_total(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        report = evaluate_with_detector_noise(DONN(small_config), train_x[:10], train_y[:10], noise_level=1.0)
        assert 0.0 <= report["accuracy"] <= 1.0


class TestSegmentationTrainer:
    def test_training_reduces_loss(self, tiny_segmentation):
        images, masks = tiny_segmentation
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=3, seed=1)
        model = SegmentationDONN(config)
        trainer = SegmentationTrainer(model, learning_rate=0.2, batch_size=4, seed=0)
        history = trainer.fit(images, masks, epochs=4)
        assert history[-1] < history[0]

    def test_evaluate_returns_iou(self, tiny_segmentation):
        images, masks = tiny_segmentation
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=3, seed=1)
        trainer = SegmentationTrainer(SegmentationDONN(config))
        iou = trainer.evaluate(images[:4], masks[:4])
        assert 0.0 <= iou <= 1.0

    def test_baseline_without_norm_uses_raw_targets(self, tiny_segmentation):
        images, masks = tiny_segmentation
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=3, seed=1)
        model = SegmentationDONN(config, use_skip=False, use_layer_norm=False)
        trainer = SegmentationTrainer(model, learning_rate=0.2, batch_size=4)
        history = trainer.fit(images[:8], masks[:8], epochs=2)
        assert len(history) == 2
