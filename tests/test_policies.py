"""Tests for batching policies (``repro.serve.policy``) and telemetry
(``repro.serve.metrics``).

The policies are pure decision objects, so most behavior is testable
deterministically with synthetic clocks and hand-fed observations -- no
sleeping, no real event-loop timing.  The end of the file integration-tests
the SLO semantics through a real :class:`DynamicBatcher`.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.serve import (
    AdaptivePolicy,
    BatcherStats,
    DeadlineExceededError,
    DynamicBatcher,
    FixedWindowPolicy,
    InferenceServer,
    PercentileWindow,
    Request,
    SLOAwarePolicy,
    make_policy,
)
from repro.serve.policy import _EwmaLatencyModel


def request(arrival: float, deadline=None) -> Request:
    return Request(payload=None, future=None, arrival=arrival, deadline=deadline)


def run_async(coro):
    return asyncio.run(coro)


class TestPercentileWindow:
    def test_percentiles_of_known_data(self):
        window = PercentileWindow(capacity=100)
        for value in range(1, 101):  # 1..100
            window.record(float(value))
        assert window.percentile(50) == pytest.approx(50.5)
        assert window.percentile(99) == pytest.approx(99.01)
        assert window.mean() == pytest.approx(50.5)
        assert window.max() == 100.0

    def test_percentiles_are_monotone_in_q(self):
        rng = np.random.default_rng(0)
        window = PercentileWindow(capacity=256)
        for value in rng.exponential(10.0, size=500):
            window.record(value)
        qs = [0, 10, 25, 50, 75, 90, 95, 99, 100]
        values = [window.percentile(q) for q in qs]
        assert values == sorted(values), "percentile must be monotone in q"

    def test_window_slides_old_samples_out(self):
        window = PercentileWindow(capacity=4)
        for value in [1000.0, 1000.0, 1000.0, 1000.0]:
            window.record(value)
        for value in [1.0, 2.0, 3.0, 4.0]:  # fully displaces the spike
            window.record(value)
        assert len(window) == 4
        assert window.total_recorded == 8
        assert window.max() == 4.0, "aged-out observations must not linger"
        assert window.percentile(50) == pytest.approx(2.5)

    def test_empty_window_returns_nan_not_raises(self):
        window = PercentileWindow(capacity=8)
        assert math.isnan(window.percentile(99))
        assert math.isnan(window.mean())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PercentileWindow(capacity=0)


class TestBatcherStats:
    def test_as_dict_exposes_percentiles_and_breakdown(self):
        stats = BatcherStats(window=16)
        stats.submitted = 3
        stats.record_batch(3, compute_s=0.010)
        for wait in (0.001, 0.002, 0.003):
            stats.record_request(queue_wait_s=wait, latency_s=wait + 0.010)
        snapshot = stats.as_dict()
        assert snapshot["completed"] == 3
        assert snapshot["mean_batch_size"] == 3.0
        assert snapshot["mean_compute_ms"] == pytest.approx(10.0)
        assert snapshot["mean_queue_wait_ms"] == pytest.approx(2.0)
        assert snapshot["p50_latency_ms"] == pytest.approx(12.0)
        assert snapshot["p99_latency_ms"] <= 13.0
        assert snapshot["deadline_missed"] == 0


class TestFixedWindowPolicy:
    def test_window_semantics_match_the_legacy_knobs(self):
        policy = FixedWindowPolicy(max_batch=8, max_wait_ms=10.0, idle_flush_ms=2.0)
        assert policy.batch_limit(now=0.0) == 8
        first = request(arrival=0.0)
        flush_at = policy.flush_deadline(first, now=0.0)
        assert flush_at == pytest.approx(0.010)
        # Mid-window: linger bounded by the idle gap.
        assert policy.linger_timeout([first], now=0.004, flush_at=flush_at) == pytest.approx(0.002)
        # Near the deadline the remaining window wins over the idle gap.
        assert policy.linger_timeout([first], now=0.009, flush_at=flush_at) == pytest.approx(0.001)
        # Past the deadline: flush immediately.
        assert policy.linger_timeout([first], now=0.011, flush_at=flush_at) == 0.0

    def test_idle_flush_zero_means_flush_on_drain(self):
        policy = FixedWindowPolicy(max_batch=8, max_wait_ms=10.0, idle_flush_ms=0.0)
        first = request(arrival=0.0)
        assert policy.linger_timeout([first], now=0.001, flush_at=0.010) == 0.0

    def test_default_idle_flush_is_quarter_of_max_wait(self):
        policy = FixedWindowPolicy(max_wait_ms=8.0)
        assert policy.idle_flush == pytest.approx(0.002)

    def test_no_default_deadlines_but_explicit_ones_shed(self):
        policy = FixedWindowPolicy()
        assert policy.assign_deadline(arrival=5.0) is None
        assert policy.admit(request(arrival=0.0), now=1e9)
        assert policy.admit(request(arrival=0.0, deadline=1.0), now=0.5)
        assert not policy.admit(request(arrival=0.0, deadline=1.0), now=1.5)


class TestEwmaLatencyModel:
    def test_learns_overhead_and_per_item_cost(self):
        model = _EwmaLatencyModel(alpha=0.5)
        # Ground truth: cost(B) = 2ms + 0.5ms * B, observed at two sizes.
        for _ in range(20):
            model.observe(4, 0.002 + 0.0005 * 4)
            model.observe(32, 0.002 + 0.0005 * 32)
        assert model.per_item_s == pytest.approx(0.0005, rel=0.05)
        assert model.overhead_s == pytest.approx(0.002, rel=0.1)
        assert model.predict(16) == pytest.approx(0.002 + 0.008, rel=0.1)

    def test_constant_batch_size_falls_back_to_conservative_per_item(self):
        model = _EwmaLatencyModel()
        for _ in range(5):
            model.observe(10, 0.010)
        # No size variance: the whole 1ms/item mean is charged per item.
        assert model.per_item_s == pytest.approx(0.001)
        assert model.overhead_s == 0.0

    def test_unwarmed_model_predicts_zero(self):
        assert _EwmaLatencyModel().predict(64) == 0.0


class TestSLOAwarePolicy:
    def test_requests_get_slo_deadlines(self):
        policy = SLOAwarePolicy(slo_ms=25.0)
        assert policy.assign_deadline(arrival=1.0) == pytest.approx(1.025)

    def test_tight_slo_shrinks_batches_loose_slo_does_not(self):
        tight = SLOAwarePolicy(slo_ms=5.0, max_batch=64)
        loose = SLOAwarePolicy(slo_ms=500.0, max_batch=64)
        # Both policies observe the same engine: ~1ms per item, no overhead.
        for batch_size in (8, 16, 32, 16, 8, 32):
            tight.observe(batch_size=batch_size, compute_s=0.001 * batch_size, queue_depth=0)
            loose.observe(batch_size=batch_size, compute_s=0.001 * batch_size, queue_depth=0)
        # Tight: only compute_fraction * 5ms of compute fits -> small batches.
        assert tight.batch_limit(now=0.0) <= 4
        assert tight.batch_limit(now=0.0) >= 1
        # Loose: 250ms of compute budget >> 64ms for a full batch.
        assert loose.batch_limit(now=0.0) == 64

    def test_unwarmed_policy_is_optimistic(self):
        policy = SLOAwarePolicy(slo_ms=5.0, max_batch=48)
        assert policy.batch_limit(now=0.0) == 48

    def test_expired_requests_are_not_admitted(self):
        policy = SLOAwarePolicy(slo_ms=10.0)
        fresh = request(arrival=0.0, deadline=policy.assign_deadline(0.0))
        assert policy.admit(fresh, now=0.005)
        assert not policy.admit(fresh, now=0.011)

    def test_linger_stops_when_predicted_compute_fills_the_slack(self):
        policy = SLOAwarePolicy(slo_ms=20.0, max_batch=64, margin_ms=1.0)
        for _ in range(5):
            policy.observe(batch_size=10, compute_s=0.010, queue_depth=0)  # 1ms/item
        first = request(arrival=0.0, deadline=0.020)
        flush_at = policy.flush_deadline(first, now=0.0)
        # Early on there is slack to linger.
        assert policy.linger_timeout([first], now=0.001, flush_at=flush_at) > 0.0
        # With 5 rows batched and ~14ms gone, predicted 6ms more compute
        # would blow the 20ms deadline: flush immediately.
        batch = [first] + [request(arrival=0.002 * i, deadline=0.020 + 0.002 * i) for i in range(1, 5)]
        assert policy.linger_timeout(batch, now=0.014, flush_at=flush_at) == 0.0

    def test_tighter_explicit_deadline_on_later_arrival_governs_linger(self):
        """An explicit per-request budget can make a *later* arrival the
        most urgent request in the batch; lingering must honor it."""
        policy = SLOAwarePolicy(slo_ms=500.0, max_batch=64, margin_ms=1.0)
        for _ in range(5):
            policy.observe(batch_size=10, compute_s=0.010, queue_depth=0)  # 1ms/item
        relaxed = request(arrival=0.0, deadline=0.5)
        urgent = request(arrival=0.001, deadline=0.006)  # explicit ~5ms budget
        flush_at = policy.flush_deadline(relaxed, now=0.0)
        # Alone, the relaxed request leaves plenty of slack to linger...
        assert policy.linger_timeout([relaxed], now=0.002, flush_at=flush_at) > 0.0
        # ...but once the urgent request joins, its deadline (not the
        # first arrival's) must force an immediate flush.
        assert policy.linger_timeout([relaxed, urgent], now=0.002, flush_at=flush_at) == 0.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SLOAwarePolicy(slo_ms=0.0)
        with pytest.raises(ValueError):
            SLOAwarePolicy(slo_ms=10.0, max_batch=0)
        with pytest.raises(ValueError):
            SLOAwarePolicy(slo_ms=10.0, compute_fraction=1.5)


class TestAdaptivePolicy:
    def test_additive_increase_under_backlog(self):
        policy = AdaptivePolicy(min_batch=1, max_batch=16, increase=2.0, decrease=0.5)
        assert policy.batch_limit(now=0.0) == 1
        for _ in range(4):
            policy.observe(batch_size=1, compute_s=0.001, queue_depth=50)
        assert policy.target == pytest.approx(9.0)  # 1 + 4 * 2
        assert policy.batch_limit(now=0.0) == 9

    def test_multiplicative_decrease_when_queue_drains(self):
        policy = AdaptivePolicy(min_batch=1, max_batch=16, increase=2.0, decrease=0.5)
        for _ in range(20):
            policy.observe(batch_size=1, compute_s=0.001, queue_depth=100)
        assert policy.target == 16.0  # clamped at max_batch
        policy.observe(batch_size=16, compute_s=0.001, queue_depth=0)
        policy.observe(batch_size=8, compute_s=0.001, queue_depth=0)
        assert policy.target == pytest.approx(4.0)
        for _ in range(10):
            policy.observe(batch_size=1, compute_s=0.001, queue_depth=0)
        assert policy.target == 1.0  # clamped at min_batch

    def test_intermediate_queue_depth_holds_target(self):
        policy = AdaptivePolicy(min_batch=1, max_batch=16, increase=2.0, decrease=0.5)
        policy.observe(batch_size=1, compute_s=0.001, queue_depth=10)  # 10 >= 1: grow
        target = policy.target
        policy.observe(batch_size=1, compute_s=0.001, queue_depth=1)  # 1 < 3, != 0: hold
        assert policy.target == target

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(min_batch=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(min_batch=8, max_batch=4)
        with pytest.raises(ValueError):
            AdaptivePolicy(decrease=1.0)


class TestMakePolicy:
    def test_builds_each_policy_by_name(self):
        assert isinstance(make_policy("fixed", max_batch=4), FixedWindowPolicy)
        assert isinstance(make_policy("slo", slo_ms=10.0), SLOAwarePolicy)
        assert isinstance(make_policy("adaptive", max_batch=8), AdaptivePolicy)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="adaptive.*fixed.*slo"):
            make_policy("nope")


class FakeSession:
    """Echo session: fused-call sizes recorded, result = payload * 2."""

    def __init__(self):
        self.batch_sizes = []

    def run(self, batch, batch_size=None):
        batch = np.asarray(batch)
        self.batch_sizes.append(len(batch))
        return batch * 2.0


class TestSLOSemanticsThroughTheBatcher:
    """Integration: deadline shedding and telemetry via a real DynamicBatcher."""

    def test_deadline_missed_requests_are_shed_before_admission(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(
                fake,
                policy=SLOAwarePolicy(slo_ms=5.0, max_batch=8),
                run_in_executor=False,
            )
            # Enqueue while the worker is *not* running, then let the
            # deadline expire: on startup the worker must shed them
            # without ever touching the engine.
            doomed = [asyncio.create_task(batcher.submit(np.ones((2, 2)))) for _ in range(3)]
            await asyncio.sleep(0.02)  # > 5ms SLO
            batcher.start()
            results = await asyncio.gather(*doomed, return_exceptions=True)
            # A fresh request right after still gets served.
            good = await batcher.submit(np.ones((2, 2)))
            stats = batcher.stats()
            await batcher.stop()
            return results, good, stats

        results, good, stats = run_async(scenario())
        assert all(isinstance(r, DeadlineExceededError) for r in results)
        np.testing.assert_array_equal(good, np.ones((2, 2)) * 2.0)
        assert stats.deadline_missed == 3
        assert stats.completed == 1
        assert fake.batch_sizes == [1], "expired requests must never reach the engine"

    def test_explicit_slo_ms_overrides_policy_default(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, run_in_executor=False)  # fixed window: no default deadline
            generous = asyncio.create_task(batcher.submit(np.ones((2, 2))))
            doomed = asyncio.create_task(batcher.submit(np.ones((2, 2)), slo_ms=1.0))
            await asyncio.sleep(0.01)
            batcher.start()
            results = await asyncio.gather(generous, doomed, return_exceptions=True)
            await batcher.stop()
            return results

        generous, doomed = run_async(scenario())
        np.testing.assert_array_equal(generous, np.ones((2, 2)) * 2.0)
        assert isinstance(doomed, DeadlineExceededError)

    def test_slo_batcher_serves_within_budget_and_reports_percentiles(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(
                fake,
                policy=SLOAwarePolicy(slo_ms=200.0, max_batch=16),
                run_in_executor=False,
            )
            batcher.start()
            results = await asyncio.gather(*(batcher.submit(np.full((2, 2), float(i))) for i in range(12)))
            stats = batcher.stats()
            await batcher.stop()
            return results, stats

        results, stats = run_async(scenario())
        assert len(results) == 12
        assert stats.completed == 12
        assert stats.deadline_missed == 0
        assert stats.latency.total_recorded == 12
        snapshot = stats.as_dict()
        assert snapshot["p50_latency_ms"] <= snapshot["p95_latency_ms"] <= snapshot["p99_latency_ms"]
        assert snapshot["p99_latency_ms"] < 200.0, "requests must resolve within the SLO"
        assert snapshot["mean_queue_wait_ms"] >= 0.0
        assert snapshot["mean_compute_ms"] >= 0.0

    def test_policy_feedback_loop_reaches_the_policy(self):
        fake = FakeSession()
        policy = AdaptivePolicy(min_batch=1, max_batch=8, max_wait_ms=50.0, increase=2.0, decrease=0.5)

        async def scenario():
            batcher = DynamicBatcher(fake, policy=policy, run_in_executor=False)
            # Queue a backlog before the worker exists so the first fused
            # call deterministically sees 5 requests still waiting.
            tasks = [asyncio.create_task(batcher.submit(np.ones((2, 2)))) for _ in range(6)]
            await asyncio.sleep(0)
            batcher.start()
            await asyncio.gather(*tasks)
            await batcher.stop()

        run_async(scenario())
        assert sum(fake.batch_sizes) == 6
        # The first batch is capped at the initial target of 1; the
        # backlog it leaves behind drives additive increase, so later
        # batches grow -- proof the observe() feedback reached the policy.
        assert fake.batch_sizes[0] == 1
        assert len(fake.batch_sizes) >= 2
        assert max(fake.batch_sizes[1:]) > 1
        # The final drain (queue_depth == 0) then decays the target again.
        assert 1.0 <= policy.target < 3.0

    def test_server_threads_policy_factories_per_model(self, small_config):
        from repro import DONN

        async def scenario():
            server = InferenceServer(policy=lambda: SLOAwarePolicy(slo_ms=500.0, max_batch=16))
            server.add_model("digits", DONN(small_config))
            server.add_model("adaptive-digits", DONN(small_config), policy=AdaptivePolicy(max_batch=8))
            async with server:
                image = np.zeros((32, 32))
                await server.submit("digits", image)
                await server.submit("adaptive-digits", image)
                policies = {
                    name: type(batcher.policy).__name__ for name, batcher in server._batchers.items()
                }
                stats = {name: s.as_dict() for name, s in server.stats().items()}
            return policies, stats

        policies, stats = run_async(scenario())
        assert policies == {"digits": "SLOAwarePolicy", "adaptive-digits": "AdaptivePolicy"}
        assert stats["digits"]["completed"] == 1
        assert stats["digits"]["deadline_missed"] == 0

    def test_server_refuses_one_policy_instance_across_models(self, small_config):
        """Policies are stateful; a shared instance would average two
        models' latency behavior.  Instances serve one model, defaults
        must be factories -- enforced before the registry mutates."""
        from repro import DONN

        shared = SLOAwarePolicy(slo_ms=50.0)
        server = InferenceServer(policy=shared)
        server.add_model("first", DONN(small_config))
        with pytest.raises(TypeError, match="already serving 'first'"):
            server.add_model("second", DONN(small_config))
        assert "second" not in server.registry, "refused add must leave no trace"
        # A fresh instance (or a factory default) is the supported path.
        server.add_model("second", DONN(small_config), policy=SLOAwarePolicy(slo_ms=50.0))

    def test_server_rejects_bad_policy_spec(self):
        with pytest.raises(TypeError):
            InferenceServer(policy="fixed")
        with pytest.raises(TypeError):
            DynamicBatcher(FakeSession(), policy=object())
