"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.data import load_digits, load_fashion, load_segmentation_scenes
from repro.models.config import DONNConfig
from repro.optics.grid import SpatialGrid

# CI sets DERANDOMIZE_CI=1 so any code path that falls back to the global
# (unseeded) RNGs becomes reproducible across runs and python versions.
# All fixtures below already pin explicit seeds; this catches the rest.
if os.environ.get("DERANDOMIZE_CI"):
    np.random.seed(20230423)
    random.seed(20230423)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_grid() -> SpatialGrid:
    """A 32x32 grid with prototype-like pixel pitch."""
    return SpatialGrid(size=32, pixel_size=36e-6)


@pytest.fixture(scope="session")
def small_config() -> DONNConfig:
    """A fast 2-layer, 32x32 DONN configuration used across tests."""
    return DONNConfig(
        sys_size=32,
        pixel_size=36e-6,
        distance=0.05,
        wavelength=532e-9,
        num_layers=2,
        num_classes=10,
        det_size=4,
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_digits():
    """A small cached digit dataset: (train_x, train_y, test_x, test_y) at 32x32."""
    return load_digits(num_train=150, num_test=50, size=32, seed=7)


@pytest.fixture(scope="session")
def tiny_fashion():
    return load_fashion(num_train=60, num_test=30, size=32, seed=7)


@pytest.fixture(scope="session")
def tiny_segmentation():
    return load_segmentation_scenes(num_samples=12, size=32, seed=7)


def pytest_collection_modifyitems(config, items):
    """Optional CI sharding: TEST_SHARD_INDEX / TEST_SHARD_COUNT env vars.

    Tests are assigned to shards by a stable hash of their *file*, never
    per-test, so module-scoped fixtures (spawned replica fleets, cached
    sessions) are paid once on exactly one shard.  Unset (the default,
    and every local run) is a no-op.
    """
    count = int(os.environ.get("TEST_SHARD_COUNT", "0") or 0)
    if count <= 1:
        return
    index = int(os.environ.get("TEST_SHARD_INDEX", "0") or 0)
    if not 0 <= index < count:
        raise pytest.UsageError(
            f"TEST_SHARD_INDEX={index} out of range for TEST_SHARD_COUNT={count}"
        )
    import zlib

    kept, shed = [], []
    for item in items:
        path = str(item.fspath)
        if zlib.crc32(path.encode("utf-8")) % count == index:
            kept.append(item)
        else:
            shed.append(item)
    items[:] = kept
    config.hook.pytest_deselected(items=shed)
