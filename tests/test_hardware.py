"""Tests for the hardware backend: SLM, camera, deployment, on-chip, energy."""

import numpy as np
import pytest

from repro.codesign import FabricationVariation, ideal_profile, slm_profile, thz_mask_profile
from repro.hardware import (
    CMOSCamera,
    DIGITAL_PLATFORMS,
    DONNPowerModel,
    HardwareTestbench,
    OnChipIntegrationSpec,
    PlatformPowerModel,
    SLM,
    design_onchip_system,
    deployment_report,
    dump_mask_thickness,
    dump_slm_configuration,
    energy_efficiency_table,
    to_system,
)
from repro.models import DONN, DONNConfig
from repro.optics import SpatialGrid


class TestSLM:
    @pytest.fixture(scope="class")
    def grid(self):
        return SpatialGrid(size=16, pixel_size=36e-6)

    def test_program_phase_shapes(self, grid, rng):
        slm = SLM(grid, profile=slm_profile(num_levels=32))
        configuration = slm.program_phase(rng.uniform(0, 2 * np.pi, size=grid.shape))
        assert configuration.level_indices.shape == grid.shape
        assert configuration.voltages.shape == grid.shape
        assert configuration.shape == grid.shape

    def test_program_phase_shape_mismatch(self, grid):
        slm = SLM(grid)
        with pytest.raises(ValueError):
            slm.program_phase(np.zeros((4, 4)))

    def test_programmed_phase_close_to_target(self, grid, rng):
        profile = slm_profile(num_levels=256)
        slm = SLM(grid, profile=profile)
        target = rng.uniform(0.1, 2 * np.pi - 0.1, size=grid.shape)
        configuration = slm.program_phase(target)
        error = np.abs(np.angle(np.exp(1j * (configuration.phases - target))))
        assert error.max() < 0.1  # 256 levels -> fine quantisation

    def test_program_levels_validation(self, grid):
        slm = SLM(grid, profile=ideal_profile(num_levels=8))
        with pytest.raises(ValueError):
            slm.program_levels(np.full(grid.shape, 9))
        with pytest.raises(ValueError):
            slm.program_levels(np.zeros((2, 2), dtype=int))

    def test_program_levels_requires_control_calibration(self, grid):
        profile = ideal_profile(num_levels=8)  # no control values
        slm = SLM(grid, profile=profile)
        with pytest.raises(ValueError):
            slm.program_levels(np.zeros(grid.shape, dtype=int))

    def test_ideal_panel_applies_programmed_phase(self, grid, rng):
        profile = slm_profile(num_levels=64)
        slm = SLM(grid, profile=profile, variation=None)
        configuration = slm.program_phase(rng.uniform(0, 2 * np.pi, size=grid.shape))
        modulation = slm.applied_modulation(configuration)
        np.testing.assert_allclose(np.angle(modulation) % (2 * np.pi), configuration.phases % (2 * np.pi), atol=1e-9)

    def test_fabrication_variation_perturbs_modulation(self, grid, rng):
        profile = slm_profile(num_levels=64)
        ideal_panel = SLM(grid, profile=profile)
        real_panel = SLM(grid, profile=profile, variation=FabricationVariation(0.05, 0.1, seed=0))
        configuration = ideal_panel.program_phase(rng.uniform(0, 2 * np.pi, size=grid.shape))
        assert not np.allclose(ideal_panel.applied_modulation(configuration), real_panel.applied_modulation(configuration))

    def test_modulate_applies_elementwise(self, grid, rng):
        slm = SLM(grid)
        configuration = slm.program_phase(np.zeros(grid.shape))
        field = rng.normal(size=grid.shape).astype(complex)
        np.testing.assert_allclose(slm.modulate(field, configuration), field * slm.applied_modulation(configuration))


class TestCamera:
    def test_capture_normalised_and_quantised(self, rng):
        camera = CMOSCamera(bit_depth=8, shot_noise_scale=0.0, read_noise=0.0, seed=0)
        pattern = rng.uniform(size=(16, 16))
        frame = camera.capture(pattern)
        assert frame.min() >= 0.0 and frame.max() <= 1.0
        levels = np.unique(np.round(frame * 255) - frame * 255)
        np.testing.assert_allclose(levels, 0.0, atol=1e-9)

    def test_zero_pattern_returns_zeros(self):
        camera = CMOSCamera(seed=0)
        np.testing.assert_allclose(camera.capture(np.zeros((4, 4))), 0.0)

    def test_noise_changes_frame(self, rng):
        pattern = rng.uniform(size=(16, 16))
        noiseless = CMOSCamera(shot_noise_scale=0.0, read_noise=0.0, seed=0).capture(pattern)
        noisy = CMOSCamera(shot_noise_scale=0.05, read_noise=0.01, seed=0).capture(pattern)
        assert not np.allclose(noiseless, noisy)

    def test_invalid_bit_depth(self):
        with pytest.raises(ValueError):
            CMOSCamera(bit_depth=0)

    def test_preserves_pattern_structure(self, rng):
        camera = CMOSCamera(seed=1)
        pattern = rng.uniform(size=(32, 32)) ** 2
        frame = camera.capture(pattern)
        correlation = np.corrcoef(frame.ravel(), pattern.ravel())[0, 1]
        assert correlation > 0.98


class TestDeployment:
    @pytest.fixture(scope="class")
    def trained_setup(self, tiny_digits):
        config = DONNConfig(
            sys_size=32, pixel_size=36e-6, distance=0.05, wavelength=532e-9, num_layers=2, det_size=4, seed=0
        )
        profile = slm_profile(num_levels=64)
        model = DONN(config)
        return model, profile

    def test_to_system_produces_record_per_layer(self, trained_setup):
        model, profile = trained_setup
        records = to_system(model, profile)
        assert len(records) == model.num_layers
        for record in records:
            assert record["level_indices"].shape == model.config.grid.shape
            assert record["control_unit"] == "V"

    def test_to_system_phases_are_device_levels(self, trained_setup):
        model, profile = trained_setup
        for record in to_system(model, profile):
            assert set(np.unique(record["phases"])).issubset(set(profile.phases))

    def test_dump_slm_configuration_writes_files(self, trained_setup, tmp_path):
        model, profile = trained_setup
        files = dump_slm_configuration(to_system(model, profile), tmp_path)
        assert len(files) == 2 * model.num_layers
        assert all(path.exists() for path in files)
        loaded = np.load(files[0])
        assert loaded.shape == model.config.grid.shape

    def test_dump_mask_thickness_requires_thickness_device(self, trained_setup, tmp_path):
        model, _ = trained_setup
        thz = thz_mask_profile(num_levels=8)
        files = dump_mask_thickness(to_system(model, thz), tmp_path)
        assert len(files) == model.num_layers
        slm_records = to_system(model, slm_profile(num_levels=8))
        with pytest.raises(ValueError):
            dump_mask_thickness(slm_records, tmp_path)

    def test_testbench_requires_profile(self, trained_setup):
        model, _ = trained_setup
        with pytest.raises(ValueError):
            HardwareTestbench(model, profile=None)

    def test_hardware_pattern_shapes(self, trained_setup, tiny_digits):
        model, profile = trained_setup
        testbench = HardwareTestbench(model, profile=profile, seed=0)
        frames = testbench.hardware_detector_pattern(tiny_digits[0][:3])
        assert frames.shape == (3, 32, 32)
        single = testbench.hardware_detector_pattern(tiny_digits[0][0])
        assert single.shape == (32, 32)

    def test_hardware_logits_and_predictions(self, trained_setup, tiny_digits):
        model, profile = trained_setup
        testbench = HardwareTestbench(model, profile=profile, seed=0)
        logits = testbench.hardware_logits(tiny_digits[0][:4])
        assert logits.shape == (4, 10)
        predictions = testbench.predict(tiny_digits[0][:4])
        assert predictions.shape == (4,)

    def test_report_correlation_high_for_many_levels(self, trained_setup, tiny_digits):
        """With a fine (256-level) device and small fabrication error the
        emulated hardware must closely match the simulation (Figure 6)."""
        model, _ = trained_setup
        fine_profile = slm_profile(num_levels=256)
        report = deployment_report(model, tiny_digits[0][:8], tiny_digits[1][:8], profile=fine_profile, seed=0)
        assert report.pattern_correlation > 0.9
        assert 0.0 <= report.hardware_accuracy <= 1.0
        assert report.accuracy_gap == pytest.approx(report.simulation_accuracy - report.hardware_accuracy)

    def test_coarse_device_reduces_correlation(self, trained_setup, tiny_digits):
        model, _ = trained_setup
        fine = deployment_report(model, tiny_digits[0][:6], tiny_digits[1][:6], profile=slm_profile(num_levels=256), seed=0)
        coarse = deployment_report(model, tiny_digits[0][:6], tiny_digits[1][:6], profile=slm_profile(num_levels=4), seed=0)
        assert coarse.pattern_correlation <= fine.pattern_correlation + 1e-6


class TestOnChip:
    def test_chip_dimensions_match_case_study_arithmetic(self):
        """Section 5.5: 200 x 3.45 um pixels -> 690 um chip side."""
        config = DONNConfig(sys_size=200, pixel_size=3.45e-6, distance=532e-6, wavelength=532e-9, num_layers=5)
        spec = OnChipIntegrationSpec(config=config)
        dims = spec.dimensions()
        assert dims["side_um"] == pytest.approx(690.0)
        assert dims["height_um"] == pytest.approx(5 * 532.0 + 5 * 1.0, rel=0.01)

    def test_fits_detector(self):
        config = DONNConfig(sys_size=200, pixel_size=3.45e-6, distance=532e-6, num_layers=5)
        spec = OnChipIntegrationSpec(config=config)
        assert spec.fits_detector(1e-3)
        assert not spec.fits_detector(0.5e-3)

    def test_fabrication_spec_fields(self):
        config = DONNConfig(sys_size=100, pixel_size=3.45e-6, distance=500e-6, num_layers=5)
        spec = OnChipIntegrationSpec(config=config).fabrication_spec()
        assert spec["resolution"] == 100
        assert spec["pixel_pitch_um"] == pytest.approx(3.45)
        assert spec["num_layers"] == 5

    def test_design_onchip_system_picks_micron_scale_distance(self):
        spec = design_onchip_system(pixel_size=3.45e-6, wavelength=532e-9, num_layers=5)
        assert spec.config.pixel_size == pytest.approx(3.45e-6)
        # The diffraction distance must shrink to the sub-millimetre scale.
        assert 1e-5 < spec.config.distance < 5e-3

    def test_design_onchip_custom_score(self):
        spec = design_onchip_system(
            pixel_size=3.45e-6,
            wavelength=532e-9,
            candidate_distances=[1e-4, 2e-4],
            candidate_resolutions=[100, 200],
            score_fn=lambda config: config.sys_size,  # prefer largest resolution
        )
        assert spec.config.sys_size == 200


class TestEnergyModel:
    def test_donn_power_model_matches_paper_order(self):
        model = DONNPowerModel()
        assert model.fps_per_watt() == pytest.approx(995.0, rel=0.01)

    def test_platform_fps_decreases_with_ops(self):
        platform = DIGITAL_PLATFORMS["CPU Xeon"]
        assert platform.frames_per_second(1e6) > platform.frames_per_second(1e9)

    def test_platform_validation(self):
        with pytest.raises(ValueError):
            PlatformPowerModel("x", 1e9, 10.0).frames_per_second(0)

    def test_table_rows_and_platforms(self):
        rows = energy_efficiency_table(system_size=200)
        platforms = [row["platform"] for row in rows]
        assert platforms[-1] == "DONN prototype"
        assert len(rows) == len(DIGITAL_PLATFORMS) + 1

    def test_donn_beats_every_digital_platform(self):
        """Table 4's headline: the DONN is 1-3 orders of magnitude more
        efficient than every digital platform."""
        rows = energy_efficiency_table(system_size=200)
        for row in rows[:-1]:
            assert row["donn_advantage_mlp"] > 10
            assert row["donn_advantage_cnn"] > 10

    def test_edge_tpu_closer_than_gpus(self):
        rows = {row["platform"]: row for row in energy_efficiency_table(system_size=200)[:-1]}
        assert rows["XPU (EdgeTPU)"]["donn_advantage_mlp"] < rows["GPU 3090 Ti"]["donn_advantage_mlp"]
