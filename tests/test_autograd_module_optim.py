"""Tests for Module/Parameter containers and the optimizers."""

import numpy as np
import pytest

from repro.autograd import Adam, Module, ModuleList, Parameter, SGD, Sequential, Tensor, functional as F


class Affine(Module):
    def __init__(self, scale=2.0, offset=0.0):
        super().__init__()
        self.scale = Parameter(np.array(scale))
        self.offset = Parameter(np.array(offset))

    def forward(self, x):
        return x * self.scale + self.offset


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.first = Affine(1.0)
        self.second = Affine(3.0)
        self.free = Parameter(np.zeros(2))

    def forward(self, x):
        return self.second(self.first(x))


class TestModule:
    def test_parameters_collected_recursively(self):
        model = Nested()
        assert len(model.parameters()) == 5

    def test_named_parameters_have_dotted_paths(self):
        names = dict(Nested().named_parameters()).keys()
        assert "first.scale" in names and "second.offset" in names and "free" in names

    def test_modules_iterates_children(self):
        assert len(list(Nested().modules())) == 3

    def test_zero_grad_clears_all(self):
        model = Affine()
        (model(Tensor([1.0, 2.0])) ** 2).sum().backward()
        assert model.scale.grad is not None
        model.zero_grad()
        assert model.scale.grad is None

    def test_train_eval_propagates(self):
        model = Nested()
        model.eval()
        assert not model.first.training and not model.second.training
        model.train()
        assert model.first.training

    def test_state_dict_roundtrip(self):
        source = Nested()
        source.first.scale.data = np.array(42.0)
        target = Nested()
        target.load_state_dict(source.state_dict())
        assert target.first.scale.data == pytest.approx(42.0)

    def test_load_state_dict_rejects_missing_keys(self):
        model = Nested()
        state = model.state_dict()
        state.pop("free")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = Nested()
        state = model.state_dict()
        state["free"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1.0)


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Affine(2.0), Affine(3.0, 1.0))
        out = model(Tensor([1.0]))
        assert out.data[0] == pytest.approx(7.0)

    def test_sequential_len_getitem_iter(self):
        model = Sequential(Affine(), Affine())
        assert len(model) == 2
        assert isinstance(model[0], Affine)
        assert len(list(iter(model))) == 2

    def test_sequential_append_registers_parameters(self):
        model = Sequential()
        model.append(Affine())
        assert len(model.parameters()) == 2

    def test_module_list_registers_parameters(self):
        container = ModuleList([Affine(), Affine()])
        assert len(container.parameters()) == 4
        assert len(container) == 2
        assert isinstance(container[1], Affine)

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([Affine()])(Tensor([1.0]))


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        return param, target

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges_faster_than_plain(self):
        def run(momentum):
            param, target = self._quadratic_problem()
            optimizer = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(60):
                optimizer.zero_grad()
                ((param - Tensor(target)) ** 2).sum().backward()
                optimizer.step()
            return float(np.abs(param.data - target).sum())

        assert run(0.9) < run(0.0)

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_handles_complex_parameters(self):
        target = np.array([1.0 + 1.0j, -2.0j])
        param = Parameter(np.zeros(2, dtype=complex))
        optimizer = Adam([param], lr=0.1)
        for _ in range(400):
            optimizer.zero_grad()
            (param - Tensor(target)).abs2().sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_step_skips_parameters_without_grad(self):
        used = Parameter(np.zeros(2))
        unused = Parameter(np.ones(2))
        optimizer = Adam([used, unused], lr=0.5)
        (used.sum()).backward()
        optimizer.step()
        np.testing.assert_allclose(unused.data, np.ones(2))

    def test_adam_invariant_to_gradient_scale(self):
        """Adam's parameter updates depend only weakly on gradient magnitude."""

        def run(scale):
            param = Parameter(np.array([1.0]))
            optimizer = Adam([param], lr=0.1)
            for _ in range(10):
                optimizer.zero_grad()
                (param * scale).sum().backward()
                optimizer.step()
            return param.data.copy()

        np.testing.assert_allclose(run(1.0), run(1000.0), atol=1e-6)

    def test_training_a_small_classifier_reduces_loss(self, rng):
        """End-to-end: a 2-layer MLP on random separable data learns."""
        inputs = rng.normal(size=(60, 5))
        labels = (inputs[:, 0] + inputs[:, 1] > 0).astype(int)
        weight1 = Parameter(rng.normal(scale=0.5, size=(8, 5)))
        bias1 = Parameter(np.zeros(8))
        weight2 = Parameter(rng.normal(scale=0.5, size=(2, 8)))
        bias2 = Parameter(np.zeros(2))
        params = [weight1, bias1, weight2, bias2]
        optimizer = Adam(params, lr=0.05)

        def loss_value():
            hidden = F.relu(F.linear(Tensor(inputs), weight1, bias1))
            logits = F.linear(hidden, weight2, bias2)
            return F.cross_entropy(logits, labels)

        initial = float(loss_value().data)
        for _ in range(60):
            optimizer.zero_grad()
            loss = loss_value()
            loss.backward()
            optimizer.step()
        assert float(loss_value().data) < initial * 0.3
