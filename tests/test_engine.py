"""Tests for the autograd-free inference engine (``repro.engine``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DONN, MultiChannelDONN, SegmentationDONN
from repro.autograd import Module, no_grad
from repro.codesign import slm_profile
from repro.engine import (
    COMPLEX64_LOGIT_ATOL,
    InferenceSession,
    available_backends,
    compile_model,
    get_fft_backend,
)
from repro.engine import backends as engine_backends
from repro.train import evaluate_classifier
from repro.train.loop import evaluate_with_detector_noise

PARITY_ATOL = 1e-10


def graph_eval(model, inputs) -> np.ndarray:
    """Reference logits/patterns from the autograd path in eval mode."""
    was_training = model.training
    model.eval()
    with no_grad():
        out = np.asarray(model(inputs).data.real)
    model.train(was_training)
    return out


@pytest.fixture(scope="module")
def images(rng):
    return rng.uniform(0.0, 1.0, size=(12, 32, 32))


class TestParity:
    @pytest.mark.parametrize("pad_factor", [1, 2])
    def test_donn_parity_with_and_without_padding(self, small_config, images, pad_factor):
        model = DONN(small_config.with_updates(pad_factor=pad_factor))
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    @pytest.mark.parametrize("approx", ["fresnel", "fraunhofer"])
    def test_donn_parity_other_approximations(self, small_config, images, approx):
        model = DONN(small_config.with_updates(approx=approx))
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_codesign_donn_parity(self, small_config, images):
        model = DONN(small_config, device_profile=slm_profile(num_levels=16))
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    @pytest.mark.parametrize("pad_factor", [1, 2])
    def test_multichannel_parity(self, small_config, rng, pad_factor):
        model = MultiChannelDONN(small_config.with_updates(pad_factor=pad_factor))
        rgb = rng.uniform(0.0, 1.0, size=(6, 3, 32, 32))
        session = model.export_session()
        np.testing.assert_allclose(session.run(rgb), graph_eval(model, rgb), atol=PARITY_ATOL)

    @pytest.mark.parametrize("use_skip", [True, False])
    @pytest.mark.parametrize("pad_factor", [1, 2])
    def test_segmentation_parity(self, small_config, images, use_skip, pad_factor):
        config = small_config.with_updates(num_layers=4, pad_factor=pad_factor)
        model = SegmentationDONN(config, use_skip=use_skip)
        session = model.export_session()
        assert session.kind == "segmentation"
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_predictions_match_model(self, small_config, images):
        model = DONN(small_config)
        session = model.export_session()
        np.testing.assert_array_equal(session.predict(images), model.predict(images))

    def test_session_snapshots_parameters(self, small_config, images):
        """Parameter updates after export only land after refresh()."""
        model = DONN(small_config)
        session = model.export_session()
        before = session.run(images)
        model.diffractive_layers[0].phase.data = model.diffractive_layers[0].phase.data + 0.5
        np.testing.assert_array_equal(session.run(images), before)
        session.refresh()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_training_mode_restored_after_export(self, small_config):
        model = DONN(small_config)
        model.train()
        model.export_session()
        assert model.training
        model.eval()
        model.export_session()
        assert not model.training


class TestNonlinearCompilation:
    """Models with NonlinearLayer elements must compile and keep parity."""

    @pytest.mark.parametrize("nonlinearity", ["saturable", "kerr"])
    def test_donn_nonlinear_parity(self, small_config, images, nonlinearity):
        model = DONN(small_config, nonlinearity=nonlinearity)
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_codesign_nonlinear_parity(self, small_config, images):
        model = DONN(small_config, device_profile=slm_profile(num_levels=16), nonlinearity="kerr")
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_multichannel_nonlinear_parity(self, small_config, rng):
        model = MultiChannelDONN(small_config, nonlinearity="saturable")
        rgb = rng.uniform(0.0, 1.0, size=(5, 3, 32, 32))
        session = model.export_session()
        np.testing.assert_allclose(session.run(rgb), graph_eval(model, rgb), atol=PARITY_ATOL)

    @pytest.mark.parametrize("use_skip", [True, False])
    def test_segmentation_nonlinear_parity(self, small_config, images, use_skip):
        model = SegmentationDONN(small_config.with_updates(num_layers=4), use_skip=use_skip, nonlinearity="kerr")
        session = model.export_session()
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_unsupported_nonlinearity_rejected_at_compile(self, small_config):
        class Opaque(Module):
            def forward(self, field):
                return field

        model = DONN(small_config)
        model.nonlinearity = Opaque()  # bypasses make_nonlinearity validation
        with pytest.raises(TypeError, match="apply_numpy"):
            model.export_session()


class TestReducedPrecision:
    """dtype="complex64": half the memory, documented accuracy budget."""

    def test_donn_within_budget(self, small_config, images):
        model = DONN(small_config)
        full = model.export_session().run(images)
        half = model.export_session(dtype="complex64").run(images)
        assert half.dtype == np.float32
        np.testing.assert_allclose(half, full, atol=COMPLEX64_LOGIT_ATOL)

    def test_multichannel_within_budget(self, small_config, rng):
        model = MultiChannelDONN(small_config)
        rgb = rng.uniform(0.0, 1.0, size=(4, 3, 32, 32))
        full = model.export_session().run(rgb)
        half = model.export_session(dtype="complex64").run(rgb)
        np.testing.assert_allclose(half, full, atol=COMPLEX64_LOGIT_ATOL)

    def test_segmentation_within_budget(self, small_config, images):
        model = SegmentationDONN(small_config.with_updates(num_layers=3))
        full = model.export_session().run(images)
        half = model.export_session(dtype="complex64").run(images)
        np.testing.assert_allclose(half, full, atol=COMPLEX64_LOGIT_ATOL)

    def test_nonlinear_complex64_stays_complex64(self, small_config, images):
        """Nonlinearities must not silently promote back to complex128."""
        model = DONN(small_config, nonlinearity="kerr")
        session = model.export_session(dtype="complex64")
        pattern = session.intensity_patterns(images)
        assert pattern.dtype == np.float32
        np.testing.assert_allclose(
            session.run(images), model.export_session().run(images), atol=COMPLEX64_LOGIT_ATOL
        )

    @pytest.mark.parametrize("backend", ["numpy", "scipy"])
    def test_backends_preserve_complex64(self, backend):
        if backend == "scipy" and "scipy" not in available_backends():
            pytest.skip("scipy not installed")
        fft = get_fft_backend(backend)
        field = np.ones((2, 8, 8), dtype=np.complex64)
        assert fft.fft2(field).dtype == np.complex64
        assert fft.ifft2(field).dtype == np.complex64
        field128 = np.ones((2, 8, 8), dtype=np.complex128)
        assert fft.fft2(field128).dtype == np.complex128

    def test_dtype_accepts_aliases_and_rejects_garbage(self, small_config):
        model = DONN(small_config)
        assert InferenceSession(model, dtype=np.complex64).dtype == np.complex64
        assert InferenceSession(model, dtype="complex128").dtype == np.complex128
        with pytest.raises(ValueError, match="complex64 or complex128"):
            InferenceSession(model, dtype="float32")

    def test_predictions_usually_match_full_precision(self, small_config, images):
        model = DONN(small_config)
        full = model.export_session().predict(images)
        half = model.export_session(dtype="complex64").predict(images)
        np.testing.assert_array_equal(half, full)


class TestStreaming:
    def test_chunked_streaming_equivalence(self, small_config, images):
        """batch_size 1 and 64 must give the same outputs."""
        session = DONN(small_config).export_session()
        one = session.run(images, batch_size=1)
        many = session.run(images, batch_size=64)
        np.testing.assert_allclose(one, many, rtol=0.0, atol=1e-12)

    def test_default_batch_size_streams_all_inputs(self, small_config, images):
        session = DONN(small_config).export_session(batch_size=5)
        assert session.run(images).shape == (len(images), 10)

    def test_single_sample_has_no_batch_axis(self, small_config, images):
        session = DONN(small_config).export_session()
        assert session.run(images[0]).shape == (10,)
        assert session.predict(images[:3]).shape == (3,)

    def test_multichannel_single_sample_promoted_like_model(self, small_config, rng):
        model = MultiChannelDONN(small_config)
        session = model.export_session()
        sample = rng.uniform(0.0, 1.0, size=(3, 32, 32))
        assert session.run(sample).shape == graph_eval(model, sample).shape == (1, 10)
        np.testing.assert_array_equal(session.predict(sample), model.predict(sample))

    def test_empty_batch_yields_empty_logits(self, small_config):
        session = DONN(small_config).export_session()
        assert session.run(np.zeros((0, 32, 32))).shape == (0, 10)

    def test_chunk_larger_than_batch_runs_one_pass_without_scratch_copy(self, small_config, images):
        """chunk_size > len(batch) must mean a single program call whose
        output is returned as-is (no scratch buffer, no concatenate copy)."""
        session = DONN(small_config).export_session()
        program = session._program
        calls = []
        original = program.run

        def counting_run(batch):
            calls.append(len(batch))
            return original(batch)

        program.run = counting_run
        out = session.run(images, batch_size=len(images) + 100)
        assert calls == [len(images)]
        np.testing.assert_allclose(out, original(np.asarray(images, dtype=float)), atol=1e-12)

        sentinel = np.zeros((len(images), 10))
        program.run = lambda batch: sentinel
        assert session.run(images, batch_size=10_000) is sentinel

    def test_batch_of_one_streams_without_scratch_copy(self, small_config, images):
        """A (1, H, W) batch is one direct program call at any chunk size."""
        session = DONN(small_config).export_session()
        single = images[:1]
        reference = graph_eval(DONN(small_config), single)
        for chunk in (1, 4, 64):
            program = session._program
            calls = []
            original = program.run

            def counting_run(batch, _calls=calls, _original=original):
                _calls.append(len(batch))
                return _original(batch)

            program.run = counting_run
            out = session.run(single, batch_size=chunk)
            program.run = original
            assert calls == [1]
            assert out.shape == (1, 10)
            np.testing.assert_allclose(out, reference, atol=PARITY_ATOL)

    def test_multi_chunk_streaming_preallocates_correctly(self, small_config, images):
        """Uneven chunking (7 images, chunks of 3) fills the output exactly."""
        session = DONN(small_config).export_session()
        seven = images[:7]
        chunked = session.run(seven, batch_size=3)
        whole = session.run(seven, batch_size=64)
        assert chunked.shape == whole.shape == (7, 10)
        np.testing.assert_allclose(chunked, whole, rtol=0.0, atol=1e-12)

    def test_invalid_batch_size_rejected(self, small_config):
        with pytest.raises(ValueError):
            DONN(small_config).export_session(batch_size=0)


class TestBackends:
    def test_numpy_fallback_when_scipy_missing(self, monkeypatch, small_config, images):
        """With scipy unavailable, auto selection degrades to numpy."""
        monkeypatch.setattr(engine_backends, "_import_scipy_fft", lambda: None)
        assert available_backends() == ("numpy",)
        backend = get_fft_backend("auto")
        assert backend.name == "numpy"
        model = DONN(small_config)
        session = InferenceSession(model)
        assert session.backend_name == "numpy"
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_scipy_request_without_scipy_raises(self, monkeypatch):
        monkeypatch.setattr(engine_backends, "_import_scipy_fft", lambda: None)
        with pytest.raises(RuntimeError):
            get_fft_backend("scipy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_fft_backend("fftw")

    def test_numpy_and_auto_backends_agree(self, small_config, images):
        model = DONN(small_config)
        auto = model.export_session().run(images)
        explicit = model.export_session(backend="numpy").run(images)
        np.testing.assert_allclose(auto, explicit, atol=PARITY_ATOL)

    def test_workers_forwarded(self, small_config, images):
        session = DONN(small_config).export_session(workers=2)
        assert session.run(images).shape == (len(images), 10)


class TestSessionAPI:
    def test_compile_model_alias(self, small_config, images):
        model = DONN(small_config)
        session = compile_model(model, batch_size=4)
        np.testing.assert_allclose(session.run(images), graph_eval(model, images), atol=PARITY_ATOL)

    def test_unsupported_model_rejected(self, small_grid):
        from repro.layers.detector import Detector

        with pytest.raises(TypeError):
            InferenceSession(Detector(small_grid, num_classes=10))

    def test_classifier_only_methods_guarded(self, small_config, images):
        seg = SegmentationDONN(small_config.with_updates(num_layers=3)).export_session()
        with pytest.raises(RuntimeError):
            seg.predict(images)
        clf = DONN(small_config).export_session()
        with pytest.raises(RuntimeError):
            clf.predict_mask(images)

    def test_segmentation_predict_mask_matches_model(self, small_config, images):
        model = SegmentationDONN(small_config.with_updates(num_layers=3))
        session = model.export_session()
        np.testing.assert_array_equal(session.predict_mask(images), model.predict_mask(images))

    def test_detector_pattern_and_read(self, small_config, images):
        model = DONN(small_config)
        session = model.export_session()
        pattern = session.intensity_patterns(images)
        assert pattern.shape == (len(images), 32, 32)
        np.testing.assert_allclose(session.read_detector(pattern), session.run(images), atol=PARITY_ATOL)


class TestEvaluateIntegration:
    def test_evaluate_classifier_engine_path_matches(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        model = DONN(small_config)
        graph_acc = evaluate_classifier(model, train_x[:40], train_y[:40])
        engine_acc = evaluate_classifier(model, train_x[:40], train_y[:40], use_engine=True)
        assert graph_acc == pytest.approx(engine_acc)

    def test_evaluate_with_detector_noise_engine_path_matches(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        model = DONN(small_config)
        graph = evaluate_with_detector_noise(model, train_x[:32], train_y[:32], noise_level=0.03, seed=5)
        engine = evaluate_with_detector_noise(
            model, train_x[:32], train_y[:32], noise_level=0.03, seed=5, use_engine=True
        )
        assert graph["accuracy"] == pytest.approx(engine["accuracy"])
        assert graph["confidence"] == pytest.approx(engine["confidence"], abs=1e-9)

    def test_evaluate_restores_previous_mode(self, small_config, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        model = DONN(small_config)
        model.eval()
        evaluate_classifier(model, train_x[:16], train_y[:16])
        assert not model.training, "evaluate_classifier must restore the pre-call eval mode"
        model.train()
        evaluate_classifier(model, train_x[:16], train_y[:16])
        assert model.training
        model.eval()
        evaluate_with_detector_noise(model, train_x[:16], train_y[:16], noise_level=0.01)
        assert not model.training
