"""The docs stay honest: links resolve, tested examples run.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``) so
a broken doc link or a stale fenced example fails the tier-1 suite
locally, not just on GitHub.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_tree_exists():
    for name in ("architecture.md", "serving.md", "benchmarks.md"):
        assert (REPO_ROOT / "docs" / name).exists(), f"docs/{name} is missing"


def test_internal_links_resolve():
    assert check_docs.check_links() == []


def test_fenced_doctest_examples_pass():
    assert check_docs.check_doctests() == []


def test_readme_links_the_docs_tree():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/architecture.md", "docs/serving.md", "docs/benchmarks.md"):
        assert target in readme, f"README does not link {target}"
