"""Property-based tests (hypothesis) on the autodiff engine and core ops."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients, functional as F, ops

_settings = settings(max_examples=25, deadline=None)

real_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
)

small_shapes = hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=4)


def complex_arrays(shape):
    return hnp.arrays(
        dtype=np.complex128,
        shape=shape,
        elements=st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
    )


class TestAlgebraicProperties:
    @_settings
    @given(real_arrays)
    def test_add_commutative(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @_settings
    @given(real_arrays)
    def test_mul_by_one_is_identity(self, values):
        t = Tensor(values)
        np.testing.assert_allclose((t * 1.0).data, values)

    @_settings
    @given(real_arrays)
    def test_double_negation(self, values):
        t = Tensor(values)
        np.testing.assert_allclose((-(-t)).data, values)

    @_settings
    @given(real_arrays)
    def test_sum_of_parts_equals_total(self, values):
        t = Tensor(values)
        np.testing.assert_allclose(t.sum().item(), values.sum(), rtol=1e-10, atol=1e-10)

    @_settings
    @given(st.data())
    def test_reshape_preserves_sum(self, data):
        values = data.draw(hnp.arrays(np.float64, (2, 6), elements=st.floats(-3, 3)))
        t = Tensor(values)
        np.testing.assert_allclose(t.reshape(3, 4).sum().item(), values.sum(), atol=1e-9)


class TestComplexFieldProperties:
    @_settings
    @given(st.data())
    def test_intensity_nonnegative(self, data):
        values = data.draw(complex_arrays(data.draw(small_shapes)))
        assert np.all(Tensor(values).abs2().data >= 0)

    @_settings
    @given(st.data())
    def test_fft_preserves_energy_parseval(self, data):
        values = data.draw(complex_arrays((4, 4)))
        spectrum = ops.fft2(Tensor(values)).data
        np.testing.assert_allclose(
            np.sum(np.abs(values) ** 2), np.sum(np.abs(spectrum) ** 2) / values.size, rtol=1e-8, atol=1e-8
        )

    @_settings
    @given(st.data())
    def test_fft_roundtrip(self, data):
        values = data.draw(complex_arrays((3, 3)))
        recovered = ops.ifft2(ops.fft2(Tensor(values))).data
        np.testing.assert_allclose(recovered, values, atol=1e-9)

    @_settings
    @given(st.data())
    def test_phase_modulation_preserves_intensity(self, data):
        """exp(j phi) modulation never changes |field|^2 (pure phase device)."""
        field = data.draw(complex_arrays((3, 3)))
        phase = data.draw(
            hnp.arrays(np.float64, (3, 3), elements=st.floats(0, 2 * np.pi, allow_nan=False))
        )
        modulated = Tensor(field) * ops.exp_i(Tensor(phase))
        np.testing.assert_allclose(modulated.abs2().data, np.abs(field) ** 2, rtol=1e-9, atol=1e-9)

    @_settings
    @given(st.data())
    def test_conj_is_involution(self, data):
        values = data.draw(complex_arrays((2, 3)))
        np.testing.assert_allclose(Tensor(values).conj().conj().data, values)


class TestGradientProperties:
    @_settings
    @given(st.data())
    def test_gradcheck_random_smooth_chain(self, data):
        values = data.draw(
            hnp.arrays(np.float64, (3, 3), elements=st.floats(-2.0, 2.0, allow_nan=False))
        )
        x = Tensor(values, requires_grad=True)
        assert check_gradients(lambda x: ((x * 0.5).tanh() * x.cos()).sum(), [x], atol=1e-5)

    @_settings
    @given(st.data())
    def test_softmax_gradient_rows_sum_to_zero(self, data):
        values = data.draw(hnp.arrays(np.float64, (2, 4), elements=st.floats(-3, 3, allow_nan=False)))
        weights = data.draw(hnp.arrays(np.float64, (2, 4), elements=st.floats(-1, 1, allow_nan=False)))
        x = Tensor(values, requires_grad=True)
        (F.softmax(x) * Tensor(weights)).sum().backward()
        # Softmax output is shift invariant, so its gradient has zero row sum.
        np.testing.assert_allclose(x.grad.sum(axis=-1), 0.0, atol=1e-10)

    @_settings
    @given(st.data())
    def test_linearity_of_gradients(self, data):
        values = data.draw(hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2, allow_nan=False)))
        scale = data.draw(st.floats(min_value=0.5, max_value=3.0))
        x1 = Tensor(values, requires_grad=True)
        (x1.sum() * scale).backward()
        x2 = Tensor(values, requires_grad=True)
        x2.sum().backward()
        np.testing.assert_allclose(x1.grad, np.asarray(x2.grad) * scale, rtol=1e-10)
