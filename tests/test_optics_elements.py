"""Tests for passive optical elements: apertures, lenses, splitters, mirrors."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.optics import BeamSplitter, Mirror, circular_aperture, rectangular_aperture, thin_lens_phase


class TestApertures:
    def test_circular_aperture_area(self, small_grid):
        mask = circular_aperture(small_grid, radius_fraction=0.5)
        measured = mask.sum() * small_grid.pixel_size**2
        radius = 0.5 * small_grid.extent / 2
        assert measured == pytest.approx(np.pi * radius**2, rel=0.1)

    def test_circular_aperture_binary(self, small_grid):
        mask = circular_aperture(small_grid)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_circular_aperture_invalid_fraction(self, small_grid):
        with pytest.raises(ValueError):
            circular_aperture(small_grid, radius_fraction=0.0)
        with pytest.raises(ValueError):
            circular_aperture(small_grid, radius_fraction=1.5)

    def test_rectangular_aperture_area(self, small_grid):
        mask = rectangular_aperture(small_grid, width_fraction=0.5, height_fraction=0.25)
        expected_fraction = 0.5 * 0.25
        assert mask.mean() == pytest.approx(expected_fraction, rel=0.15)

    def test_full_rectangular_aperture_is_open(self, small_grid):
        mask = rectangular_aperture(small_grid, width_fraction=1.0, height_fraction=1.0)
        assert mask.mean() == pytest.approx(1.0)


class TestThinLens:
    def test_phase_is_zero_on_axis(self, small_grid):
        phase = thin_lens_phase(small_grid, wavelength=532e-9, focal_length=0.1)
        centre = small_grid.size // 2
        on_axis = abs(phase[centre, centre])
        assert on_axis == pytest.approx(0.0, abs=abs(phase).max() * 1e-2)

    def test_phase_is_radially_symmetric(self, small_grid):
        phase = thin_lens_phase(small_grid, wavelength=532e-9, focal_length=0.1)
        np.testing.assert_allclose(phase, phase.T, atol=1e-9)

    def test_negative_focal_length_flips_sign(self, small_grid):
        converging = thin_lens_phase(small_grid, 532e-9, 0.1)
        diverging = thin_lens_phase(small_grid, 532e-9, -0.1)
        np.testing.assert_allclose(converging, -diverging)

    def test_zero_focal_length_rejected(self, small_grid):
        with pytest.raises(ValueError):
            thin_lens_phase(small_grid, 532e-9, 0.0)


class TestBeamSplitterMirror:
    def test_split_conserves_power(self, rng):
        field = Tensor(rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8)))
        a, b = BeamSplitter().split(field)
        total = float(a.abs2().sum().data + b.abs2().sum().data)
        assert total == pytest.approx(float(field.abs2().sum().data), rel=1e-10)

    def test_split_halves_power_per_arm(self, rng):
        field = Tensor(rng.normal(size=(4, 4)).astype(complex))
        a, b = BeamSplitter().split(field)
        half = float(field.abs2().sum().data) / 2
        assert float(a.abs2().sum().data) == pytest.approx(half)
        assert float(b.abs2().sum().data) == pytest.approx(half)

    def test_combine_conserves_power_for_orthogonal_inputs(self, rng):
        a = Tensor((rng.normal(size=(4, 4)) + 0j))
        zero = Tensor(np.zeros((4, 4), dtype=complex))
        combined = BeamSplitter().combine(a, zero)
        assert float(combined.abs2().sum().data) == pytest.approx(float(a.abs2().sum().data) / 2)

    def test_mirror_flips_and_preserves_intensity(self, rng):
        field = Tensor(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))
        reflected = Mirror()(field)
        np.testing.assert_allclose(reflected.abs2().data, field.abs2().data[..., ::-1])
        np.testing.assert_allclose(reflected.data, -field.data[..., ::-1])
