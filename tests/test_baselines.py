"""Tests for the baselines: LightPipes-style emulator, digital NNs, regularization."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.baselines import (
    CNNBaseline,
    KernelTimings,
    LightPipesEmulator,
    MLPBaseline,
    build_baseline_donn,
    build_regularized_donn,
    calibrate_amplitude_factor,
)
from repro.models import DONN, DONNConfig
from repro.optics import RayleighSommerfeldPropagator, SpatialGrid
from repro.train import Trainer


class TestLightPipesEmulator:
    @pytest.fixture(scope="class")
    def grid(self):
        return SpatialGrid(size=32, pixel_size=10e-6)

    def test_parameter_validation(self, grid):
        with pytest.raises(ValueError):
            LightPipesEmulator(grid, wavelength=-1.0, distance=0.01)

    def test_field_shape_checked(self, grid):
        emulator = LightPipesEmulator(grid, 532e-9, 0.01)
        with pytest.raises(ValueError):
            emulator.propagate(np.zeros((8, 8), dtype=complex))

    def test_propagation_matches_optimised_kernel(self, grid, rng):
        """The reference emulator and the tensor kernel evaluate the same
        physics, so their output fields must agree to numerical precision."""
        field = rng.normal(size=grid.shape) + 1j * rng.normal(size=grid.shape)
        reference = LightPipesEmulator(grid, 532e-9, 0.01).propagate(field)
        optimised = RayleighSommerfeldPropagator(grid, 532e-9, 0.01)(Tensor(field)).data
        np.testing.assert_allclose(reference, optimised, atol=1e-9)

    def test_run_layer_applies_phase_screen(self, grid, rng):
        emulator = LightPipesEmulator(grid, 532e-9, 0.01)
        field = rng.normal(size=grid.shape).astype(complex)
        phase = rng.uniform(0, 2 * np.pi, size=grid.shape)
        layered = emulator.run_layer(field, phase)
        np.testing.assert_allclose(np.abs(layered), np.abs(emulator.propagate(field)), atol=1e-9)

    def test_run_donn_matches_donn_model_detector_pattern(self, rng):
        """A full multi-layer emulation must match the DONN model's pattern."""
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=3, seed=0, amplitude_factor=1.0)
        model = DONN(config)
        images = rng.uniform(size=(2, 32, 32))
        with no_grad():
            expected = model.detector_pattern(images).data
        emulator = LightPipesEmulator(config.grid, config.wavelength, config.distance)
        fields = model.encode(images).data
        outputs = emulator.run_donn(list(fields), model.phase_patterns())
        np.testing.assert_allclose(np.stack(outputs), expected, atol=1e-8)

    def test_timings_recorded_and_reset(self, grid, rng):
        emulator = LightPipesEmulator(grid, 532e-9, 0.01)
        emulator.run_donn([rng.normal(size=grid.shape).astype(complex)], [np.zeros(grid.shape)])
        assert emulator.timings.fft2 > 0
        assert emulator.timings.ifft2 > 0
        assert emulator.timings.complex_multiply > 0
        assert emulator.timings.total() > 0
        emulator.reset_timings()
        assert emulator.timings.total() == 0.0

    def test_kernel_timings_accumulate(self):
        total = KernelTimings(fft2=1.0, ifft2=2.0)
        total += KernelTimings(fft2=0.5, complex_multiply=1.0)
        assert total.fft2 == 1.5
        assert total.as_dict()["complex_multiply"] == 1.0

    def test_slower_than_optimised_kernel(self, rng):
        """The DFT-matrix, per-sample path must be measurably slower than the
        batched FFT kernel on a moderately sized workload (Table 1's point)."""
        import time

        grid = SpatialGrid(size=96, pixel_size=10e-6)
        batch = rng.normal(size=(4,) + grid.shape) + 1j * rng.normal(size=(4,) + grid.shape)
        emulator = LightPipesEmulator(grid, 532e-9, 0.01)
        start = time.perf_counter()
        for sample in batch:
            emulator.propagate(sample)
        reference_time = time.perf_counter() - start

        propagator = RayleighSommerfeldPropagator(grid, 532e-9, 0.01)
        tensor_batch = Tensor(batch)
        propagator(tensor_batch)  # warm-up
        start = time.perf_counter()
        propagator(tensor_batch)
        optimised_time = time.perf_counter() - start
        assert optimised_time < reference_time


class TestDigitalBaselines:
    def test_mlp_forward_shape(self, rng):
        model = MLPBaseline(input_size=64, hidden=16, num_classes=10)
        logits = model(rng.normal(size=(5, 8, 8)))
        assert logits.shape == (5, 10)

    def test_mlp_operation_count(self):
        model = MLPBaseline(input_size=100, hidden=20, num_classes=10)
        assert model.operation_count() == 100 * 20 + 20 * 10

    def test_mlp_learns_digits(self, tiny_digits):
        train_x, train_y, test_x, test_y = tiny_digits
        model = MLPBaseline(input_size=32 * 32, hidden=32, num_classes=10, seed=0)
        trainer = Trainer(model, num_classes=10, learning_rate=0.005, batch_size=25, loss="cross_entropy", seed=0)
        result = trainer.fit(train_x, train_y, epochs=10, test_images=test_x, test_labels=test_y)
        assert result.final_test_accuracy > 0.6

    def test_cnn_forward_shape(self, rng):
        model = CNNBaseline(image_size=28, num_classes=10, hidden=32)
        logits = model(rng.normal(size=(3, 28, 28)))
        assert logits.shape == (3, 10)

    def test_cnn_accepts_channel_dimension(self, rng):
        model = CNNBaseline(image_size=28)
        logits = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert logits.shape == (2, 10)

    def test_cnn_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            CNNBaseline(image_size=4)

    def test_cnn_operation_count_exceeds_mlp_for_same_input(self):
        cnn = CNNBaseline(image_size=28)
        mlp = MLPBaseline(input_size=28 * 28)
        assert cnn.operation_count() > 0
        assert mlp.operation_count() > 0

    def test_cnn_trains_on_small_subset(self, tiny_digits):
        train_x, train_y, _, _ = tiny_digits
        small_x, small_y = train_x[:40], train_y[:40]
        model = CNNBaseline(image_size=32, num_classes=10, hidden=16, seed=0)
        trainer = Trainer(model, num_classes=10, learning_rate=0.01, batch_size=10, loss="cross_entropy", seed=0)
        result = trainer.fit(small_x, small_y, epochs=3)
        assert result.losses[-1] < result.losses[0]


class TestRegularizationCalibration:
    def test_gamma_brings_logits_to_target(self, small_config, tiny_digits):
        train_x = tiny_digits[0]
        probe = DONN(small_config.with_updates(amplitude_factor=1.0))
        gamma = calibrate_amplitude_factor(probe, train_x[:8], target=1.0)
        calibrated = DONN(small_config.with_updates(amplitude_factor=gamma))
        with no_grad():
            logits = calibrated(train_x[:8]).data.real
        assert logits.max(axis=-1).mean() == pytest.approx(1.0, rel=0.05)

    def test_invalid_target_rejected(self, small_config, tiny_digits):
        probe = DONN(small_config)
        with pytest.raises(ValueError):
            calibrate_amplitude_factor(probe, tiny_digits[0][:4], target=0.0)

    def test_build_regularized_sets_gamma(self, small_config, tiny_digits):
        model = build_regularized_donn(small_config, tiny_digits[0][:8])
        assert model.config.amplitude_factor != 1.0

    def test_build_baseline_keeps_gamma_one(self, small_config):
        assert build_baseline_donn(small_config).config.amplitude_factor == 1.0

    @pytest.mark.slow
    def test_regularized_training_beats_baseline(self, small_config, tiny_digits):
        """The Figure 7 effect: for a shallow DONN, calibrated-gamma training
        reaches higher accuracy than the gamma = 1 baseline training."""
        train_x, train_y, test_x, test_y = tiny_digits
        epochs = 6

        regularized = build_regularized_donn(small_config, train_x[:8])
        reg_result = Trainer(regularized, 10, learning_rate=0.5, batch_size=25, seed=0).fit(
            train_x, train_y, epochs=epochs, test_images=test_x, test_labels=test_y
        )
        baseline = build_baseline_donn(small_config)
        base_result = Trainer(baseline, 10, learning_rate=0.5, batch_size=25, seed=0).fit(
            train_x, train_y, epochs=epochs, test_images=test_x, test_labels=test_y
        )
        assert reg_result.final_test_accuracy >= base_result.final_test_accuracy
