"""Tests for the persistent model store (``repro.store``).

Four tiers, cheapest first: pure-store properties (publish/resolve/load
round-trips, content-addressed dedup, corruption detection -- Hypothesis
searches families x optimize levels x dtypes), registry/server
integration (the LRU-eviction-of-a-store-backed-model regression, string
refs), process-crossing tests (replica groups cold-starting every family
from a store with no live model in the parent, crash-restart rebuilding
from disk), and the zero-downtime swap path (in-process, under in-flight
traffic, and over HTTP through the gateway).
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import signal
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN
from repro.cluster import ReplicaGroup, WorkerServer
from repro.engine import COMPLEX64_LOGIT_ATOL, SessionSpec, compile as engine_compile
from repro.gateway import Gateway, GatewayClient
from repro.serve import InferenceServer, SessionRegistry, UnknownModelError
from repro.store import (
    LocalDirBackend,
    ModelNotFoundError,
    ModelStore,
    StoreIntegrityError,
    StoreRef,
    VersionNotFoundError,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from dump_store import dump_store  # noqa: E402  (tools/ is not a package)

settings.register_profile(
    "repro-store",
    max_examples=int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "15")),
    deadline=None,
    derandomize=bool(os.environ.get("DERANDOMIZE_CI")),
)
settings.load_profile("repro-store")

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

PARITY_ATOL = 1e-10
_FAMILIES = ("donn", "multichannel", "segmentation")
_OPTIMIZE_LEVELS = ("none", "fuse", "full")
_DTYPES = ("complex128", "complex64")

_cache: dict = {}


def _config(seed: int = 11, num_layers: int = 2) -> DONNConfig:
    return DONNConfig(
        sys_size=12,
        pixel_size=36e-6,
        distance=0.05,
        wavelength=532e-9,
        num_layers=num_layers,
        num_classes=4,
        det_size=3,
        seed=seed,
    )


def _model(family: str, seed: int = 11):
    key = (family, seed)
    if key not in _cache:
        if family == "donn":
            _cache[key] = DONN(_config(seed))
        elif family == "multichannel":
            _cache[key] = MultiChannelDONN(_config(seed))
        else:
            _cache[key] = SegmentationDONN(_config(seed, num_layers=3))
    return _cache[key]


def _batch(family: str, rng: np.random.Generator, n: int = 4) -> np.ndarray:
    if family == "multichannel":
        return rng.uniform(size=(n, 3, 12, 12))
    return rng.uniform(size=(n, 12, 12))


def _blob_keys(store: ModelStore):
    return [key for key in store.backend.list("blobs")]


# --------------------------------------------------------------------- #
# Store core: publish / resolve / load
# --------------------------------------------------------------------- #
class TestPublishLoadRoundTrip:
    @given(
        family=st.sampled_from(_FAMILIES),
        optimize=st.sampled_from(_OPTIMIZE_LEVELS),
        dtype=st.sampled_from(_DTYPES),
    )
    def test_round_trip_is_bit_exact_against_direct_compile(self, tmp_path_factory, family, optimize, dtype):
        """publish -> load -> build answers exactly like compile() did."""
        store = ModelStore(tmp_path_factory.mktemp("store"))
        model = _model(family)
        direct = engine_compile(model, optimize=optimize, dtype=dtype)
        manifest = store.publish("m", direct)
        assert manifest.version == 1
        assert manifest.optimize == optimize
        assert manifest.dtype == dtype
        assert manifest.model_type == type(model).__name__
        loaded = store.load("m")
        assert isinstance(loaded, SessionSpec)
        rng = np.random.default_rng(7)
        batch = _batch(family, rng)
        atol = PARITY_ATOL if dtype == "complex128" else COMPLEX64_LOGIT_ATOL
        np.testing.assert_allclose(loaded.build().run(batch), direct.run(batch), atol=atol)

    @given(family=st.sampled_from(_FAMILIES), optimize=st.sampled_from(_OPTIMIZE_LEVELS))
    def test_republish_is_idempotent_and_writes_no_second_blob(self, tmp_path_factory, family, optimize):
        """Content addressing: identical content never balloons the store."""
        store = ModelStore(tmp_path_factory.mktemp("store"))
        spec = engine_compile(_model(family), optimize=optimize).to_spec()
        first = store.publish("m", spec)
        blobs_after_first = _blob_keys(store)
        again = store.publish("m", spec)
        assert again == first  # same manifest, same version, same timestamp
        assert _blob_keys(store) == blobs_after_first  # no second blob
        assert [m.version for m in store.versions("m")] == [1]

    def test_canonical_bytes_hash_is_stable_across_spec_objects(self):
        session = engine_compile(_model("donn"), optimize="fuse")
        one, two = session.to_spec(), session.to_spec()
        assert one.content_hash() == two.content_hash()
        rebuilt = SessionSpec.from_canonical_bytes(one.canonical_bytes())
        assert rebuilt.content_hash() == one.content_hash()
        assert rebuilt.optimize == one.optimize
        assert rebuilt.dtype == one.dtype

    def test_distinct_content_gets_distinct_versions_and_hashes(self, tmp_path):
        store = ModelStore(tmp_path)
        v1 = store.publish("m", _model("donn", seed=1), optimize="full")
        v2 = store.publish("m", _model("donn", seed=2), optimize="full")
        assert (v1.version, v2.version) == (1, 2)
        assert v1.content_hash != v2.content_hash
        assert len(_blob_keys(store)) == 2
        # Re-publishing *either* earlier content resolves to its version.
        assert store.publish("m", _model("donn", seed=1), optimize="full") == v1

    def test_publish_model_applies_session_kwargs(self, tmp_path):
        store = ModelStore(tmp_path)
        manifest = store.publish("m", _model("donn"), optimize="none", dtype="complex64")
        assert (manifest.optimize, manifest.dtype) == ("none", "complex64")
        spec = store.load("m")
        assert (spec.optimize, spec.dtype) == ("none", "complex64")

    def test_bad_names_and_inputs_refused(self, tmp_path):
        store = ModelStore(tmp_path)
        for bad in ("", "a@b", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.publish(bad, _model("donn"))
        with pytest.raises(TypeError):
            store.publish("m", object())
        with pytest.raises(ValueError):
            # Options on an already-fixed spec are a silent-no-op hazard.
            store.publish("m", engine_compile(_model("donn")).to_spec(), dtype="complex64")


class TestResolution:
    @pytest.fixture()
    def store(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("digits", _model("donn", seed=1), optimize="full")
        store.publish("digits", _model("donn", seed=2), optimize="full")
        store.publish("scenes", _model("segmentation", seed=1), optimize="fuse")
        return store

    def test_models_and_versions_listing(self, store):
        assert store.models() == ("digits", "scenes")
        assert [m.version_tag for m in store.versions("digits")] == ["v1", "v2"]

    def test_selector_forms_all_resolve(self, store):
        latest = store.resolve("digits")
        assert latest.version == 2
        assert store.resolve("digits", "latest") == latest
        assert store.resolve("digits", "v1").version == 1
        assert store.resolve("digits", 1).version == 1
        assert store.resolve("digits", "1").version == 1
        assert store.resolve("digits@v1").version == 1  # combined form
        assert store.resolve("digits@latest") == latest
        by_hash = store.resolve("digits", latest.content_hash[:12])
        assert by_hash == latest

    def test_unknown_model_and_version_are_typed_errors(self, store):
        with pytest.raises(ModelNotFoundError):
            store.versions("nope")
        with pytest.raises(ModelNotFoundError):
            store.resolve("nope")
        with pytest.raises(VersionNotFoundError):
            store.resolve("digits", "v9")
        with pytest.raises(VersionNotFoundError):
            store.resolve("digits", "deadbeefdeadbeef")
        with pytest.raises(VersionNotFoundError):
            store.resolve("digits", "not a selector")
        # Both are KeyError subclasses, so dict-style callers also work.
        with pytest.raises(KeyError):
            store.resolve("digits", "v9")

    def test_delete_version_keeps_shared_blob_until_unreferenced(self, tmp_path):
        store = ModelStore(tmp_path)
        spec = engine_compile(_model("donn")).to_spec()
        store.publish("a", spec)
        store.publish("b", spec)  # same content under a second name
        assert len(_blob_keys(store)) == 1
        store.delete_version("a", "v1")
        assert _blob_keys(store), "blob still referenced by b@v1"
        store.delete_version("b", "v1")
        assert _blob_keys(store) == []

    def test_dump_store_tool_lists_and_verifies(self, store):
        listing = dump_store(store, verify=True)
        assert "digits (2 version(s), latest v2)" in listing
        assert "scenes" in listing
        assert listing.count("[ok]") == 3
        only = dump_store(store, model="digits")
        assert "scenes" not in only


class TestIntegrity:
    def _first_blob_path(self, root: Path) -> Path:
        blobs = sorted((root / "blobs").iterdir())
        assert blobs
        return blobs[0]

    def test_corrupted_blob_is_refused_before_deserialization(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        path = self._first_blob_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # one flipped bit-pattern mid-blob
        path.write_bytes(bytes(data))
        with pytest.raises(StoreIntegrityError, match="refusing to deserialize"):
            store.load("m")

    def test_truncated_blob_is_refused(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        path = self._first_blob_path(tmp_path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(StoreIntegrityError):
            store.load("m")

    def test_missing_blob_is_a_typed_error(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        self._first_blob_path(tmp_path).unlink()
        with pytest.raises(StoreIntegrityError, match="missing"):
            store.load("m")

    def test_corrupted_manifest_is_a_typed_error(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        manifest_path = tmp_path / "manifests" / "m" / "v1.json"
        manifest_path.write_bytes(b"{not json")
        with pytest.raises(StoreIntegrityError, match="unreadable"):
            store.versions("m")

    def test_manifest_missing_fields_is_a_typed_error(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        manifest_path = tmp_path / "manifests" / "m" / "v1.json"
        data = json.loads(manifest_path.read_text())
        del data["content_hash"]
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="malformed"):
            store.versions("m")

    def test_manifest_name_version_mismatch_is_a_typed_error(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        v1 = tmp_path / "manifests" / "m" / "v1.json"
        (tmp_path / "manifests" / "m" / "v2.json").write_bytes(v1.read_bytes())
        with pytest.raises(StoreIntegrityError, match="does not describe"):
            store.versions("m")

    def test_read_cache_never_serves_corrupted_bytes(self, tmp_path):
        """The cache is keyed by content hash, so a *cached* load is the
        verified bytes; corruption lands on the next cold read."""
        store = ModelStore(tmp_path, cache_entries=2)
        store.publish("m", _model("donn"))
        good = store.load("m")
        path = self._first_blob_path(tmp_path)
        path.write_bytes(b"garbage")
        assert store.load("m") is good  # cache hit: still the verified spec
        cold = ModelStore(tmp_path, cache_entries=2)
        with pytest.raises(StoreIntegrityError):
            cold.load("m")

    def test_dump_store_verify_reports_corruption(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish("m", _model("donn"))
        self._first_blob_path(tmp_path).write_bytes(b"garbage")
        assert "[CORRUPT" in dump_store(store, verify=True)

    def test_canonical_bytes_format_guards(self):
        with pytest.raises(ValueError):
            SessionSpec.from_canonical_bytes(b"not-a-spec")
        spec = engine_compile(_model("donn")).to_spec()
        payload = spec.canonical_bytes()
        with pytest.raises(ValueError):
            SessionSpec.from_canonical_bytes(payload.replace(b"repro-spec", b"other-spec", 1))


class TestStoreRef:
    def test_ref_pins_resolution_and_pickles_small(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("m", _model("donn", seed=1))
        store.publish("m", _model("donn", seed=2))
        ref = store.ref("m")  # latest is resolved *now*
        assert (ref.name, ref.version) == ("m", 2)
        wire = pickle.dumps(ref)
        assert len(wire) < 4096, "a ref must be cheap enough to cross any pipe"
        again = pickle.loads(wire)
        assert again == ref
        assert again.load_spec().content_hash() == ref.content_hash

    def test_ref_build_matches_direct_compile(self, tmp_path, rng):
        store = ModelStore(tmp_path)
        direct = engine_compile(_model("donn"), optimize="full")
        store.publish("m", direct)
        session = store.ref("m").build()
        batch = _batch("donn", rng)
        np.testing.assert_allclose(session.run(batch), direct.run(batch), atol=PARITY_ATOL)

    def test_stale_ref_detects_republished_version(self, tmp_path):
        store = ModelStore(tmp_path)
        manifest = store.publish("m", _model("donn", seed=1))
        ref = store.ref("m", "v1")
        # Rewrite v1's manifest to point at different content: the pinned
        # hash no longer matches what the store serves under that tag.
        store.delete_version("m", "v1")
        forged = manifest.as_dict()
        forged["content_hash"] = "0" * 64
        (tmp_path / "manifests" / "m" / "v1.json").write_text(json.dumps(forged))
        with pytest.raises(StoreIntegrityError, match="republished"):
            ref.load_spec()

    def test_with_location_rehomes_but_keeps_the_pin(self, tmp_path):
        store_a = ModelStore(tmp_path / "a")
        store_a.publish("m", _model("donn"))
        ref = store_a.ref("m")
        moved = ref.with_location(tmp_path / "b")
        assert moved.content_hash == ref.content_hash
        with pytest.raises((StoreIntegrityError, ModelNotFoundError)):
            moved.load_spec()  # nothing at the new coordinates yet
        # Replicate the store directory and the same ref loads fine.
        import shutil

        shutil.copytree(tmp_path / "a", tmp_path / "b", dirs_exist_ok=True)
        assert moved.load_spec().content_hash() == ref.content_hash

    def test_unknown_scheme_is_refused(self):
        ref = StoreRef(scheme="s3", location="bucket/prefix", name="m", version=1, content_hash="0" * 64)
        with pytest.raises(StoreIntegrityError, match="scheme"):
            ref.open_store()


class TestBackendContract:
    def test_put_get_exists_list_delete(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.put("a/b/c", b"payload")
        assert backend.get("a/b/c") == b"payload"
        assert backend.exists("a/b/c")
        backend.put("a/b/c", b"newer")  # last writer wins, atomically
        assert backend.get("a/b/c") == b"newer"
        assert backend.list("a") == ["a/b/c"]
        backend.delete("a/b/c")
        backend.delete("a/b/c")  # idempotent
        assert not backend.exists("a/b/c")
        with pytest.raises(KeyError):
            backend.get("a/b/c")

    def test_traversal_is_refused(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        with pytest.raises(ValueError):
            backend.put("../outside", b"x")

    def test_no_temp_litter_after_puts(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        for i in range(5):
            backend.put(f"k{i}", b"x" * 100)
        staging = tmp_path / ".tmp"
        assert not any(staging.iterdir()), "atomic puts must not strand temp files"


# --------------------------------------------------------------------- #
# Registry + server integration (the LRU regression)
# --------------------------------------------------------------------- #
class TestStoreBackedRegistry:
    def test_lru_eviction_of_store_backed_model_is_reversible(self, tmp_path, rng):
        """Regression: evicting a store-backed model drops only the
        in-memory session -- the on-disk version survives and get()
        quietly rebuilds from the pinned ref."""
        store = ModelStore(tmp_path)
        store.publish("a", _model("donn", seed=1))
        store.publish("b", _model("donn", seed=2))
        registry = SessionRegistry(max_models=1, store=store)
        session_a = registry.register("a", "a@latest")
        registry.register("b", "b@latest")
        assert registry.last_evicted == ("a",)
        assert "a" not in registry  # in-memory session is gone...
        assert [m.version for m in store.versions("a")] == [1]  # ...the version is not
        rebuilt = registry.get("a")  # quiet rebuild from the kept ref
        assert rebuilt is not session_a  # a fresh session, same bytes
        batch = _batch("donn", rng)
        np.testing.assert_allclose(rebuilt.run(batch), session_a.run(batch), atol=PARITY_ATOL)
        assert registry.last_evicted == ("b",)  # the rebuild evicted in turn
        assert registry.store_ref("a").name == "a"

    def test_evicted_plain_session_stays_gone(self, tmp_path):
        registry = SessionRegistry(max_models=1)
        registry.register("a", engine_compile(_model("donn", seed=1)))
        registry.register("b", engine_compile(_model("donn", seed=2)))
        with pytest.raises(UnknownModelError):
            registry.get("a")

    def test_unregister_reaches_evicted_store_backed_names(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("a", _model("donn", seed=1))
        store.publish("b", _model("donn", seed=2))
        registry = SessionRegistry(max_models=1, store=store)
        registry.register("a", "a@latest")
        registry.register("b", "b@latest")
        registry.unregister("a")  # evicted, but still unregisterable
        with pytest.raises(UnknownModelError):
            registry.get("a")
        with pytest.raises(UnknownModelError):
            registry.unregister("a")

    def test_string_refs_need_a_store(self):
        with pytest.raises(TypeError, match="store"):
            SessionRegistry().register("m", "m@latest")

    def test_ref_with_session_options_is_refused(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("m", _model("donn"))
        with pytest.raises(ValueError, match="fixed when the spec was published"):
            SessionRegistry(store=store).register("m", store.ref("m"), dtype="complex64")

    def test_server_add_model_by_string_needs_a_store(self):
        server = InferenceServer()
        with pytest.raises(TypeError, match="store"):
            server.add_model("m", "m@latest")

    def test_server_swap_refusals_are_typed(self, tmp_path):
        async def scenario():
            store = ModelStore(tmp_path)
            store.publish("m", _model("donn"))
            server = InferenceServer(store=store)
            server.add_model("m", "m@latest")  # in-process: nothing to roll
            with pytest.raises(UnknownModelError):
                await server.swap_model("ghost")
            with pytest.raises(ValueError, match="replica group"):
                await server.swap_model("m")
            storeless = InferenceServer()
            storeless.add_model("m", engine_compile(_model("donn")))
            with pytest.raises(ValueError, match="store"):
                await storeless.swap_model("m")
            await server.close()
            await storeless.close()

        asyncio.run(scenario())


# --------------------------------------------------------------------- #
# Process-crossing: replica groups cold-start from the store
# --------------------------------------------------------------------- #
def _wait_until(predicate, timeout_s: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.05)


class TestReplicaColdStart:
    @pytest.mark.parametrize("family", _FAMILIES)
    def test_every_family_cold_starts_from_the_store(self, tmp_path, family, rng):
        """A replica group built from a StoreRef alone -- no model object,
        no spec in the parent -- answers exactly like compile() does."""
        store = ModelStore(tmp_path)
        store.publish(family, _model(family), optimize="full", backend="numpy")
        ref = store.ref(family)
        batch = _batch(family, rng)
        reference = store.load(family).build().run(batch)
        with ReplicaGroup(ref, replicas=1, call_timeout_s=60.0, name=family) as group:
            np.testing.assert_allclose(group.infer_sync(batch), reference, atol=PARITY_ATOL)

    def test_crash_restart_rebuilds_from_the_store(self, tmp_path, rng):
        """SIGKILL a store-backed worker: the revived replica re-pulls the
        pinned version from disk and serves identical logits."""
        store = ModelStore(tmp_path)
        store.publish("digits", _model("donn"), optimize="full", backend="numpy")
        ref = store.ref("digits")
        batch = _batch("donn", rng)
        reference = store.load("digits").build().run(batch)
        with ReplicaGroup(ref, replicas=1, call_timeout_s=60.0, restart_backoff_s=0.05) as group:
            np.testing.assert_allclose(group.infer_sync(batch), reference, atol=PARITY_ATOL)
            victim = group._replicas[0]
            os.kill(victim.pid, signal.SIGKILL)
            _wait_until(lambda: not victim.alive, what="the killed worker to be seen dead")
            group.check_health(restart_dead=True)
            _wait_until(lambda: victim.alive, what="the store-backed restart")
            assert victim.restarts >= 1
            np.testing.assert_allclose(group.infer_sync(batch), reference, atol=PARITY_ATOL)

    def test_remote_worker_rehomes_refs_with_its_own_store_root(self, tmp_path, rng):
        """repro-worker --store DIR: a ref minted against the parent's path
        is re-rooted onto the worker's local replica of the store."""
        import shutil

        parent_root = tmp_path / "parent"
        worker_root = tmp_path / "worker"
        store = ModelStore(parent_root)
        store.publish("digits", _model("donn"), optimize="full", backend="numpy")
        shutil.copytree(parent_root, worker_root)
        # The parent's path is unreadable on the "remote host": prove the
        # worker really loads from its own root, not the ref's location.
        ref = store.ref("digits").with_location(tmp_path / "nowhere")
        batch = _batch("donn", rng)
        reference = store.load("digits").build().run(batch)
        with WorkerServer(port=0, store_root=str(worker_root)) as worker:
            worker.serve_in_thread()
            with ReplicaGroup(ref, replicas=0, workers=[worker.address], name="remote") as group:
                np.testing.assert_allclose(group.infer_sync(batch), reference, atol=PARITY_ATOL)
                assert group.stats()[0]["transport"].startswith("socket(")


# --------------------------------------------------------------------- #
# Zero-downtime swaps
# --------------------------------------------------------------------- #
class TestZeroDowntimeSwap:
    def _publish_two(self, root) -> ModelStore:
        store = ModelStore(root)
        store.publish("digits", _model("donn", seed=1), optimize="full", backend="numpy")
        store.publish("digits", _model("donn", seed=2), optimize="full", backend="numpy")
        return store

    def test_swap_before_start_retargets_the_idle_fleet(self, tmp_path, rng):
        async def scenario():
            store = self._publish_two(tmp_path)
            server = InferenceServer(store=store)
            server.add_model("digits", "digits@v1", replicas=2)
            summary = await server.swap_model("digits", "v2")
            assert summary["changed"] and summary["version"] == "v2"
            await server.start()
            batch = _batch("donn", rng)
            expected = store.load("digits", "v2").build().run(batch)
            got = await server.submit_many("digits", batch)
            np.testing.assert_allclose(np.asarray(got), expected, atol=PARITY_ATOL)
            await server.close()

        asyncio.run(scenario())

    def test_swap_under_inflight_traffic_drops_nothing(self, tmp_path, rng):
        """The acceptance gate: continuous traffic across a rolling swap
        sees zero errors, and stats() flips the version monotonically."""

        async def scenario():
            store = self._publish_two(tmp_path)
            v1 = store.load("digits", "v1").build()
            v2 = store.load("digits", "v2").build()
            server = InferenceServer(store=store, max_wait_ms=1.0)
            server.add_model("digits", "digits@v1", replicas=2)
            await server.start()
            batch = rng.uniform(size=(12, 12))
            expected = {1: v1.run(batch[None, ...])[0], 2: v2.run(batch[None, ...])[0]}

            errors: list = []
            answers: list = []
            versions_seen: list = []
            stop = asyncio.Event()

            async def traffic():
                while not stop.is_set():
                    try:
                        result = await server.submit("digits", batch)
                        answers.append(np.asarray(result))
                        versions_seen.append(server.stats()["digits"].store["version"])
                    except Exception as exc:  # noqa: BLE001 - the assertion below
                        errors.append(exc)
                    await asyncio.sleep(0)

            drivers = [asyncio.ensure_future(traffic()) for _ in range(3)]
            _wait = 0
            while len(answers) < 20 and _wait < 200:
                await asyncio.sleep(0.05)
                _wait += 1
            summary = await server.swap_model("digits", "v2")
            assert summary["changed"]
            post_swap_floor = len(answers)
            while len(answers) < post_swap_floor + 20 and _wait < 400:
                await asyncio.sleep(0.05)
                _wait += 1
            stop.set()
            await asyncio.gather(*drivers)
            await server.close()
            return errors, answers, versions_seen, expected, post_swap_floor

        errors, answers, versions_seen, expected, post_swap_floor = asyncio.run(scenario())
        assert errors == [], f"swap dropped {len(errors)} request(s): {errors[:3]}"
        assert len(answers) >= 40
        # Every answer is exactly one of the two versions' logits -- never
        # a blend, never garbage.
        matched = []
        for result in answers:
            if np.allclose(result, expected[1], atol=PARITY_ATOL):
                matched.append(1)
            elif np.allclose(result, expected[2], atol=PARITY_ATOL):
                matched.append(2)
            else:  # pragma: no cover - the failure message is the point
                raise AssertionError("an answer matched neither v1 nor v2 logits")
        assert matched[0] == 1 and matched[-1] == 2
        # During the roll the two replicas legitimately interleave
        # versions; once the swap call returned (plus the <= 3 requests
        # already in flight), every answer is the new version.
        assert all(version == 2 for version in matched[post_swap_floor + 3 :])
        # The *reported* store version is a single monotonic flip.
        tags = [int(tag[1:]) for tag in versions_seen]
        assert tags == sorted(tags)
        assert tags[0] == 1 and tags[-1] == 2

    def test_swap_through_the_gateway(self, tmp_path, rng):
        """POST /v1/models/{name}/swap end to end, plus its error taxonomy."""

        async def scenario():
            store = self._publish_two(tmp_path)
            server = InferenceServer(store=store, max_wait_ms=1.0)
            server.add_model("digits", "digits@v1", replicas=2)
            await server.start()
            batch = rng.uniform(size=(12, 12))
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    before = await client.stats()
                    assert before["models"]["digits"]["store"]["version"] == "v1"
                    summary = await client.swap_model("digits", "v2")
                    assert summary["changed"] and summary["version"] == "v2"
                    again = await client.swap_model("digits")  # latest == v2: no-op
                    assert again["changed"] is False
                    after = await client.stats()
                    assert after["models"]["digits"]["store"]["version"] == "v2"
                    output = await client.infer("digits", batch)
                    with pytest.raises(VersionNotFoundError):
                        await client.swap_model("digits", "v9")
                    with pytest.raises(UnknownModelError):
                        await client.swap_model("ghost")
            await server.close()
            return np.asarray(output)

        output = asyncio.run(scenario())
        expected = ModelStore(tmp_path).load("digits", "v2").build().run(rng.uniform(size=(1, 12, 12)))
        assert output.shape == expected.shape[1:]
