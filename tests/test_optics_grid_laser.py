"""Tests for spatial grids, laser sources and wavefield helpers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.optics import (
    LaserSource,
    SpatialGrid,
    bessel_profile,
    field_from_intensity,
    gaussian_profile,
    intensity,
    normalize_field,
    plane_profile,
    total_power,
)
from repro.optics.laser import PROFILES, VISIBLE_GREEN_532NM
from repro.optics.wave import correlation, phase_of


class TestSpatialGrid:
    def test_extent(self):
        grid = SpatialGrid(size=100, pixel_size=10e-6)
        assert grid.extent == pytest.approx(1e-3)

    def test_shape(self, small_grid):
        assert small_grid.shape == (32, 32)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SpatialGrid(size=0, pixel_size=1e-6)
        with pytest.raises(ValueError):
            SpatialGrid(size=10, pixel_size=-1.0)

    def test_coordinates_are_centred(self, small_grid):
        x, y = small_grid.coordinates
        assert x.mean() == pytest.approx(0.0, abs=1e-12)
        assert y.mean() == pytest.approx(0.0, abs=1e-12)
        assert x.shape == small_grid.shape

    def test_coordinate_spacing_matches_pixel_size(self, small_grid):
        x, _ = small_grid.coordinates
        assert x[0, 1] - x[0, 0] == pytest.approx(small_grid.pixel_size)

    def test_frequencies_match_fftfreq(self, small_grid):
        fx, fy = small_grid.frequencies
        expected = np.fft.fftfreq(small_grid.size, d=small_grid.pixel_size)
        np.testing.assert_allclose(fx[0], expected)
        np.testing.assert_allclose(fy[:, 0], expected)

    def test_padded_and_resize(self, small_grid):
        assert small_grid.padded(2).size == 64
        assert small_grid.resize(16).size == 16
        with pytest.raises(ValueError):
            small_grid.padded(0)

    def test_grid_is_hashable_and_frozen(self, small_grid):
        with pytest.raises(Exception):
            small_grid.size = 5
        assert hash(small_grid) == hash(SpatialGrid(32, 36e-6))


class TestBeamProfiles:
    def test_plane_profile_uniform(self, small_grid):
        profile = plane_profile(small_grid)
        assert np.all(profile == 1.0)

    def test_gaussian_profile_peaks_at_centre(self, small_grid):
        profile = gaussian_profile(small_grid)
        centre = small_grid.size // 2
        assert profile[centre, centre] == profile.max()
        assert profile[0, 0] < profile[centre, centre]

    def test_bessel_profile_has_rings(self, small_grid):
        profile = bessel_profile(small_grid)
        assert profile.max() <= 1.0 + 1e-9
        assert profile.min() >= 0.0

    def test_profiles_registry(self):
        assert set(PROFILES) == {"plane", "gaussian", "bessel"}


class TestLaserSource:
    def test_default_wavelength_is_green(self):
        assert LaserSource().wavelength == pytest.approx(VISIBLE_GREEN_532NM)

    def test_wavenumber(self):
        laser = LaserSource(wavelength=500e-9)
        assert laser.wavenumber == pytest.approx(2 * np.pi / 500e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LaserSource(wavelength=-1.0)
        with pytest.raises(ValueError):
            LaserSource(power=0.0)
        with pytest.raises(ValueError):
            LaserSource(profile="warp-drive")

    def test_profile_amplitude_normalised_to_power(self, small_grid):
        laser = LaserSource(power=2e-3)
        amplitude = laser.profile_amplitude(small_grid)
        assert (amplitude**2).sum() == pytest.approx(2e-3)

    def test_illuminate_without_image_returns_beam(self, small_grid):
        field = LaserSource().illuminate(small_grid)
        assert field.is_complex
        assert field.shape == small_grid.shape

    def test_illuminate_encodes_image_amplitude(self, small_grid, rng):
        image = rng.uniform(0, 1, size=small_grid.shape)
        field = LaserSource(profile="plane").illuminate(small_grid, Tensor(image))
        ratio = np.abs(field.data) ** 2 / np.maximum(image, 1e-12)
        # Intensity proportional to the encoded image.
        assert np.nanstd(ratio[image > 0.1]) / np.nanmean(ratio[image > 0.1]) < 1e-6

    def test_callable_profile(self, small_grid):
        laser = LaserSource(profile=lambda grid: np.ones(grid.shape))
        field = laser.illuminate(small_grid)
        assert field.shape == small_grid.shape


class TestWaveHelpers:
    def test_intensity_and_total_power(self, rng):
        field = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        np.testing.assert_allclose(intensity(field).data, np.abs(field) ** 2)
        assert total_power(field).item() == pytest.approx(np.sum(np.abs(field) ** 2))

    def test_field_from_intensity_flat_phase(self, rng):
        image = rng.uniform(0, 1, size=(6, 6))
        field = field_from_intensity(image)
        np.testing.assert_allclose(field.data.imag, 0.0)
        np.testing.assert_allclose(np.abs(field.data) ** 2, image, atol=1e-12)

    def test_field_from_intensity_with_phase(self):
        field = field_from_intensity(np.ones((2, 2)), phase=np.pi / 2)
        np.testing.assert_allclose(field.data.real, 0.0, atol=1e-12)

    def test_field_from_intensity_clips_negative(self):
        field = field_from_intensity(np.array([[-1.0, 4.0]]))
        np.testing.assert_allclose(np.abs(field.data) ** 2, [[0.0, 4.0]])

    def test_normalize_field(self, rng):
        field = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        normalised = normalize_field(field, power=3.0)
        assert total_power(normalised).item() == pytest.approx(3.0)

    def test_normalize_zero_field_is_noop(self):
        field = np.zeros((3, 3), dtype=complex)
        assert total_power(normalize_field(field)).item() == pytest.approx(0.0)

    def test_phase_of(self):
        field = np.array([1j, -1.0])
        np.testing.assert_allclose(phase_of(field).data, [np.pi / 2, np.pi])

    def test_correlation_bounds_and_identity(self, rng):
        pattern = rng.random((8, 8))
        assert correlation(pattern, pattern) == pytest.approx(1.0)
        assert correlation(pattern, -pattern) == pytest.approx(-1.0)
        assert correlation(pattern, np.zeros_like(pattern)) == 0.0
