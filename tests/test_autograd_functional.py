"""Tests for NN-style functional ops: activations, losses, norm, conv, pooling."""

import numpy as np
import pytest
from scipy import signal

from repro.autograd import Tensor, check_gradients, functional as F


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(4, 4)) + 0.1, requires_grad=True)
        assert check_gradients(lambda x: (F.relu(x) ** 2).sum(), [x])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(size=10)
        out = F.sigmoid(Tensor(x)).data
        assert np.all((out > 0) & (out < 1))
        np.testing.assert_allclose(F.sigmoid(Tensor(-x)).data, 1.0 - out, atol=1e-12)

    def test_sigmoid_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert check_gradients(lambda x: (F.sigmoid(x) ** 2).sum(), [x])

    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 7))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_handles_large_values(self):
        out = F.softmax(Tensor([[1000.0, 0.0]])).data
        assert np.isfinite(out).all()

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        weights = rng.normal(size=(2, 5))
        assert check_gradients(lambda x: (F.softmax(x) * weights).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-10
        )

    def test_log_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        weights = rng.normal(size=(2, 4))
        assert check_gradients(lambda x: (F.log_softmax(x) * weights).sum(), [x])


class TestLosses:
    def test_mse_zero_for_identical(self, rng):
        x = rng.normal(size=(3, 3))
        assert F.mse_loss(Tensor(x), Tensor(x.copy())).item() == pytest.approx(0.0)

    def test_mse_known_value(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_softmax_mse_loss_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        target = Tensor(F.one_hot(np.array([0, 2, 4]), 5))
        assert check_gradients(lambda x: F.softmax_mse_loss(x, target), [logits])

    def test_cross_entropy_decreases_with_correct_logits(self):
        labels = np.array([0, 1])
        bad = F.cross_entropy(Tensor([[0.0, 0.0], [0.0, 0.0]]), labels).item()
        good = F.cross_entropy(Tensor([[5.0, 0.0], [0.0, 5.0]]), labels).item()
        assert good < bad

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1])
        assert check_gradients(lambda x: F.cross_entropy(x, labels), [logits])

    def test_binary_cross_entropy_bounds(self, rng):
        prediction = Tensor(rng.uniform(0.05, 0.95, size=(4, 4)))
        target = Tensor((rng.random((4, 4)) > 0.5).astype(float))
        loss = F.binary_cross_entropy(prediction, target).item()
        assert loss > 0

    def test_binary_cross_entropy_gradcheck(self, rng):
        prediction = Tensor(rng.uniform(0.2, 0.8, size=(3, 3)), requires_grad=True)
        target = Tensor((rng.random((3, 3)) > 0.5).astype(float))
        assert check_gradients(lambda p: F.binary_cross_entropy(p, target), [prediction])

    def test_one_hot_shape_and_values(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_preserves_leading_shape(self):
        encoded = F.one_hot(np.array([[0, 1], [2, 0]]), 3)
        assert encoded.shape == (2, 2, 3)


class TestLayerNorm:
    def test_zero_mean_unit_variance(self, rng):
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(2, 8, 8)))
        out = F.layer_norm(x).data
        np.testing.assert_allclose(out.mean(axis=(-2, -1)), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=(-2, -1)), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.layer_norm(x, gain=Tensor(2.0), bias=Tensor(1.0)).data
        assert out.mean() == pytest.approx(1.0, abs=1e-6)

    def test_layer_norm_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        weights = rng.normal(size=(3, 4))
        assert check_gradients(lambda x: (F.layer_norm(x, axes=(-1,)) * weights).sum(), [x], atol=1e-5)


class TestConvPool:
    def test_conv2d_matches_scipy_single_channel(self, rng):
        image = rng.normal(size=(1, 1, 8, 8))
        kernel = rng.normal(size=(1, 1, 3, 3))
        ours = F.conv2d(Tensor(image), Tensor(kernel), stride=1, padding=0).data[0, 0]
        # scipy correlate2d in 'valid' mode is exactly an unpadded stride-1 conv.
        reference = signal.correlate2d(image[0, 0], kernel[0, 0], mode="valid")
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    def test_conv2d_output_shape_with_stride_padding(self, rng):
        image = rng.normal(size=(2, 3, 16, 16))
        kernel = rng.normal(size=(5, 3, 5, 5))
        out = F.conv2d(Tensor(image), Tensor(kernel), stride=2, padding=2)
        assert out.shape == (2, 5, 8, 8)

    def test_conv2d_bias_added(self, rng):
        image = np.zeros((1, 1, 4, 4))
        kernel = np.zeros((2, 1, 3, 3))
        bias = np.array([1.5, -0.5])
        out = F.conv2d(Tensor(image), Tensor(kernel), Tensor(bias), stride=1, padding=1).data
        assert out[0, 0].mean() == pytest.approx(1.5)
        assert out[0, 1].mean() == pytest.approx(-0.5)

    def test_conv2d_gradcheck(self, rng):
        image = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        kernel = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        bias = Tensor(rng.normal(size=3), requires_grad=True)
        assert check_gradients(
            lambda x, w, b: (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum(), [image, kernel, bias], atol=1e-5
        )

    def test_max_pool_values(self):
        image = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(image), kernel=2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradcheck(self, rng):
        image = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        assert check_gradients(lambda x: (F.max_pool2d(x, 2) ** 2).sum(), [image], atol=1e-5)

    def test_linear_matches_manual(self, rng):
        x = rng.normal(size=(4, 3))
        weight = rng.normal(size=(2, 3))
        bias = rng.normal(size=2)
        out = F.linear(Tensor(x), Tensor(weight), Tensor(bias)).data
        np.testing.assert_allclose(out, x @ weight.T + bias, atol=1e-12)
