"""Tests for input encoding and the detector plane."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.layers import Detector, DetectorRegion, binarize_images, data_to_cplex, grid_region_layout, resize_images


class TestResizeAndBinarize:
    def test_resize_upscales_exact_multiple(self):
        image = np.ones((1, 4, 4))
        resized = resize_images(image, 16)
        assert resized.shape == (1, 16, 16)
        np.testing.assert_allclose(resized, 1.0)

    def test_resize_centres_with_border(self):
        image = np.ones((1, 4, 4))
        resized = resize_images(image, 18)  # upscale x4 -> 16, centred in 18
        assert resized.shape == (1, 18, 18)
        assert resized[0, 9, 9] == 1.0
        assert resized[0, 0, 0] == 0.0

    def test_resize_single_image(self):
        resized = resize_images(np.ones((4, 4)), 8)
        assert resized.shape == (8, 8)

    def test_resize_preserves_total_roughly(self, rng):
        image = rng.uniform(size=(2, 8, 8))
        resized = resize_images(image, 32)
        scale = (32 // 8) ** 2
        np.testing.assert_allclose(resized.sum(axis=(1, 2)), image.sum(axis=(1, 2)) * scale, rtol=1e-9)

    def test_resize_downsamples_when_source_larger(self, rng):
        image = rng.uniform(size=(1, 50, 50))
        resized = resize_images(image, 32)
        assert resized.shape == (1, 32, 32)

    def test_binarize_threshold(self):
        out = binarize_images(np.array([[0.2, 0.7]]), threshold=0.5)
        np.testing.assert_allclose(out, [[0.0, 1.0]])

    def test_binarize_accepts_tensor(self):
        out = binarize_images(Tensor(np.array([[0.9]])))
        assert out[0, 0] == 1.0


class TestDataToCplex:
    def test_output_is_complex_with_flat_phase(self, rng):
        images = rng.uniform(0, 1, size=(3, 8, 8))
        field = data_to_cplex(images)
        assert field.is_complex
        np.testing.assert_allclose(field.data.imag, 0.0)

    def test_intensity_matches_image(self, rng):
        images = rng.uniform(0, 1, size=(2, 8, 8))
        field = data_to_cplex(images)
        np.testing.assert_allclose(np.abs(field.data) ** 2, images, atol=1e-12)

    def test_resizes_to_grid(self, rng, small_grid):
        images = rng.uniform(0, 1, size=(2, 8, 8))
        field = data_to_cplex(images, grid=small_grid)
        assert field.shape == (2, 32, 32)

    def test_amplitude_factor_scales_field(self, rng):
        images = rng.uniform(0.1, 1, size=(1, 4, 4))
        base = data_to_cplex(images)
        scaled = data_to_cplex(images, amplitude_factor=2.0)
        np.testing.assert_allclose(scaled.data, base.data * 2.0)

    def test_initial_phase_setting(self):
        field = data_to_cplex(np.ones((1, 2, 2)), phase=np.pi)
        np.testing.assert_allclose(field.data.real, -1.0, atol=1e-12)

    def test_negative_intensities_clipped(self):
        field = data_to_cplex(np.array([[[-0.5, 1.0]]]))
        assert np.abs(field.data[0, 0, 0]) == 0.0


class TestDetectorRegions:
    def test_bounds_clipped_to_grid(self):
        region = DetectorRegion(x=1, y=1, size=6)
        r0, r1, c0, c1 = region.bounds(16)
        assert r0 == 0 and c0 == 0
        assert r1 > r0 and c1 > c0

    def test_region_outside_grid_rejected(self):
        with pytest.raises(ValueError):
            DetectorRegion(x=100, y=100, size=4).bounds(16)

    def test_layout_produces_requested_count(self):
        regions = grid_region_layout(64, 10)
        assert len(regions) == 10

    def test_layout_regions_within_grid(self):
        for region in grid_region_layout(64, 10, det_size=6):
            r0, r1, c0, c1 = region.bounds(64)
            assert 0 <= r0 < r1 <= 64
            assert 0 <= c0 < c1 <= 64

    def test_layout_regions_do_not_overlap(self):
        regions = grid_region_layout(64, 10)
        masks = np.zeros((64, 64))
        for region in regions:
            r0, r1, c0, c1 = region.bounds(64)
            masks[r0:r1, c0:c1] += 1
        assert masks.max() == 1.0

    def test_layout_rejects_zero_classes(self):
        with pytest.raises(ValueError):
            grid_region_layout(64, 0)


class TestDetector:
    def test_construction_requires_some_layout(self, small_grid):
        with pytest.raises(ValueError):
            Detector(small_grid)

    def test_construction_from_xy_locations(self, small_grid):
        detector = Detector(small_grid, x_loc=[8, 24], y_loc=[8, 24], det_size=4)
        assert detector.num_classes == 2

    def test_xy_length_mismatch_rejected(self, small_grid):
        with pytest.raises(ValueError):
            Detector(small_grid, x_loc=[8], y_loc=[8, 24])

    def test_read_integrates_region_intensity(self, small_grid):
        detector = Detector(small_grid, regions=[DetectorRegion(8, 8, 4), DetectorRegion(24, 24, 4)])
        intensity = np.zeros(small_grid.shape)
        intensity[6:10, 6:10] = 1.0  # light only in region 0
        logits = detector.read(Tensor(intensity[None]))
        assert logits.data[0, 0] > 0
        assert logits.data[0, 1] == pytest.approx(0.0)

    def test_forward_from_field(self, small_grid, rng):
        detector = Detector(small_grid, num_classes=10, det_size=4)
        field = Tensor(rng.normal(size=(2,) + small_grid.shape) + 1j * rng.normal(size=(2,) + small_grid.shape))
        logits = detector(field)
        assert logits.shape == (2, 10)
        assert np.all(logits.data.real >= 0)

    def test_read_unbatched_field(self, small_grid, rng):
        detector = Detector(small_grid, num_classes=4, det_size=4)
        intensity = rng.uniform(size=small_grid.shape)
        logits = detector.read(Tensor(intensity))
        assert logits.shape == (4,)

    def test_region_mask_labels(self, small_grid):
        detector = Detector(small_grid, num_classes=3, det_size=4)
        label_map = detector.region_mask()
        assert set(np.unique(label_map)) == {-1, 0, 1, 2}

    def test_intensity_pattern_is_abs2(self, small_grid, rng):
        detector = Detector(small_grid, num_classes=2, det_size=4)
        field = Tensor(rng.normal(size=small_grid.shape) + 1j * rng.normal(size=small_grid.shape))
        np.testing.assert_allclose(detector.intensity_pattern(field).data, np.abs(field.data) ** 2)

    def test_gradients_flow_through_detector(self, small_grid, rng):
        from repro.autograd import check_gradients

        detector = Detector(small_grid, num_classes=4, det_size=4)
        field = Tensor(
            rng.normal(size=small_grid.shape) + 1j * rng.normal(size=small_grid.shape), requires_grad=True
        )
        weights = rng.normal(size=4)
        assert check_gradients(lambda f: (detector(f) * weights).sum(), [field], atol=1e-6)
