"""Tests for elastic replica groups and the SLO-driven autoscaler.

Three tiers, cheapest first: pure control-law tests drive
``Autoscaler.evaluate``/``step`` against fakes (no processes, no clock
sleeps beyond a few milliseconds); elastic-membership tests spawn real
worker processes around a tiny DONN; one integration test threads
``InferenceServer(autoscale=...)`` end to end and one regression test
pins the zero-traffic ``GET /v1/stats`` NaN contract.
"""

from __future__ import annotations

import asyncio
import json
import logging
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import AutoscaleConfig, Autoscaler, ReplicaGroup
from repro.engine import compile as engine_compile
from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.serve import InferenceServer, SessionRegistry

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
import loadgen  # noqa: E402  (benchmarks/ is not a package)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _tiny_model() -> DONN:
    config = DONNConfig(
        sys_size=16, pixel_size=36e-6, distance=0.05, num_layers=2, num_classes=4, approx="fresnel", seed=3
    )
    return DONN(config)


@pytest.fixture(scope="module")
def tiny_spec():
    return engine_compile(_tiny_model(), batch_size=32, backend="numpy").to_spec()


def _wait_until(predicate, timeout_s: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.05)


# --------------------------------------------------------------------- #
# Fakes for the control law (no processes)
# --------------------------------------------------------------------- #
class ManualClock:
    """A hand-cranked ``time.monotonic`` stand-in for backoff/cooldown tests.

    Injectable wherever the cluster takes ``clock=`` (``Autoscaler``,
    ``ReplicaGroup``, ``Replica``), so tests walk production-scale
    timelines -- 30 s backoffs, minute cooldowns -- without sleeping.
    """

    def __init__(self, start: float = 1000.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now


class FakeGroup:
    name = "fake"

    def __init__(self, size: int = 1):
        self.size = size
        self.in_flight = 0
        self.scale_calls = []
        self.fail_scaling = False

    def __len__(self):
        return self.size

    def total_in_flight(self):
        return self.in_flight

    def alive_count(self):
        return self.size

    def scale_to(self, n):
        self.scale_calls.append(n)
        if self.fail_scaling:
            raise RuntimeError("spawn exploded")
        self.size = n
        return n


class FakeStats:
    def __init__(self):
        self.completed = 0
        self.p99_latency_ms = float("nan")


def _scaler(size=1, *, registry=None, model=None, **cfg):
    defaults = dict(
        slo_p99_ms=100.0,
        min_replicas=1,
        max_replicas=4,
        min_samples=10,
        up_cooldown_s=1.0,
        down_cooldown_s=5.0,
    )
    defaults.update(cfg)
    group, stats = FakeGroup(size), FakeStats()
    return Autoscaler(group, stats, AutoscaleConfig(**defaults), registry=registry, model=model), group, stats


class TestAutoscaleConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            {"slo_p99_ms": 0},
            {"slo_p99_ms": 50, "min_replicas": 0},
            {"slo_p99_ms": 50, "min_replicas": 3, "max_replicas": 2},
            {"slo_p99_ms": 50, "low_fraction": 0.9, "high_fraction": 0.5},
            {"slo_p99_ms": 50, "low_fraction": 0.0},
            {"slo_p99_ms": 50, "interval_s": 0.0},
            {"slo_p99_ms": 50, "up_cooldown_s": -1.0},
            {"slo_p99_ms": 50, "min_samples": 0},
            {"slo_p99_ms": 50, "max_inflight_per_replica": 0.0},
            {"slo_p99_ms": 50, "idle_timeout_s": 0.0},
            {"slo_p99_ms": 50, "stats_window": 0},
        ],
    )
    def test_invalid_configs_refused(self, bad):
        with pytest.raises(ValueError):
            AutoscaleConfig(**bad)

    def test_from_options_accepts_dict_and_passthrough(self):
        config = AutoscaleConfig.from_options({"slo_p99_ms": 40, "max_replicas": 3})
        assert config.slo_p99_ms == 40 and config.max_replicas == 3
        assert AutoscaleConfig.from_options(config) is config
        with pytest.raises(TypeError):
            AutoscaleConfig.from_options(40)


class TestControlLaw:
    def test_cold_window_never_scales(self):
        """NaN percentiles (no samples yet) must hold, whatever the depth."""
        scaler, group, stats = _scaler(size=1)
        group.in_flight = 50  # pressure that would otherwise scale up
        verdict = scaler.step(now=0.0)
        assert verdict.action == "hold" and verdict.reason == "cold-window"
        assert group.scale_calls == [] and scaler.nan_holds == 1
        snap = scaler.snapshot()
        assert snap["last_decision"]["p99_ms"] is None  # JSON-safe, never NaN
        assert "NaN" not in json.dumps(snap)

    def test_step_overload_scales_up_exactly_once(self):
        """A step that one extra replica absorbs produces one action, no flap."""
        scaler, group, stats = _scaler(size=1, up_cooldown_s=0.5)
        stats.completed, stats.p99_latency_ms = 100, 95.0  # over 0.9 * 100
        assert scaler.step(now=0.0).action == "up"
        assert group.size == 2 and scaler.scale_ups == 1
        # Same window, no fresh completions: the freshness gate holds.
        assert scaler.step(now=0.1).reason == "awaiting-samples"
        # Fresh samples but inside the cooldown, still over budget: hold.
        stats.completed += 20
        assert scaler.step(now=0.3).reason == "up-cooldown"
        # The step absorbed: p99 lands in the hysteresis band -> no action
        # in either direction, ever.
        stats.completed += 20
        stats.p99_latency_ms = 70.0  # between low (50) and high (90)
        for tick in range(10):
            assert scaler.step(now=1.0 + tick).action == "hold"
        assert group.scale_calls == [2] and scaler.scale_downs == 0

    def test_injected_clock_drives_cooldowns_without_wall_time(self):
        """step() with no explicit now reads the injected clock, so a
        60 s production cooldown is testable by advancing fake time."""
        clock = ManualClock()
        group, stats = FakeGroup(1), FakeStats()
        config = AutoscaleConfig(
            slo_p99_ms=100.0, min_replicas=1, max_replicas=4, min_samples=10, up_cooldown_s=60.0
        )
        scaler = Autoscaler(group, stats, config, clock=clock)
        stats.completed, stats.p99_latency_ms = 100, 95.0
        assert scaler.step().action == "up"
        stats.completed += 20
        clock.advance(30.0)  # half the cooldown: still held
        assert scaler.step().reason == "up-cooldown"
        clock.advance(31.0)  # past it: free to act again
        assert scaler.step().action == "up"
        assert group.scale_calls == [2, 3]

    def test_max_fleet_cap_respected(self):
        scaler, group, stats = _scaler(size=4, max_replicas=4)
        stats.completed, stats.p99_latency_ms = 100, 500.0
        verdict = scaler.step(now=0.0)
        assert verdict.action == "hold" and verdict.reason == "at-max-fleet"
        assert group.scale_calls == []

    def test_queue_depth_scales_up_before_latency_window(self):
        scaler, group, stats = _scaler(size=2, max_inflight_per_replica=3.0)
        stats.completed, stats.p99_latency_ms = 50, 20.0  # latency looks fine
        group.in_flight = 6  # 3 per replica: at the trip-wire
        verdict = scaler.step(now=0.0)
        assert verdict.action == "up" and verdict.reason == "queue-depth"
        assert group.size == 3

    def test_scale_down_hysteresis_and_floor(self):
        scaler, group, stats = _scaler(size=3, down_cooldown_s=2.0)
        stats.completed, stats.p99_latency_ms = 100, 10.0  # far under 0.5 * 100
        assert scaler.step(now=0.0).action == "down" and group.size == 2
        stats.completed += 20
        assert scaler.step(now=0.5).reason == "down-cooldown"
        stats.completed += 20
        assert scaler.step(now=3.0).action == "down" and group.size == 1
        stats.completed += 20
        assert scaler.step(now=6.0).reason == "at-min-fleet"
        assert group.scale_calls == [2, 1]

    def test_scale_down_vetoed_when_remaining_fleet_cannot_absorb(self):
        scaler, group, stats = _scaler(size=2, max_inflight_per_replica=2.0)
        stats.completed, stats.p99_latency_ms = 100, 10.0
        group.in_flight = 3  # one replica could only absorb 2
        assert scaler.step(now=0.0).action == "hold"
        assert group.scale_calls == []

    def test_failed_resize_is_counted_and_cooldown_still_applies(self):
        """A bad spawn must not crash the loop nor retry at tick rate."""
        scaler, group, stats = _scaler(size=1, up_cooldown_s=1.0)
        group.fail_scaling = True
        stats.completed, stats.p99_latency_ms = 100, 500.0
        assert scaler.step(now=0.0).action == "up"
        assert scaler.errors == 1 and scaler.scale_ups == 0 and group.size == 1
        stats.completed += 20
        assert scaler.step(now=0.2).reason == "up-cooldown"

    def test_idle_shrinks_to_floor_and_demotes_in_lru_registry(self):
        registry = SessionRegistry(max_models=2)
        hot = type("S", (), {"run": lambda self, b, batch_size=None: b})()
        idle = type("S", (), {"run": lambda self, b, batch_size=None: b})()
        registry.register("idle-model", idle)
        registry.register("hot-model", hot)
        registry.get("idle-model")  # most recently used -> last in LRU line
        scaler, group, stats = _scaler(
            size=3, idle_timeout_s=0.5, registry=registry, model="idle-model"
        )
        assert scaler.step(now=0.0).action == "hold"  # arms the idle clock
        verdict = scaler.step(now=1.0)
        assert verdict.action == "down" and verdict.reason == "idle"
        assert group.size == 1
        # The same tick performs the LRU demotion -- and only once per
        # idle spell, not on every subsequent tick.
        assert scaler.idle_demotions == 1
        registry.register("third", hot)  # capacity eviction takes the idle model
        assert registry.last_evicted == ("idle-model",)
        assert "hot-model" in registry
        assert scaler.step(now=3.0).action == "hold"
        assert scaler.idle_demotions == 1

    def test_traffic_resets_the_idle_clock(self):
        scaler, group, stats = _scaler(size=2, idle_timeout_s=1.0)
        scaler.step(now=0.0)
        stats.completed = 5  # traffic arrived
        verdict = scaler.step(now=1.5)  # only 0s since last traffic at t=1.5
        assert verdict.reason != "idle"
        assert group.size == 2

    def test_decision_history_is_bounded_and_deduplicates_holds(self):
        scaler, group, stats = _scaler(size=1, history=8)
        for tick in range(50):
            scaler.step(now=float(tick))  # cold-window hold every tick
        snap = scaler.snapshot()
        assert len(snap["decisions"]) == 1  # one entry per reason-transition
        assert snap["holds"] == 50 and snap["nan_holds"] == 50
        assert len(snap["decisions"]) <= 8


# --------------------------------------------------------------------- #
# Arrival-trace shapes (loadgen)
# --------------------------------------------------------------------- #
class TestSchedules:
    def test_step_schedule_has_the_right_rates_per_phase(self):
        rng = np.random.default_rng(7)
        offsets = loadgen.step_schedule(50.0, 400.0, rng, base_s=2.0, peak_s=2.0, tail_s=2.0)
        assert np.all(np.diff(offsets) >= 0) and offsets[-1] < 6.0
        base = np.sum(offsets < 2.0)
        peak = np.sum((offsets >= 2.0) & (offsets < 4.0))
        tail = np.sum(offsets >= 4.0)
        # Poisson(100) and Poisson(800): 5 sigma bands never overlap.
        assert 50 <= base <= 150 and 660 <= peak <= 940 and 50 <= tail <= 150

    def test_ramp_schedule_density_follows_the_ramp(self):
        rng = np.random.default_rng(11)
        up = loadgen.ramp_schedule(50.0, 400.0, 4.0, rng, steps=8)
        first, second = np.sum(up < 2.0), np.sum(up >= 2.0)
        assert second > 1.8 * first  # expected ratio ~2.4x
        down = loadgen.ramp_schedule(400.0, 50.0, 4.0, rng, steps=8)
        assert np.sum(down < 2.0) > 1.8 * np.sum(down >= 2.0)

    def test_piecewise_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            loadgen.piecewise_poisson_schedule([], rng)
        with pytest.raises(ValueError):
            loadgen.piecewise_poisson_schedule([(-1.0, 1.0)], rng)
        with pytest.raises(ValueError):
            loadgen.piecewise_poisson_schedule([(10.0, 0.0)], rng)
        with pytest.raises(ValueError):
            loadgen.piecewise_poisson_schedule([(0.0, 1.0)], rng)

    def test_run_open_loop_with_explicit_trace(self):
        offsets = np.array([0.0, 0.01, 0.02, 0.03])
        payloads = [np.full((2, 2), float(i)) for i in range(4)]

        async def submit(payload):
            return payload

        async def scenario():
            return await loadgen.run_open_loop(submit, payloads, offsets=offsets)

        result = asyncio.run(scenario())
        assert result.offered == 4 and result.completed == 4 and result.errors == 0
        assert result.percentile(99) < 1000.0

    def test_run_open_loop_argument_validation(self):
        async def submit(payload):  # pragma: no cover - never reached
            return payload

        async def both():
            await loadgen.run_open_loop(
                submit, [np.zeros(2)], 10.0, np.random.default_rng(0), offsets=np.array([0.1])
            )

        async def neither():
            await loadgen.run_open_loop(submit, [np.zeros(2)])

        async def short():
            await loadgen.run_open_loop(submit, [np.zeros(2)], offsets=np.array([0.1, 0.2]))

        for scenario in (both, neither, short):
            with pytest.raises(ValueError):
                asyncio.run(scenario())


# --------------------------------------------------------------------- #
# Elastic membership on real worker processes
# --------------------------------------------------------------------- #
class TestElasticGroup:
    def test_scale_up_then_down_with_result_parity(self, tiny_spec, rng):
        reference = tiny_spec.build()
        images = rng.uniform(size=(4, 16, 16))
        with ReplicaGroup(tiny_spec, replicas=1, call_timeout_s=30.0) as group:
            expected = reference.run(images)
            np.testing.assert_allclose(group.infer_sync(images), expected, atol=1e-10)
            assert group.scale_to(3) == 3 and len(group) == 3
            _wait_until(lambda: group.alive_count() == 3, what="3 replicas alive")
            np.testing.assert_allclose(group.infer_sync(images), expected, atol=1e-10)
            rows = group.stats()
            assert [row["replica"] for row in rows] == [0, 1, 2]
            assert all(row["draining"] is False for row in rows)
            assert group.scale_to(1) == 1 and len(group) == 1
            np.testing.assert_allclose(group.infer_sync(images), expected, atol=1e-10)

    def test_add_replica_before_start_boots_with_the_group(self, tiny_spec):
        group = ReplicaGroup(tiny_spec, replicas=1, call_timeout_s=30.0)
        try:
            index = group.add_replica()
            assert index == 1 and len(group) == 2
            group.start()
            _wait_until(lambda: group.alive_count() == 2, what="both replicas alive")
        finally:
            group.close()

    def test_cannot_remove_the_last_replica(self, tiny_spec):
        with ReplicaGroup(tiny_spec, replicas=1, call_timeout_s=30.0) as group:
            with pytest.raises(ValueError):
                group.remove_replica()
            with pytest.raises(ValueError):
                group.scale_to(0)

    def test_removal_survives_index_position_divergence(self, tiny_spec, rng):
        """Removing index 0 leaves index 1 at list position 0: dispatch,
        restarts and stats must key by *index*, not position."""
        images = rng.uniform(size=(2, 16, 16))
        with ReplicaGroup(tiny_spec, replicas=2, call_timeout_s=30.0) as group:
            expected = tiny_spec.build().run(images)
            assert group.remove_replica(index=0) == 0
            assert len(group) == 1 and group.stats()[0]["replica"] == 1
            for _ in range(3):
                np.testing.assert_allclose(group.infer_sync(images), expected, atol=1e-10)
            # The survivor is also still restartable under its true index.
            assert group.check_health() == [True]

    def test_drain_before_terminate_drops_zero_inflight(self, tiny_spec, rng):
        """Removing a busy replica waits for its in-flight calls: every
        request issued before (and during) the removal completes."""
        images = rng.uniform(size=(2, 16, 16))
        with ReplicaGroup(
            tiny_spec,
            replicas=2,
            router="round_robin",
            handicaps={1: 0.25},  # slow victim: calls are in flight during removal
            call_timeout_s=30.0,
        ) as group:
            expected = tiny_spec.build().run(images)
            outcomes = []

            def caller():
                try:
                    outcomes.append(("ok", group.infer_sync(images)))
                except Exception as exc:  # pragma: no cover - the assertion target
                    outcomes.append(("error", exc))

            threads = [threading.Thread(target=caller) for _ in range(6)]
            for thread in threads:
                thread.start()
            _wait_until(lambda: group.total_in_flight() > 0, what="calls in flight")
            removed = group.remove_replica(index=1, drain_timeout_s=30.0)
            for thread in threads:
                thread.join(timeout=30.0)
            assert removed == 1 and len(group) == 1
            assert len(outcomes) == 6
            assert [status for status, _ in outcomes] == ["ok"] * 6
            for _, result in outcomes:
                np.testing.assert_allclose(result, expected, atol=1e-10)

    def test_restart_backoff_grows_and_resets(self, tiny_spec):
        """The backoff ladder at *production-scale* delays, on a fake clock.

        The group's injected ``clock`` drives every backoff decision, so
        the test walks a 5 s -> 8 s (capped) ladder by advancing fake
        time -- no wall-clock sleeps beyond process lifecycle."""
        clock = ManualClock()
        wall_started = time.monotonic()
        with ReplicaGroup(
            tiny_spec,
            replicas=1,
            restart_backoff_s=5.0,
            restart_backoff_cap_s=8.0,
            call_timeout_s=30.0,
            clock=clock,
        ) as group:
            replica = group._by_index[0]
            real_restart = replica.restart
            replica.restart = lambda: (_ for _ in ()).throw(RuntimeError("boot loops"))
            try:
                group._schedule_restart(0)
                _wait_until(lambda: replica.restart_attempts == 1, 10.0, "first failed attempt")
                # Exponential ladder on the fake timeline: 5 s out.
                assert replica.restart_not_before == pytest.approx(clock.now + 5.0)
                assert group.stats()[0]["restart_attempts"] == 1
                clock.advance(5.0)  # the window expires instantly
                group._schedule_restart(0)
                _wait_until(lambda: replica.restart_attempts == 2, 10.0, "backed-off second attempt")
                assert replica.restart_not_before == pytest.approx(clock.now + 8.0)  # capped: min(8, 10)
                clock.advance(8.0)
                group._schedule_restart(0)
                _wait_until(lambda: replica.restart_attempts == 3, 10.0, "capped third attempt")
                assert replica.restart_not_before == pytest.approx(clock.now + 8.0)
            finally:
                replica.restart = real_restart
            clock.advance(8.0)
            group._schedule_restart(0)
            # Success resets the ladder (restart() zeroes the counter).
            _wait_until(
                lambda: replica.restart_attempts == 0 and replica.alive,
                30.0,
                "successful restart resetting the backoff ladder",
            )
            assert group.stats()[0]["restart_attempts"] == 0
        # 21 fake seconds of backoff must not cost 21 wall seconds.
        assert time.monotonic() - wall_started < 15.0

    def test_close_logs_stuck_restart_at_configurable_deadline(self, tiny_spec, caplog):
        group = ReplicaGroup(tiny_spec, replicas=1, close_timeout_s=0.3, call_timeout_s=30.0)
        group.start()
        group._restarting.add(99)  # a revive thread that never finishes
        started = time.monotonic()
        with caplog.at_level(logging.WARNING, logger="repro.cluster.group"):
            group.close()
        assert time.monotonic() - started < 5.0  # bounded by close_timeout_s, not 60s
        assert any("still running" in record.message for record in caplog.records)
        assert any("99" in record.getMessage() for record in caplog.records)

    def test_close_interrupts_backoff_sleep_promptly(self, tiny_spec):
        """A revive waiting out a 30 s backoff must not hold close() hostage."""
        with ReplicaGroup(
            tiny_spec,
            replicas=1,
            restart_backoff_s=30.0,
            restart_backoff_cap_s=30.0,
            call_timeout_s=30.0,
        ) as group:
            replica = group._by_index[0]
            replica.note_restart_failure()  # not_before ~30s out
            group._schedule_restart(0)  # revive thread parks on the backoff wait
            _wait_until(lambda: 0 in group._restarting, 5.0, "revive thread parked")
            started = time.monotonic()
        assert time.monotonic() - started < 5.0


# --------------------------------------------------------------------- #
# Server integration + gateway NaN regression
# --------------------------------------------------------------------- #
class TestServerAutoscale:
    def test_server_scales_up_under_load(self, tiny_spec, rng):
        """A handicapped single replica blows the budget; the autoscaler
        adds a clean one and the decision is visible in stats()."""
        images = [rng.uniform(size=(16, 16)) for _ in range(400)]

        async def scenario():
            server = InferenceServer(
                max_batch=4,
                max_queue=512,
                replicas=1,
                cluster_options={"handicaps": {0: 0.06}, "call_timeout_s": 30.0},
                autoscale={
                    "slo_p99_ms": 80.0,
                    "max_replicas": 2,
                    "interval_s": 0.05,
                    "min_samples": 4,
                    "up_cooldown_s": 0.2,
                    "stats_window": 64,
                },
            )
            server.add_model("donn", tiny_spec.build())
            async with server:
                assert server.describe()["donn"]["autoscale"] is True
                deadline = asyncio.get_running_loop().time() + 60.0
                scaled = False
                cursor = 0
                while asyncio.get_running_loop().time() < deadline and not scaled:
                    burst = [
                        server.submit("donn", images[(cursor + i) % len(images)])
                        for i in range(8)
                    ]
                    cursor += 8
                    await asyncio.gather(*burst)
                    snap = server.stats()["donn"]
                    scaled = (snap.autoscaler or {}).get("scale_ups", 0) >= 1
                final = server.stats()["donn"]
                return scaled, final.autoscaler, final.as_dict()

        scaled, autoscaler, row = asyncio.run(scenario())
        assert scaled, f"autoscaler never scaled up: {autoscaler}"
        assert autoscaler["fleet"] == 2
        assert any(entry["action"] == "up" for entry in autoscaler["decisions"])
        assert row["autoscaler"]["config"]["slo_p99_ms"] == 80.0

    def test_explicit_autoscale_needs_a_shardable_model(self):
        class InProcessOnly:
            input_shape = (4, 4)

            def run(self, batch, batch_size=None):  # pragma: no cover
                return np.asarray(batch)

        server = InferenceServer()
        with pytest.raises(TypeError):
            server.add_model("echo", InProcessOnly(), autoscale={"slo_p99_ms": 50})

    def test_bad_autoscale_options_refused_at_construction(self):
        with pytest.raises(ValueError):
            InferenceServer(autoscale={"slo_p99_ms": -5})
        with pytest.raises(TypeError):
            InferenceServer(autoscale=42)


class TestGatewayZeroTrafficStats:
    def test_stats_on_zero_traffic_autoscaled_server_is_valid_json(self, tiny_spec):
        """Cold percentile windows are NaN internally; the HTTP surface
        must serve ``null``, and the payload must parse as strict JSON."""
        from repro.gateway import Gateway
        from repro.gateway.codec import read_response

        async def scenario():
            server = InferenceServer(
                replicas=1,
                cluster_options={"call_timeout_s": 30.0},
                autoscale={"slo_p99_ms": 50.0, "interval_s": 0.05, "max_replicas": 2},
            )
            server.add_model("donn", tiny_spec.build())
            async with server:
                await asyncio.sleep(0.2)  # let the autoscaler tick on the cold window
                async with Gateway(server, port=0) as gateway:
                    reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
                    try:
                        writer.write(b"GET /v1/stats HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                        await writer.drain()
                        status, _, body = await asyncio.wait_for(read_response(reader), 10.0)
                    finally:
                        writer.close()
                        try:
                            await writer.wait_closed()
                        except (ConnectionError, OSError):
                            pass
                stats = server.stats()["donn"]
                return status, body, stats.autoscaler

        status, body, snapshot = asyncio.run(scenario())
        assert status == 200
        assert b"NaN" not in body and b"Infinity" not in body

        def reject(token):  # json.loads accepts NaN by default; refuse it
            raise AssertionError(f"non-finite JSON constant {token!r} in /v1/stats")

        payload = json.loads(body.decode("utf-8"), parse_constant=reject)
        row = payload["models"]["donn"]
        assert row["p99_latency_ms"] is None  # cold window -> null, not NaN
        assert row["completed"] == 0
        assert row["autoscaler"]["nan_holds"] >= 1  # the loop ticked and held
        assert row["autoscaler"]["scale_ups"] == 0
        assert snapshot["last_decision"]["reason"] == "cold-window"
