"""Complex-number autodiff: Wirtinger gradients, FFTs, phase modulation.

These tests pin down the gradient convention the optical kernels rely on:
finite-difference gradients of real scalar losses w.r.t. real *and*
complex leaves must match the analytic backward passes exactly.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, functional, numerical_gradient, ops


def _random_complex(rng, shape):
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


class TestComplexElementwise:
    def test_conj_values(self, rng):
        z = Tensor(_random_complex(rng, (3,)))
        np.testing.assert_allclose(z.conj().data, np.conj(z.data))

    def test_abs2_is_intensity(self, rng):
        z = Tensor(_random_complex(rng, (4,)))
        np.testing.assert_allclose(z.abs2().data, np.abs(z.data) ** 2)
        assert not z.abs2().is_complex

    def test_real_imag_angle_abs_values(self, rng):
        z = Tensor(_random_complex(rng, (5,)))
        np.testing.assert_allclose(z.real().data, z.data.real)
        np.testing.assert_allclose(z.imag().data, z.data.imag)
        np.testing.assert_allclose(z.angle().data, np.angle(z.data))
        np.testing.assert_allclose(z.abs().data, np.abs(z.data))

    def test_to_complex_promotes(self):
        t = Tensor([1.0, 2.0])
        assert t.to_complex().is_complex
        z = Tensor([1.0 + 0j])
        assert z.to_complex() is z

    def test_gradcheck_abs2(self, rng):
        z = Tensor(_random_complex(rng, (3, 3)), requires_grad=True)
        assert check_gradients(lambda z: z.abs2().sum(), [z])

    def test_gradcheck_abs(self, rng):
        z = Tensor(_random_complex(rng, (3, 3)) + 2.0, requires_grad=True)
        assert check_gradients(lambda z: z.abs().sum(), [z])

    def test_gradcheck_real_imag(self, rng):
        z = Tensor(_random_complex(rng, (2, 2)), requires_grad=True)
        weights = rng.normal(size=(2, 2))
        assert check_gradients(lambda z: (z.real() * weights).sum() + (z.imag() * weights).sum(), [z])

    def test_gradcheck_angle(self, rng):
        z = Tensor(_random_complex(rng, (3,)) + 3.0, requires_grad=True)
        weights = rng.normal(size=3)
        assert check_gradients(lambda z: (z.angle() * weights).sum(), [z])

    def test_gradcheck_conj_chain(self, rng):
        z = Tensor(_random_complex(rng, (3,)), requires_grad=True)
        assert check_gradients(lambda z: (z * z.conj()).real().sum(), [z])

    def test_gradcheck_complex_mul(self, rng):
        a = Tensor(_random_complex(rng, (3, 3)), requires_grad=True)
        b = Tensor(_random_complex(rng, (3, 3)), requires_grad=True)
        assert check_gradients(lambda a, b: (a * b).abs2().sum(), [a, b])

    def test_gradcheck_complex_matmul(self, rng):
        a = Tensor(_random_complex(rng, (2, 3)), requires_grad=True)
        b = Tensor(_random_complex(rng, (3, 2)), requires_grad=True)
        assert check_gradients(lambda a, b: (a @ b).abs2().sum(), [a, b])

    def test_gradcheck_complex_exp(self, rng):
        z = Tensor(0.3 * _random_complex(rng, (3,)), requires_grad=True)
        assert check_gradients(lambda z: z.exp().abs2().sum(), [z])

    def test_gradcheck_mixed_real_complex_product(self, rng):
        amplitude = Tensor(rng.uniform(0.5, 1.5, size=(3, 3)), requires_grad=True)
        field = Tensor(_random_complex(rng, (3, 3)), requires_grad=True)
        assert check_gradients(lambda a, f: (a.to_complex() * f).abs2().sum(), [amplitude, field])

    def test_descent_direction_reduces_modulus(self, rng):
        z = Tensor(_random_complex(rng, (4,)), requires_grad=True)
        loss = z.abs2().sum()
        loss.backward()
        stepped = z.data - 0.1 * z.grad
        assert np.sum(np.abs(stepped) ** 2) < float(loss.data)


class TestExpI:
    def test_unit_magnitude(self, rng):
        phase = Tensor(rng.uniform(0, 2 * np.pi, size=(5, 5)))
        np.testing.assert_allclose(np.abs(ops.exp_i(phase).data), 1.0)

    def test_matches_numpy_exp(self, rng):
        phase = rng.uniform(0, 2 * np.pi, size=(4,))
        np.testing.assert_allclose(ops.exp_i(Tensor(phase)).data, np.exp(1j * phase))

    def test_gradcheck_phase_only_loss(self, rng):
        phase = Tensor(rng.uniform(0, 2 * np.pi, size=(3, 3)), requires_grad=True)
        target = _random_complex(rng, (3, 3))
        assert check_gradients(lambda p: (ops.exp_i(p) - Tensor(target)).abs2().sum(), [phase])

    def test_gradcheck_amplitude_phase_field(self, rng):
        amplitude = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        phase = Tensor(rng.uniform(0, 2 * np.pi, size=(3, 3)), requires_grad=True)
        target = _random_complex(rng, (3, 3))

        def loss(amplitude, phase):
            field = ops.complex_from_amplitude_phase(amplitude, phase)
            return (field - Tensor(target)).abs2().sum()

        assert check_gradients(loss, [amplitude, phase])


class TestFFT:
    def test_fft_matches_numpy(self, rng):
        x = _random_complex(rng, (2, 8, 8))
        np.testing.assert_allclose(ops.fft2(Tensor(x)).data, np.fft.fft2(x), atol=1e-12)

    def test_ifft_matches_numpy(self, rng):
        x = _random_complex(rng, (8, 8))
        np.testing.assert_allclose(ops.ifft2(Tensor(x)).data, np.fft.ifft2(x), atol=1e-12)

    def test_roundtrip_identity(self, rng):
        x = _random_complex(rng, (6, 6))
        np.testing.assert_allclose(ops.ifft2(ops.fft2(Tensor(x))).data, x, atol=1e-12)

    def test_parseval(self, rng):
        x = _random_complex(rng, (8, 8))
        spectrum = ops.fft2(Tensor(x)).data
        assert np.sum(np.abs(x) ** 2) == pytest.approx(np.sum(np.abs(spectrum) ** 2) / x.size)

    def test_gradcheck_fft2(self, rng):
        x = Tensor(_random_complex(rng, (4, 4)), requires_grad=True)
        weights = rng.normal(size=(4, 4))
        assert check_gradients(lambda x: (ops.fft2(x).abs2() * weights).sum(), [x])

    def test_gradcheck_ifft2(self, rng):
        x = Tensor(_random_complex(rng, (4, 4)), requires_grad=True)
        weights = rng.normal(size=(4, 4))
        assert check_gradients(lambda x: (ops.ifft2(x).abs2() * weights).sum(), [x])

    def test_gradcheck_batched_fft(self, rng):
        x = Tensor(_random_complex(rng, (2, 3, 3)), requires_grad=True)
        assert check_gradients(lambda x: ops.fft2(x).abs2().sum(), [x])

    def test_fftshift_roundtrip_and_grad(self, rng):
        x = Tensor(_random_complex(rng, (5, 5)), requires_grad=True)
        np.testing.assert_allclose(ops.ifftshift(ops.fftshift(x)).data, x.data)
        weights = rng.normal(size=(5, 5))
        assert check_gradients(lambda x: (ops.fftshift(x).abs2() * weights).sum(), [x])

    def test_gradcheck_full_diffraction_pipeline(self, rng):
        """The exact op chain of a diffractive layer must gradcheck end-to-end."""
        transfer = np.exp(1j * rng.uniform(0, 2 * np.pi, size=(4, 4)))
        image = rng.uniform(0, 1, size=(4, 4))
        target = functional.one_hot(np.array([7]), 16)
        phase = Tensor(rng.uniform(0, 2 * np.pi, size=(4, 4)), requires_grad=True)

        def loss(phase):
            field = Tensor(np.sqrt(image)).to_complex()
            spectrum = ops.fft2(field)
            diffracted = ops.ifft2(spectrum * Tensor(transfer))
            modulated = diffracted * ops.exp_i(phase)
            intensity = ops.ifft2(ops.fft2(modulated) * Tensor(transfer)).abs2()
            return functional.softmax_mse_loss(intensity.reshape(1, 16) * 3.0, Tensor(target))

        assert check_gradients(loss, [phase], atol=1e-7, rtol=1e-4)


class TestNumericalGradientHelper:
    def test_requires_scalar_output(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            numerical_gradient(lambda x: x * 2, [x])

    def test_detects_wrong_gradient(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def broken(x):
            # A "loss" whose graph lies about its gradient: build output from
            # detached data so the analytic gradient is zero.
            return Tensor(float((x.data**2).sum()), requires_grad=True) + x.sum() * 0.0

        with pytest.raises(AssertionError):
            check_gradients(broken, [x])
