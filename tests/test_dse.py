"""Tests for the DSE engine: GBR, design space, analytical model, sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dse import (
    AnalyticalDSEModel,
    DecisionTreeRegressor,
    DesignPoint,
    DesignSpace,
    GradientBoostingRegressor,
    diffraction_spread_units,
    physics_prior_accuracy,
    run_analytical_dse,
    sensitivity_analysis,
    sweep_design_space,
)
from repro.dse.sensitivity import most_sensitive_parameter


class TestDecisionTree:
    def test_fits_a_step_function_exactly(self):
        features = np.linspace(0, 1, 50)[:, None]
        targets = (features[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        np.testing.assert_allclose(tree.predict(np.array([[0.1], [0.9]])), [0.0, 1.0])

    def test_constant_targets_give_constant_prediction(self):
        features = np.random.default_rng(0).normal(size=(20, 3))
        tree = DecisionTreeRegressor().fit(features, np.full(20, 2.5))
        np.testing.assert_allclose(tree.predict(features), 2.5)

    def test_depth_limits_tree_expressiveness(self, rng):
        features = rng.uniform(size=(100, 1))
        targets = np.sin(8 * features[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(features, targets)
        deep = DecisionTreeRegressor(max_depth=5).fit(features, targets)
        def mse(model):
            return float(((model.predict(features) - targets) ** 2).mean())

        assert mse(deep) < mse(shallow)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_validation_of_inputs(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_single_row_prediction_shape(self, rng):
        tree = DecisionTreeRegressor().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        assert tree.predict(np.zeros(2)).shape == (1,)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=5, max_value=40))
    def test_predictions_within_target_range(self, count):
        rng = np.random.default_rng(count)
        features = rng.uniform(size=(count, 2))
        targets = rng.uniform(size=count)
        tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        predictions = tree.predict(features)
        assert predictions.min() >= targets.min() - 1e-9
        assert predictions.max() <= targets.max() + 1e-9


class TestGradientBoosting:
    def test_improves_over_mean_predictor(self, rng):
        features = rng.uniform(size=(80, 2))
        targets = np.sin(3 * features[:, 0]) + 0.5 * features[:, 1]
        model = GradientBoostingRegressor(n_estimators=100, learning_rate=0.2, max_depth=2).fit(features, targets)
        mean_mse = float(((targets - targets.mean()) ** 2).mean())
        model_mse = float(((model.predict(features) - targets) ** 2).mean())
        assert model_mse < 0.1 * mean_mse

    def test_score_is_r_squared(self, rng):
        features = rng.uniform(size=(60, 2))
        targets = features[:, 0] * 2.0
        model = GradientBoostingRegressor(n_estimators=150, learning_rate=0.2).fit(features, targets)
        assert model.score(features, targets) > 0.9

    def test_more_estimators_fit_better(self, rng):
        features = rng.uniform(size=(60, 1))
        targets = np.cos(5 * features[:, 0])
        few = GradientBoostingRegressor(n_estimators=5, learning_rate=0.2).fit(features, targets)
        many = GradientBoostingRegressor(n_estimators=200, learning_rate=0.2).fit(features, targets)
        assert many.score(features, targets) > few.score(features, targets)

    def test_subsample_runs_and_is_seeded(self, rng):
        features = rng.uniform(size=(40, 2))
        targets = features.sum(axis=1)
        a = GradientBoostingRegressor(n_estimators=30, subsample=0.7, random_state=1).fit(features, targets)
        b = GradientBoostingRegressor(n_estimators=30, subsample=0.7, random_state=1).fit(features, targets)
        np.testing.assert_allclose(a.predict(features), b.predict(features))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 3)))


class TestDesignSpace:
    def test_paper_grid_has_121_points(self):
        assert DesignSpace(wavelength=532e-9).num_points == 121

    def test_unit_sizes_scale_with_wavelength(self):
        space = DesignSpace(wavelength=632e-9, unit_sizes_in_wavelengths=(10.0, 20.0))
        np.testing.assert_allclose(space.unit_sizes(), [6.32e-6, 12.64e-6])

    def test_grid_enumerates_all_pairs(self):
        space = DesignSpace(wavelength=532e-9, unit_sizes_in_wavelengths=(10, 20), distances=(0.1, 0.2, 0.3))
        assert len(space.grid()) == 6

    def test_design_point_features(self):
        point = DesignPoint(wavelength=1.0, unit_size=2.0, distance=3.0, accuracy=0.5)
        np.testing.assert_allclose(point.features(), [1.0, 2.0, 3.0])

    def test_spread_units_physics(self):
        # Larger unit size -> smaller diffraction angle -> smaller spread.
        small_unit = diffraction_spread_units(532e-9, 10e-6, 0.3)
        large_unit = diffraction_spread_units(532e-9, 50e-6, 0.3)
        assert small_unit > large_unit
        with pytest.raises(ValueError):
            diffraction_spread_units(532e-9, 0.0, 0.3)

    def test_prior_accuracy_peaks_at_moderate_spread(self):
        wavelength = 532e-9
        unit = 36e-6
        # Optimal distance by the half-cone theory: spread ~ 30 units.
        theta = np.arcsin(wavelength / (2 * unit))
        optimal_distance = 30.0 * unit / np.tan(theta)
        best = physics_prior_accuracy(wavelength, unit, optimal_distance)
        too_close = physics_prior_accuracy(wavelength, unit, optimal_distance / 100)
        too_far = physics_prior_accuracy(wavelength, unit, optimal_distance * 100)
        assert best > 0.9
        assert too_close < best and too_far < best

    def test_prior_accuracy_bounded(self):
        for distance in (0.001, 0.1, 10.0):
            value = physics_prior_accuracy(532e-9, 36e-6, distance)
            assert 0.05 <= value <= 1.0

    def test_sweep_returns_point_per_grid_cell(self):
        space = DesignSpace(wavelength=532e-9, unit_sizes_in_wavelengths=(20, 60), distances=(0.1, 0.3))
        points = sweep_design_space(space)
        assert len(points) == 4
        assert all(0 <= point.accuracy <= 1 for point in points)

    def test_sweep_with_custom_evaluator(self):
        space = DesignSpace(wavelength=532e-9, unit_sizes_in_wavelengths=(20,), distances=(0.1, 0.2))
        points = sweep_design_space(space, evaluator=lambda wl, d, z: z)
        assert [point.accuracy for point in points] == [0.1, 0.2]


class TestAnalyticalDSE:
    def test_model_requires_enough_points(self):
        with pytest.raises(ValueError):
            AnalyticalDSEModel().fit([DesignPoint(1, 1, 1, 0.5)] * 3)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AnalyticalDSEModel().predict(532e-9, 36e-6, 0.3)

    def test_interpolates_to_new_wavelength(self):
        """Train on 432/632 nm surrogate sweeps, predict 532 nm: predictions
        must correlate strongly with the true 532 nm landscape (Figure 5c vs 5d)."""
        result = run_analytical_dse(
            training_wavelengths=(432e-9, 632e-9),
            target_wavelength=532e-9,
            model=AnalyticalDSEModel(n_estimators=150),
        )
        predicted = np.array([p.accuracy for p in result.predicted_points])
        truth = np.array([physics_prior_accuracy(532e-9, p.unit_size, p.distance) for p in result.predicted_points])
        correlation = np.corrcoef(predicted, truth)[0, 1]
        assert correlation > 0.9

    def test_recommend_returns_sorted_top_k(self):
        model = AnalyticalDSEModel(n_estimators=60)
        points = sweep_design_space(DesignSpace(wavelength=432e-9)) + sweep_design_space(DesignSpace(wavelength=632e-9))
        model.fit(points)
        recommendations = model.recommend(DesignSpace(wavelength=532e-9), top_k=3)
        assert len(recommendations) == 3
        accuracies = [point.accuracy for point in recommendations]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_dse_finds_near_optimal_point_with_few_emulations(self):
        result = run_analytical_dse(
            training_wavelengths=(432e-9, 632e-9),
            target_wavelength=532e-9,
            verification_budget=2,
            model=AnalyticalDSEModel(n_estimators=150),
        )
        grid_best = max(
            physics_prior_accuracy(532e-9, d, z) for d, z in DesignSpace(wavelength=532e-9).grid()
        )
        assert result.best_point.accuracy >= grid_best - 0.1
        assert result.emulation_iterations == 2
        assert result.speedup_vs_grid_search == pytest.approx(121 / 2)


class TestSensitivity:
    def test_rows_cover_all_parameters_and_shifts(self):
        rows = sensitivity_analysis(532e-9, 36e-6, 0.3)
        assert len(rows) == 15
        assert {row.parameter for row in rows} == {"wavelength", "distance", "unit_size"}

    def test_zero_shift_rows_share_baseline_accuracy(self):
        rows = sensitivity_analysis(532e-9, 36e-6, 0.3)
        nominal = {row.accuracy for row in rows if row.shift == 0.0}
        assert len(nominal) == 1

    def test_unit_size_is_most_sensitive(self):
        """Table 3's qualitative finding: the diffraction unit size is the
        most sensitive of the three parameters."""
        theta = np.arcsin(532e-9 / (2 * 36e-6))
        best_distance = 30.0 * 36e-6 / np.tan(theta)
        rows = sensitivity_analysis(532e-9, 36e-6, best_distance)
        assert most_sensitive_parameter(rows) == "unit_size"

    def test_custom_evaluator_used(self):
        rows = sensitivity_analysis(1.0, 2.0, 3.0, evaluator=lambda wl, d, z: wl + d + z)
        baseline = [row for row in rows if row.shift == 0.0][0]
        assert baseline.accuracy == pytest.approx(6.0)
