"""Tests for the async dynamic-batching serving layer (``repro.serve``)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import DONN, MultiChannelDONN, SegmentationDONN
from repro.engine import InferenceSession
from repro.serve import (
    DeadlineExceededError,
    DynamicBatcher,
    FixedWindowPolicy,
    InferenceServer,
    ServerClosedError,
    ServerOverloadedError,
    SessionRegistry,
    SLOAwarePolicy,
    UnknownModelError,
)


class FakeSession:
    """Session double: counts fused engine calls and echoes payloads * 2."""

    def __init__(self, fail=False):
        self.batch_sizes = []
        self.fail = fail

    def run(self, batch, batch_size=None):
        batch = np.asarray(batch)
        self.batch_sizes.append(len(batch))
        if self.fail:
            raise RuntimeError("engine exploded")
        return batch * 2.0


def run_async(coro):
    return asyncio.run(coro)


class TestDynamicBatching:
    def test_concurrent_requests_fuse_into_one_engine_call(self):
        """Eight concurrent submits must produce exactly one fused call."""
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, max_batch=16, max_wait_ms=100, run_in_executor=False)
            batcher.start()
            payloads = [np.full((4, 4), float(i)) for i in range(8)]
            results = await asyncio.gather(*(batcher.submit(p) for p in payloads))
            await batcher.stop()
            return payloads, results

        payloads, results = run_async(scenario())
        assert fake.batch_sizes == [8], "coalescing must fuse all queued requests into one call"
        for payload, result in zip(payloads, results):
            np.testing.assert_array_equal(result, payload * 2.0)

    def test_results_scatter_to_the_correct_callers(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, max_batch=4, max_wait_ms=50, run_in_executor=False)
            batcher.start()
            payloads = [np.full((2, 2), float(i)) for i in range(10)]
            results = await asyncio.gather(*(batcher.submit(p) for p in payloads))
            await batcher.stop()
            return payloads, results

        payloads, results = run_async(scenario())
        # 10 requests at max_batch 4 -> at least three calls, none bigger than 4.
        assert sum(fake.batch_sizes) == 10
        assert max(fake.batch_sizes) <= 4
        for payload, result in zip(payloads, results):
            np.testing.assert_array_equal(result, payload * 2.0)

    def test_max_wait_zero_fuses_only_already_queued_requests(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, max_batch=8, max_wait_ms=0, run_in_executor=False)
            # Queue up before the worker exists, then start: one sweep, one call.
            tasks = [asyncio.create_task(batcher.submit(np.full((2, 2), float(i)))) for i in range(5)]
            await asyncio.sleep(0)
            batcher.start()
            results = await asyncio.gather(*tasks)
            await batcher.stop()
            return results

        results = run_async(scenario())
        assert fake.batch_sizes == [5]
        assert len(results) == 5

    def test_queue_overflow_raises_overload_instead_of_deadlocking(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, max_batch=4, max_wait_ms=0, max_queue=2, run_in_executor=False)
            # Worker not started: the bounded queue fills, the third submit
            # must fail fast -- not block forever.
            pending = [asyncio.create_task(batcher.submit(np.ones((2, 2)) * i)) for i in range(2)]
            await asyncio.sleep(0)
            with pytest.raises(ServerOverloadedError):
                await batcher.submit(np.ones((2, 2)))
            # The queued work is intact: starting the worker drains it.
            batcher.start()
            results = await asyncio.gather(*pending)
            await batcher.stop()
            return results

        results = run_async(scenario())
        assert len(results) == 2
        stats = fake.batch_sizes
        assert sum(stats) == 2

    def test_overload_counts_in_stats(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, max_queue=1, max_wait_ms=0, run_in_executor=False)
            task = asyncio.create_task(batcher.submit(np.ones((2, 2))))
            await asyncio.sleep(0)
            with pytest.raises(ServerOverloadedError):
                await batcher.submit(np.ones((2, 2)))
            batcher.start()
            await task
            await batcher.stop()
            return batcher.stats()

        stats = run_async(scenario())
        assert stats.submitted == 1
        assert stats.completed == 1
        assert stats.rejected == 1
        assert stats.batches == 1
        assert stats.mean_batch_size == 1.0

    def test_engine_failure_propagates_to_all_callers_and_worker_survives(self):
        fake = FakeSession(fail=True)

        async def scenario():
            batcher = DynamicBatcher(fake, max_batch=8, max_wait_ms=50, run_in_executor=False)
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(np.ones((2, 2))) for _ in range(3)), return_exceptions=True
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            # The worker must still be alive and serving after a bad batch.
            fake.fail = False
            good = await batcher.submit(np.ones((2, 2)))
            await batcher.stop()
            return good

        good = run_async(scenario())
        np.testing.assert_array_equal(good, np.ones((2, 2)) * 2.0)

    def test_submit_after_stop_raises_closed(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, run_in_executor=False)
            batcher.start()
            await batcher.stop()
            with pytest.raises(ServerClosedError):
                await batcher.submit(np.ones((2, 2)))

        run_async(scenario())

    def test_input_shape_validation_fails_fast(self):
        fake = FakeSession()

        async def scenario():
            batcher = DynamicBatcher(fake, input_shape=(4, 4), run_in_executor=False)
            batcher.start()
            with pytest.raises(ValueError, match="expects input shape"):
                await batcher.submit(np.ones((3, 3)))
            await batcher.stop()

        run_async(scenario())

    def test_invalid_configuration_rejected(self):
        fake = FakeSession()
        with pytest.raises(ValueError):
            DynamicBatcher(fake, max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(fake, max_wait_ms=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(fake, max_queue=0)
        with pytest.raises(TypeError):
            DynamicBatcher(object())


class TestSessionRegistry:
    def test_register_model_compiles_session(self, small_config):
        registry = SessionRegistry()
        session = registry.register("digits", DONN(small_config), dtype="complex64")
        assert isinstance(session, InferenceSession)
        assert session.dtype == np.complex64
        assert registry.get("digits") is session
        assert "digits" in registry and len(registry) == 1

    def test_register_existing_session_as_is(self, small_config):
        registry = SessionRegistry()
        session = DONN(small_config).export_session()
        assert registry.register("digits", session) is session

    def test_duplicate_name_rejected_unless_replace(self, small_config):
        registry = SessionRegistry()
        registry.register("digits", DONN(small_config))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("digits", DONN(small_config))
        registry.register("digits", DONN(small_config), replace=True)

    def test_unknown_name_raises(self):
        registry = SessionRegistry()
        with pytest.raises(UnknownModelError):
            registry.get("missing")
        with pytest.raises(UnknownModelError):
            registry.unregister("missing")

    def test_session_kwargs_rejected_for_ready_sessions(self, small_config):
        registry = SessionRegistry()
        session = DONN(small_config).export_session()
        with pytest.raises(ValueError, match="already a session"):
            registry.register("digits", session, dtype="complex64")

    def test_non_session_rejected(self):
        registry = SessionRegistry()
        with pytest.raises(TypeError):
            registry.register("digits", object())


class TestRegistryLRUEviction:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="max_models"):
            SessionRegistry(max_models=0)

    def test_least_recently_used_is_evicted_first(self):
        registry = SessionRegistry(max_models=2)
        registry.register("a", FakeSession())
        registry.register("b", FakeSession())
        registry.get("a")  # refresh: "b" is now the LRU entry
        registry.register("c", FakeSession())
        assert registry.last_evicted == ("b",)
        assert set(registry.names()) == {"a", "c"}
        with pytest.raises(UnknownModelError):
            registry.get("b")

    def test_registration_counts_as_use(self):
        registry = SessionRegistry(max_models=2)
        registry.register("a", FakeSession())
        registry.register("b", FakeSession())
        registry.register("c", FakeSession())  # evicts "a" (oldest untouched)
        assert registry.last_evicted == ("a",)
        registry.register("d", FakeSession())  # evicts "b"
        assert registry.last_evicted == ("b",)
        assert set(registry.names()) == {"c", "d"}

    def test_replace_never_evicts(self):
        registry = SessionRegistry(max_models=2)
        registry.register("a", FakeSession())
        registry.register("b", FakeSession())
        registry.register("a", FakeSession(), replace=True)
        assert registry.last_evicted == ()
        assert set(registry.names()) == {"a", "b"}

    def test_in_flight_requests_on_evicted_model_complete(self, small_config, rng):
        """Eviction drops the registry reference only: a live batcher keeps
        serving (and finishing) traffic for the evicted model."""
        registry = SessionRegistry(max_models=1)
        server = InferenceServer(registry=registry, max_wait_ms=1.0)
        first = server.add_model("first", DONN(small_config))
        image = rng.uniform(size=small_config.grid.shape)
        expected = first.run(image[None])[0]

        async def scenario():
            async with server:
                pending = asyncio.ensure_future(server.submit("first", image))
                await asyncio.sleep(0)  # in flight before the eviction lands
                server.add_model("second", DONN(small_config))  # evicts "first"
                assert registry.last_evicted == ("first",)
                result = await pending
                # Even brand-new requests still serve: the batcher holds its
                # own session reference.
                again = await server.submit("first", image)
                return result, again

        result, again = asyncio.run(scenario())
        np.testing.assert_allclose(result, expected, atol=1e-10)
        np.testing.assert_allclose(again, expected, atol=1e-10)

    def test_empty_burst_on_evicted_model_uses_live_batcher(self, small_config):
        """submit_many(name, []) must not fail just because the LRU
        registry dropped its reference while the batcher stays live."""
        registry = SessionRegistry(max_models=1)
        server = InferenceServer(registry=registry)
        server.add_model("first", DONN(small_config))

        async def scenario():
            async with server:
                server.add_model("second", DONN(small_config))  # evicts "first"
                return await server.submit_many("first", [])

        empty = asyncio.run(scenario())
        assert empty.shape == (0, small_config.num_classes)

    def test_eviction_prunes_server_bookkeeping_for_idle_names(self, small_config):
        """On a not-started server, an evicted name must not keep growing
        the server's per-model override/policy tables."""
        registry = SessionRegistry(max_models=1)
        server = InferenceServer(registry=registry)
        for index in range(4):
            server.add_model(f"model-{index}", DONN(small_config), max_batch=4)
        assert set(server._overrides) == {"model-3"}
        assert set(server._policies) == {"model-3"}

    def test_reregistering_evicted_live_name_is_refused(self, small_config):
        """A name evicted from the registry but still live on a started
        server must not silently get a second batcher (the first would
        leak); re-registration is refused like any live replace."""
        registry = SessionRegistry(max_models=1)
        server = InferenceServer(registry=registry)
        server.add_model("first", DONN(small_config))

        async def scenario():
            async with server:
                server.add_model("second", DONN(small_config))  # evicts "first"
                with pytest.raises(RuntimeError, match="live model"):
                    server.add_model("first", DONN(small_config))

        asyncio.run(scenario())


class TestInferenceServer:
    def test_multi_tenant_serving_matches_direct_engine_calls(self, small_config, rng):
        """All three model families serve concurrently with correct routing."""
        donn = DONN(small_config, nonlinearity="kerr")
        multi = MultiChannelDONN(small_config)
        seg = SegmentationDONN(small_config.with_updates(num_layers=3))
        images = rng.uniform(0.0, 1.0, size=(6, 32, 32))
        rgb = rng.uniform(0.0, 1.0, size=(6, 3, 32, 32))

        async def scenario():
            server = InferenceServer(max_batch=8, max_wait_ms=50)
            server.add_model("digits", donn)
            server.add_model("rgb", multi)
            server.add_model("scenes", seg)
            async with server:
                digits_out, rgb_out, scenes_out = await asyncio.gather(
                    server.submit_many("digits", images),
                    server.submit_many("rgb", rgb),
                    server.submit_many("scenes", images),
                )
            return digits_out, rgb_out, scenes_out, server

        digits_out, rgb_out, scenes_out, server = run_async(scenario())
        np.testing.assert_allclose(digits_out, donn.export_session().run(images), atol=1e-9)
        np.testing.assert_allclose(rgb_out, multi.export_session().run(rgb), atol=1e-9)
        np.testing.assert_allclose(scenes_out, seg.export_session().run(images), atol=1e-9)
        stats = server.stats()
        assert stats == {}, "stopped server exposes no live batchers"

    def test_server_coalesces_and_reports_stats(self, small_config, rng):
        model = DONN(small_config)
        images = rng.uniform(0.0, 1.0, size=(12, 32, 32))

        async def scenario():
            server = InferenceServer(max_batch=16, max_wait_ms=100)
            server.add_model("digits", model)
            async with server:
                await server.submit_many("digits", images)
                stats = {name: s.as_dict() for name, s in server.stats().items()}
            return stats

        stats = run_async(scenario())
        assert stats["digits"]["completed"] == 12
        assert stats["digits"]["batches"] == 1, "a concurrent burst must fuse into one engine call"
        assert stats["digits"]["largest_batch"] == 12

    def test_unknown_model_raises(self, small_config):
        async def scenario():
            server = InferenceServer()
            server.add_model("digits", DONN(small_config))
            async with server:
                with pytest.raises(UnknownModelError):
                    await server.submit("nope", np.zeros((32, 32)))

        run_async(scenario())

    def test_submit_before_start_and_after_stop_raise(self, small_config):
        async def scenario():
            server = InferenceServer()
            server.add_model("digits", DONN(small_config))
            with pytest.raises(ServerClosedError, match="not started"):
                await server.submit("digits", np.zeros((32, 32)))
            await server.start()
            await server.stop()
            with pytest.raises(ServerClosedError):
                await server.submit("digits", np.zeros((32, 32)))
            with pytest.raises(ServerClosedError):
                await server.start()

        run_async(scenario())

    def test_add_model_while_running(self, small_config, rng):
        images = rng.uniform(0.0, 1.0, size=(3, 32, 32))
        model = DONN(small_config)

        async def scenario():
            server = InferenceServer(max_wait_ms=10)
            async with server:
                server.add_model("late", model)
                return await server.submit_many("late", images)

        out = run_async(scenario())
        np.testing.assert_allclose(out, model.export_session().run(images), atol=1e-9)

    def test_complex64_model_served_within_budget(self, small_config, rng):
        from repro.engine import COMPLEX64_LOGIT_ATOL

        model = DONN(small_config)
        images = rng.uniform(0.0, 1.0, size=(4, 32, 32))

        async def scenario():
            server = InferenceServer(max_wait_ms=10)
            server.add_model("digits64", model, dtype="complex64")
            async with server:
                return await server.submit_many("digits64", images)

        out = run_async(scenario())
        np.testing.assert_allclose(out, model.export_session().run(images), atol=COMPLEX64_LOGIT_ATOL)

    def test_replace_on_live_model_rejected_without_touching_registry(self, small_config, rng):
        """A refused live swap must leave both registry and batcher serving
        the original session."""
        old = DONN(small_config)
        new = DONN(small_config.with_updates(seed=99))
        image = rng.uniform(0.0, 1.0, size=(32, 32))

        async def scenario():
            server = InferenceServer(max_wait_ms=10)
            original_session = server.add_model("digits", old)
            async with server:
                with pytest.raises(RuntimeError, match="stop the server"):
                    server.add_model("digits", new, replace=True)
                assert server.registry.get("digits") is original_session
                served = await server.submit("digits", image)
            return served, original_session

        served, original_session = run_async(scenario())
        np.testing.assert_allclose(served, original_session.run(image), atol=1e-12)

    def test_submit_many_empty_burst_keeps_engine_output_shape(self, small_config):
        async def scenario():
            server = InferenceServer()
            server.add_model("digits", DONN(small_config))
            server.add_model("scenes", SegmentationDONN(small_config.with_updates(num_layers=3)))
            async with server:
                return (
                    await server.submit_many("digits", []),
                    await server.submit_many("scenes", []),
                )

        digits_out, scenes_out = run_async(scenario())
        assert digits_out.shape == (0, 10)
        assert scenes_out.shape == (0, 32, 32)

    def test_stats_expose_latency_percentiles_and_breakdown(self, small_config, rng):
        """The telemetry satellite: server.stats() carries sliding-window
        percentiles and the queue-wait vs compute breakdown."""
        images = rng.uniform(0.0, 1.0, size=(8, 32, 32))

        async def scenario():
            server = InferenceServer(max_batch=16, max_wait_ms=50)
            server.add_model("digits", DONN(small_config))
            async with server:
                await server.submit_many("digits", images)
                return server.stats()["digits"].as_dict()

        stats = run_async(scenario())
        assert stats["completed"] == 8
        assert stats["deadline_missed"] == 0
        assert stats["p50_latency_ms"] > 0.0
        assert stats["p50_latency_ms"] <= stats["p95_latency_ms"] <= stats["p99_latency_ms"]
        # queue wait + compute must account for (almost all of) the latency.
        assert stats["mean_queue_wait_ms"] + stats["mean_compute_ms"] >= 0.5 * stats["p50_latency_ms"]

    def test_server_with_slo_policy_sheds_and_counts_expired_requests(self, small_config, rng):
        """Deadline-missed requests fail with DeadlineExceededError, are
        counted, and never poison later traffic."""
        image = rng.uniform(0.0, 1.0, size=(32, 32))

        async def scenario():
            server = InferenceServer(policy=lambda: SLOAwarePolicy(slo_ms=30.0, max_batch=8))
            server.add_model("digits", DONN(small_config))
            async with server:
                # An impossible per-request budget: expires while queued.
                with pytest.raises(DeadlineExceededError):
                    await server.submit("digits", image, slo_ms=0.0001)
                served = await server.submit("digits", image, slo_ms=5000.0)
                stats = server.stats()["digits"].as_dict()
            return served, stats

        served, stats = run_async(scenario())
        assert served.shape == (10,)
        assert stats["deadline_missed"] == 1
        assert stats["completed"] == 1

    def test_explicit_policy_instance_per_model(self, small_config, rng):
        """add_model(policy=...) pins a policy to one model; window knobs
        still govern policy-less models on the same server."""
        images = rng.uniform(0.0, 1.0, size=(4, 32, 32))

        async def scenario():
            server = InferenceServer(max_batch=2, max_wait_ms=50)
            server.add_model("windowed", DONN(small_config))
            server.add_model("slo", DONN(small_config), policy=FixedWindowPolicy(max_batch=16, max_wait_ms=50))
            async with server:
                await asyncio.gather(
                    server.submit_many("windowed", images),
                    server.submit_many("slo", images),
                )
                return {name: s.as_dict() for name, s in server.stats().items()}

        stats = run_async(scenario())
        assert stats["windowed"]["largest_batch"] <= 2, "server-wide max_batch must bound the default policy"
        assert stats["slo"]["batches"] == 1, "the per-model policy's larger window must fuse the whole burst"

    def test_shape_validation_is_wired_from_the_session(self, small_config):
        async def scenario():
            server = InferenceServer()
            server.add_model("digits", DONN(small_config))
            async with server:
                with pytest.raises(ValueError, match="expects input shape"):
                    await server.submit("digits", np.zeros((16, 16)))

        run_async(scenario())
