"""Tests for the DONN model containers: classifier, multi-channel, segmentation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.codesign import ideal_profile
from repro.models import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN


class TestDONNConfig:
    def test_defaults_follow_prototype(self):
        config = DONNConfig()
        assert config.sys_size == 200
        assert config.wavelength == pytest.approx(532e-9)
        assert config.pixel_size == pytest.approx(36e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DONNConfig(sys_size=0)
        with pytest.raises(ValueError):
            DONNConfig(num_layers=0)
        with pytest.raises(ValueError):
            DONNConfig(distance=-1)
        with pytest.raises(ValueError):
            DONNConfig(wavelength=0)
        with pytest.raises(ValueError):
            DONNConfig(pixel_size=0)

    def test_grid_property(self, small_config):
        assert small_config.grid.size == small_config.sys_size

    def test_unit_size_in_wavelengths(self):
        config = DONNConfig(pixel_size=53.2e-6, wavelength=532e-9)
        assert config.unit_size_in_wavelengths == pytest.approx(100.0)

    def test_with_updates_returns_new_config(self, small_config):
        updated = small_config.with_updates(distance=0.123)
        assert updated.distance == pytest.approx(0.123)
        assert small_config.distance != updated.distance

    def test_dict_roundtrip(self, small_config):
        assert DONNConfig.from_dict(small_config.to_dict()) == small_config


class TestDONN:
    def test_layer_count(self, small_config):
        assert DONN(small_config).num_layers == small_config.num_layers

    def test_forward_logits_shape(self, small_config, tiny_digits):
        images = tiny_digits[0][:4]
        logits = DONN(small_config)(images)
        assert logits.shape == (4, 10)
        assert np.all(logits.data.real >= 0)

    def test_predict_returns_labels(self, small_config, tiny_digits):
        predictions = DONN(small_config).predict(tiny_digits[0][:4])
        assert predictions.shape == (4,)
        assert np.all((predictions >= 0) & (predictions < 10))

    def test_detector_pattern_shape(self, small_config, tiny_digits):
        pattern = DONN(small_config).detector_pattern(tiny_digits[0][:2])
        assert pattern.shape == (2, 32, 32)
        assert np.all(pattern.data >= 0)

    def test_intermediate_fields(self, small_config, tiny_digits):
        fields = DONN(small_config).intermediate_fields(tiny_digits[0][:1])
        assert len(fields) == small_config.num_layers + 1
        assert all(field.is_complex for field in fields)

    def test_phase_patterns(self, small_config):
        patterns = DONN(small_config).phase_patterns()
        assert len(patterns) == small_config.num_layers
        assert patterns[0].shape == small_config.grid.shape

    def test_forward_accepts_precomputed_field(self, small_config, tiny_digits):
        model = DONN(small_config)
        field = model.encode(tiny_digits[0][:2])
        logits_from_field = model(field)
        logits_from_images = model(tiny_digits[0][:2])
        np.testing.assert_allclose(logits_from_field.data, logits_from_images.data, rtol=1e-10)

    def test_deterministic_given_seed(self, small_config, tiny_digits):
        a = DONN(small_config)(tiny_digits[0][:2]).data
        b = DONN(small_config)(tiny_digits[0][:2]).data
        np.testing.assert_allclose(a, b)

    def test_different_seed_different_phases(self, small_config):
        a = DONN(small_config)
        b = DONN(small_config.with_updates(seed=small_config.seed + 1))
        assert not np.allclose(a.phase_patterns()[0], b.phase_patterns()[0])

    def test_codesign_variant_uses_codesign_layers(self, small_config, tiny_digits):
        from repro.layers import CodesignDiffractiveLayer

        model = DONN(small_config, device_profile=ideal_profile(num_levels=8))
        assert all(isinstance(layer, CodesignDiffractiveLayer) for layer in model.diffractive_layers)
        model.eval()
        logits = model(tiny_digits[0][:2])
        assert logits.shape == (2, 10)

    def test_gradients_reach_every_layer(self, small_config, tiny_digits):
        from repro.autograd import functional as F

        model = DONN(small_config)
        logits = model(tiny_digits[0][:2])
        target = Tensor(F.one_hot(tiny_digits[1][:2], 10))
        F.softmax_mse_loss(logits, target).backward()
        for layer in model.diffractive_layers:
            assert layer.phase.grad is not None
            assert np.any(layer.phase.grad != 0)


class TestMultiChannelDONN:
    @pytest.fixture(scope="class")
    def rgb_config(self):
        return DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, wavelength=532e-9, num_layers=2, num_classes=6, det_size=4, seed=0)

    def test_forward_shape(self, rgb_config, rng):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        rgb = rng.uniform(size=(2, 3, 32, 32))
        logits = model(rgb)
        assert logits.shape == (2, 6)

    def test_channel_count_validated(self, rgb_config, rng):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        with pytest.raises(ValueError):
            model(rng.uniform(size=(1, 2, 32, 32)))
        with pytest.raises(ValueError):
            MultiChannelDONN(rgb_config, num_channels=0)

    def test_single_image_without_batch_dim(self, rgb_config, rng):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        logits = model(rng.uniform(size=(3, 32, 32)))
        assert logits.shape == (1, 6)

    def test_channels_have_independent_parameters(self, rgb_config):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        assert len(model.parameters()) == 3 * rgb_config.num_layers

    def test_channels_contribute_additively(self, rgb_config, rng):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        rgb = rng.uniform(size=(1, 3, 32, 32))
        full = model(rgb).data
        # Zeroing one channel must reduce (or keep) every collected intensity.
        partial = rgb.copy()
        partial[:, 0] = 0.0
        reduced = model(partial).data
        assert np.all(reduced <= full + 1e-9)

    def test_phase_patterns_structure(self, rgb_config):
        patterns = MultiChannelDONN(rgb_config, num_channels=3).phase_patterns()
        assert len(patterns) == 3
        assert len(patterns[0]) == rgb_config.num_layers

    def test_predict(self, rgb_config, rng):
        model = MultiChannelDONN(rgb_config, num_channels=3)
        predictions = model.predict(rng.uniform(size=(4, 3, 32, 32)))
        assert predictions.shape == (4,)


class TestSegmentationDONN:
    @pytest.fixture(scope="class")
    def seg_config(self):
        return DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, wavelength=532e-9, num_layers=4, seed=0)

    def test_requires_at_least_three_layers(self):
        config = DONNConfig(sys_size=32, pixel_size=36e-6, distance=0.05, num_layers=2)
        with pytest.raises(ValueError):
            SegmentationDONN(config)

    def test_output_is_full_plane(self, seg_config, tiny_segmentation):
        images, _ = tiny_segmentation
        model = SegmentationDONN(seg_config)
        output = model(images[:2])
        assert output.shape == (2, 32, 32)

    def test_training_mode_normalises_output(self, seg_config, tiny_segmentation):
        images, _ = tiny_segmentation
        model = SegmentationDONN(seg_config, use_layer_norm=True)
        model.train()
        out = model(images[:2]).data
        np.testing.assert_allclose(out.mean(axis=(-2, -1)), 0.0, atol=1e-6)

    def test_eval_mode_returns_raw_intensity(self, seg_config, tiny_segmentation):
        images, _ = tiny_segmentation
        model = SegmentationDONN(seg_config, use_layer_norm=True)
        model.eval()
        out = model(images[:2]).data
        assert np.all(out >= 0)

    def test_predict_mask_binary(self, seg_config, tiny_segmentation):
        images, _ = tiny_segmentation
        mask = SegmentationDONN(seg_config).predict_mask(images[:2])
        assert set(np.unique(mask)).issubset({0.0, 1.0})

    def test_predict_mask_with_threshold(self, seg_config, tiny_segmentation):
        images, _ = tiny_segmentation
        mask = SegmentationDONN(seg_config).predict_mask(images[:1], threshold=1e9)
        assert mask.sum() == 0.0

    def test_baseline_variant_has_no_skip(self, seg_config):
        baseline = SegmentationDONN(seg_config, use_skip=False, use_layer_norm=False)
        advanced = SegmentationDONN(seg_config, use_skip=True)
        assert len(baseline.parameters()) == len(advanced.parameters()) == seg_config.num_layers

    def test_phase_patterns_count(self, seg_config):
        assert len(SegmentationDONN(seg_config).phase_patterns()) == seg_config.num_layers

    def test_gradients_flow_in_training(self, seg_config, tiny_segmentation):
        from repro.autograd import functional as F

        images, masks = tiny_segmentation
        model = SegmentationDONN(seg_config)
        model.train()
        output = model(images[:2])
        target = Tensor((masks[:2] - masks[:2].mean()) / (masks[:2].std() + 1e-6))
        F.mse_loss(output, target).backward()
        assert model.entry_layer.phase.grad is not None
        assert model.exit_layer.phase.grad is not None
