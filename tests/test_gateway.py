"""Tests for the HTTP/JSON gateway (``repro.gateway``) and the transport seam.

Three layers of coverage:

* pure codec/limits units (no sockets),
* live-gateway round trips over loopback -- routes, error statuses,
  backpressure mapping, slo_ms plumb-through -- against fake sessions,
* parity: HTTP responses vs in-process ``compile()`` output at
  ``atol=1e-10``, and ``SocketTransport`` vs ``LocalTransport`` vs
  in-process on one spec.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.cluster import ReplicaGroup, WorkerServer
from repro.cluster.transport import (
    FrameBuffer,
    decode_frame,
    encode_frame,
    parse_address,
)
from repro.engine import compile as engine_compile
from repro.gateway import Gateway, GatewayClient, GatewayError, GatewayLimits
from repro.gateway.codec import ApiError, decode_infer_payload, json_bytes
from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.serve import (
    DeadlineExceededError,
    InferenceServer,
    ServerOverloadedError,
    UnknownModelError,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _tiny_model() -> DONN:
    config = DONNConfig(
        sys_size=16, pixel_size=36e-6, distance=0.05, num_layers=2, num_classes=4, approx="fresnel", seed=3
    )
    return DONN(config)


class FakeSession:
    """Echo session: doubles every payload, remembers fused batch sizes."""

    input_shape = (4, 4)
    kind = "classifier"

    def __init__(self):
        self.batch_sizes = []

    def run(self, batch, batch_size=None):
        batch = np.asarray(batch)
        self.batch_sizes.append(len(batch))
        return batch * 2.0


class BlockingSession:
    """Holds every fused call until released; for backpressure tests."""

    input_shape = (2, 2)

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def run(self, batch, batch_size=None):
        batch = np.asarray(batch)
        if len(batch):
            self.entered.set()
            self.release.wait(10.0)
        return batch * 2.0


async def _raw_request(port: int, payload: bytes):
    """Fire raw bytes at the gateway; returns ``(status, headers, body_dict)``."""
    from repro.gateway.codec import read_response

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        status, headers, body = await asyncio.wait_for(read_response(reader), 10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, headers, json.loads(body.decode("utf-8")) if body else {}


def _http(method: str, path: str, body: bytes = b"", extra_headers: str = "") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(body)}\r\n"
        f"{extra_headers}\r\n"
    ).encode() + body


# ---------------------------------------------------------------------- #
# Units: frame codec, limits, payload decoding
# ---------------------------------------------------------------------- #
class TestFrameCodec:
    def test_round_trip_with_arrays(self):
        batch = np.arange(12.0).reshape(3, 4)
        frame = encode_frame(("run", batch, 7))
        kind, out, seq = decode_frame(frame[8:])
        assert kind == "run" and seq == 7
        np.testing.assert_array_equal(out, batch)

    def test_frame_buffer_reassembles_split_frames(self):
        messages = [("ping", 1), ("ok", 2, np.ones(3), 0.5), ("stop",)]
        blob = b"".join(encode_frame(message) for message in messages)
        buffer = FrameBuffer()
        decoded = []
        # Feed in awkward 7-byte chunks: headers and payloads straddle reads.
        for start in range(0, len(blob), 7):
            buffer.feed(blob[start : start + 7])
            while True:
                message = buffer.next_message()
                if message is None:
                    break
                decoded.append(message)
        assert [message[0] for message in decoded] == ["ping", "ok", "stop"]
        np.testing.assert_array_equal(decoded[1][2], np.ones(3))

    def test_parse_address(self):
        assert parse_address("10.0.0.5:7070") == ("10.0.0.5", 7070)
        assert parse_address(("localhost", 80)) == ("localhost", 80)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestGatewayLimits:
    def test_connection_and_inflight_bounds(self):
        limits = GatewayLimits(max_connections=2, max_inflight=1)
        assert limits.try_open_connection() and limits.try_open_connection()
        assert not limits.try_open_connection()
        limits.close_connection()
        assert limits.try_open_connection()
        assert limits.try_begin_request()
        assert not limits.try_begin_request()
        limits.end_request()
        assert limits.try_begin_request()
        snap = limits.snapshot()
        assert snap["connections_rejected"] == 1 and snap["requests_rejected"] == 1
        assert snap["total_connections"] == 3 and snap["total_requests"] == 2


class TestPayloadCodec:
    def test_single_vs_batch_and_slo(self):
        batch, single, slo = decode_infer_payload(json.dumps({"input": [[1.0, 2.0]]}).encode())
        assert single and batch.shape == (1, 1, 2) and slo is None
        batch, single, slo = decode_infer_payload(
            json.dumps({"inputs": [[[1.0]], [[2.0]]], "slo_ms": 25}).encode()
        )
        assert not single and batch.shape == (2, 1, 1) and slo == 25.0

    @pytest.mark.parametrize(
        "body",
        [
            b"not json at all",
            b"[1, 2, 3]",  # not an object
            json.dumps({}).encode(),  # neither input nor inputs
            json.dumps({"input": [1.0], "inputs": [[1.0]]}).encode(),  # both
            json.dumps({"input": [1.0], "slo": 5}).encode(),  # unknown key
            json.dumps({"input": [1.0], "slo_ms": -3}).encode(),  # bad budget
            json.dumps({"input": [1.0], "slo_ms": "soon"}).encode(),
            json.dumps({"input": ["a", "b"]}).encode(),  # non-numeric
        ],
    )
    def test_malformed_payloads_are_400(self, body):
        with pytest.raises(ApiError) as info:
            decode_infer_payload(body)
        assert info.value.status == 400

    def test_json_bytes_scrubs_non_finite(self):
        blob = json_bytes({"p99": float("nan"), "rate": float("inf"), "x": np.float64(2.5)})
        assert json.loads(blob) == {"p99": None, "rate": None, "x": 2.5}


# ---------------------------------------------------------------------- #
# Live gateway round trips (fake sessions: no spawn, fast)
# ---------------------------------------------------------------------- #
class TestGatewayRoutes:
    def test_health_models_stats_and_infer(self):
        fake = FakeSession()

        async def scenario():
            server = InferenceServer(max_batch=8, max_wait_ms=1.0)
            server.add_model("echo", fake)
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    health = await client.health()
                    models = await client.models()
                    single = await client.infer("echo", np.full((4, 4), 1.5))
                    batch = await client.infer_many("echo", [np.ones((4, 4)), np.zeros((4, 4))])
                    stats = await client.stats()
            return health, models, single, batch, stats

        health, models, single, batch, stats = asyncio.run(scenario())
        assert health["status"] == "ok" and health["models"] == ["echo"]
        assert health["uptime_s"] >= 0.0
        (row,) = models
        assert row["name"] == "echo" and row["input_shape"] == [4, 4]
        assert row["kind"] == "classifier" and row["replicas"] == 1
        np.testing.assert_allclose(single, np.full((4, 4), 3.0))
        assert batch.shape == (2, 4, 4)
        np.testing.assert_allclose(batch[0], np.full((4, 4), 2.0))
        assert stats["models"]["echo"]["completed"] == 3
        assert stats["gateway"]["total_requests"] == 2
        assert stats["gateway"]["open_connections"] >= 1

    def test_unknown_model_is_404_and_remaps(self):
        async def scenario():
            server = InferenceServer()
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                status, _, body = await _raw_request(
                    gateway.port, _http("POST", "/v1/models/nope/infer", json.dumps({"input": [[1.0]]}).encode())
                )
                async with GatewayClient(port=gateway.port) as client:
                    with pytest.raises(UnknownModelError):
                        await client.infer("nope", np.ones((4, 4)))
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 404
        assert body["error"]["type"] == "unknown_model" and body["error"]["status"] == 404

    def test_malformed_json_and_shape_mismatch_are_400(self):
        async def scenario():
            server = InferenceServer(max_wait_ms=1.0)
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                bad_json = await _raw_request(
                    gateway.port, _http("POST", "/v1/models/echo/infer", b"{nope")
                )
                bad_shape = await _raw_request(
                    gateway.port,
                    _http("POST", "/v1/models/echo/infer", json.dumps({"input": [[1.0, 2.0]]}).encode()),
                )
            return bad_json, bad_shape

        (status_json, _, body_json), (status_shape, _, body_shape) = asyncio.run(scenario())
        assert status_json == 400 and body_json["error"]["type"] == "invalid_json"
        assert status_shape == 400 and body_shape["error"]["type"] == "invalid_input"

    def test_oversize_body_413_wrong_method_405_unknown_route_404(self):
        async def scenario():
            server = InferenceServer()
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0, max_body_bytes=256) as gateway:
                big = json.dumps({"input": [[0.0] * 64] * 64}).encode()
                oversize = await _raw_request(
                    gateway.port, _http("POST", "/v1/models/echo/infer", big)
                )
                wrong_method = await _raw_request(gateway.port, _http("POST", "/healthz"))
                missing = await _raw_request(gateway.port, _http("GET", "/v2/nothing"))
                chunked = await _raw_request(
                    gateway.port,
                    b"POST /v1/models/echo/infer HTTP/1.1\r\nHost: t\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n",
                )
            return oversize, wrong_method, missing, chunked

        oversize, wrong_method, missing, chunked = asyncio.run(scenario())
        assert oversize[0] == 413 and oversize[2]["error"]["type"] == "payload_too_large"
        assert wrong_method[0] == 405
        assert missing[0] == 404 and missing[2]["error"]["type"] == "not_found"
        assert chunked[0] == 501

    def test_inflight_limit_maps_to_429_with_retry_after(self):
        blocking = BlockingSession()

        async def scenario():
            loop = asyncio.get_running_loop()
            server = InferenceServer(max_batch=1, max_wait_ms=0.5)
            server.add_model("slow", blocking)
            limits = GatewayLimits(max_inflight=1, retry_after_s=2.0)
            async with Gateway(server, port=0, limits=limits) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    first = asyncio.ensure_future(client.infer("slow", np.ones((2, 2))))
                    # The gateway counts the request in-flight before the
                    # batcher sees it; wait until the session is provably busy.
                    assert await loop.run_in_executor(None, blocking.entered.wait, 5.0)
                    status, headers, body = await _raw_request(
                        gateway.port,
                        _http("POST", "/v1/models/slow/infer", json.dumps({"input": [[1.0, 1.0]] * 1}).encode()),
                    )
                    with pytest.raises(ServerOverloadedError):
                        await client.infer("slow", np.ones((2, 2)))
                    blocking.release.set()
                    result = await first
            return status, headers, body, result

        status, headers, body, result = asyncio.run(scenario())
        assert status == 429
        assert body["error"]["type"] == "overloaded"
        assert int(headers["retry-after"]) >= 2
        np.testing.assert_allclose(result, np.full((2, 2), 2.0))

    def test_slo_ms_plumbs_through_to_504_deadline(self):
        blocking = BlockingSession()

        async def scenario():
            loop = asyncio.get_running_loop()
            server = InferenceServer(max_batch=1, max_wait_ms=0.5)
            server.add_model("slow", blocking)
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    first = asyncio.ensure_future(client.infer("slow", np.ones((2, 2))))
                    assert await loop.run_in_executor(None, blocking.entered.wait, 5.0)
                    # Queued behind a busy worker with a 30 ms budget that
                    # cannot be met: the batcher sheds it at admission.
                    second = asyncio.ensure_future(client.infer("slow", np.ones((2, 2)), slo_ms=30.0))
                    await asyncio.sleep(0.08)
                    blocking.release.set()
                    with pytest.raises(DeadlineExceededError):
                        await second
                    await first
                    # And over the raw wire the same outcome is a 504.
                    blocking.entered.clear()
                    blocking.release.clear()
                    third = asyncio.ensure_future(client.infer("slow", np.ones((2, 2))))
                    assert await loop.run_in_executor(None, blocking.entered.wait, 5.0)
                    raw = asyncio.ensure_future(
                        _raw_request(
                            gateway.port,
                            _http(
                                "POST",
                                "/v1/models/slow/infer",
                                json.dumps({"input": [[1.0, 1.0], [1.0, 1.0]], "slo_ms": 30}).encode(),
                            ),
                        )
                    )
                    await asyncio.sleep(0.08)
                    blocking.release.set()
                    status, _, body = await raw
                    await third
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 504
        assert body["error"]["type"] == "deadline_exceeded"

    def test_client_raises_gateway_error_for_unmapped_types(self):
        """A 404 route miss has no serve-layer twin: GatewayError carries it."""

        async def scenario():
            server = InferenceServer()
            server.add_model("echo", FakeSession())
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    status, _, body = await client._request("GET", "/v2/nothing")
                    with pytest.raises(GatewayError) as info:
                        client._raise_for_error(status, body)
            return info.value

        error = asyncio.run(scenario())
        assert error.status == 404 and error.error_type == "not_found"


# ---------------------------------------------------------------------- #
# Parity: HTTP vs compile(), socket vs local transport
# ---------------------------------------------------------------------- #
class TestParity:
    def test_http_logits_match_compile_output(self):
        model = _tiny_model()
        session = engine_compile(model, backend="numpy")
        rng = np.random.default_rng(11)
        images = rng.random((5, 16, 16))
        reference = session.run(images)

        async def scenario():
            server = InferenceServer(max_batch=8, max_wait_ms=1.0)
            # Register the *same compiled session*: the HTTP path must add
            # nothing but JSON round-trips, which are exact for doubles.
            server.add_model("digits", session)
            async with Gateway(server, port=0) as gateway:
                async with GatewayClient(port=gateway.port) as client:
                    single = await client.infer("digits", images[0])
                    batch = await client.infer_many("digits", images)
            return single, batch

        single, batch = asyncio.run(scenario())
        np.testing.assert_allclose(single, reference[0], atol=1e-10)
        np.testing.assert_allclose(batch, reference, atol=1e-10)

    def test_socket_transport_matches_local_and_in_process(self):
        spec = engine_compile(_tiny_model(), backend="numpy").to_spec()
        session = spec.build()
        rng = np.random.default_rng(5)
        images = rng.random((6, 16, 16))
        reference = session.run(images)

        with WorkerServer(port=0) as worker:
            worker.serve_in_thread()
            with ReplicaGroup(spec, replicas=0, workers=[worker.address], name="remote") as remote:
                over_socket = remote.infer_sync(images)
                stats = remote.stats()[0]
        assert stats["transport"].startswith("socket(")
        with ReplicaGroup(spec, replicas=1, name="local") as local:
            over_pipe = local.infer_sync(images)

        np.testing.assert_allclose(over_socket, reference, atol=1e-12)
        np.testing.assert_allclose(over_pipe, reference, atol=1e-12)

    def test_group_rejects_empty_fleet(self):
        spec = engine_compile(_tiny_model(), backend="numpy").to_spec()
        with pytest.raises(ValueError):
            ReplicaGroup(spec, replicas=0)
