"""Property-based tests for the engine's plan IR and optimization passes.

The fused program (``repro.engine.compile(model, optimize="full")``) must
be *indistinguishable* from the unoptimized one (``optimize="none"``) on
every model family, depth, nonlinearity and dtype -- a plan rewrite that
moves a logit is a miscompilation, not an optimization.  Hypothesis
searches that space.  Parity is asserted at ``1e-10`` for ``complex128``;
``complex64`` programs compare at the engine's documented
:data:`~repro.engine.COMPLEX64_LOGIT_ATOL` budget (float32 arithmetic
cannot express a 1e-10 bound).

Also covered: the collapse guarantee (a nonlinearity-free classifier
plan folds to a single precomputed input→detector operator, asserted via
``plan_summary()``), the local rewrites on a zero-phase cascade, the
transpose rules behind the adjoint operator build, the operator budget
gate, ``refresh()`` as a re-compile, and the deprecation shims.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN
from repro.engine import COMPLEX64_LOGIT_ATOL, InferenceSession, compile as engine_compile
from repro.engine.backends import get_fft_backend
from repro.engine.plan import Encode, Intensity, count_ops, emit_ops, lower
from repro.engine.passes import optimize_plan, transpose_linear_ops

settings.register_profile(
    "repro-plan",
    max_examples=int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "20")),
    deadline=None,
    derandomize=bool(os.environ.get("DERANDOMIZE_CI")),
)
settings.load_profile("repro-plan")

PARITY_ATOL = 1e-10

_SYS_SIZES = (12, 16)
_FAMILIES = ("donn", "multichannel", "segmentation")
_NONLINEARITIES = (None, "saturable", "kerr")
_DEPTHS = (3, 4, 5)

_cache: dict = {}


def _config(sys_size: int, num_layers: int = 3, **overrides) -> DONNConfig:
    base = dict(
        sys_size=sys_size,
        pixel_size=36e-6,
        distance=0.05,
        wavelength=532e-9,
        num_layers=num_layers,
        num_classes=4,
        det_size=3,
        seed=11,
    )
    base.update(overrides)
    return DONNConfig(**base)


def _model(family: str, sys_size: int, num_layers: int, nonlinearity):
    key = ("model", family, sys_size, num_layers, nonlinearity)
    if key not in _cache:
        config = _config(sys_size, num_layers)
        if family == "donn":
            _cache[key] = DONN(config, nonlinearity=nonlinearity)
        elif family == "multichannel":
            _cache[key] = MultiChannelDONN(config, nonlinearity=nonlinearity)
        else:
            _cache[key] = SegmentationDONN(config, nonlinearity=nonlinearity)
    return _cache[key]


def _session(family: str, sys_size: int, num_layers: int, nonlinearity, optimize: str, dtype: str):
    key = ("session", family, sys_size, num_layers, nonlinearity, optimize, dtype)
    if key not in _cache:
        model = _model(family, sys_size, num_layers, nonlinearity)
        _cache[key] = engine_compile(model, optimize=optimize, dtype=dtype)
    return _cache[key]


def _images(family: str, sys_size: int, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if family == "multichannel":
        return rng.uniform(0.0, 1.0, size=(batch, 3, sys_size, sys_size))
    return rng.uniform(0.0, 1.0, size=(batch, sys_size, sys_size))


def _zero_phase_donn(sys_size: int = 12, num_layers: int = 4) -> DONN:
    """A cascade whose modulations are exactly one (e^{j0}): every
    inter-layer IFFT/FFT pair is then an identity the passes must fold."""
    model = DONN(_config(sys_size, num_layers))
    for layer in model.diffractive_layers:
        layer.phase.data = np.zeros_like(layer.phase.data)
    return model


# --------------------------------------------------------------------- #
# Fused vs unfused parity (the core property)
# --------------------------------------------------------------------- #
class TestFusedUnfusedParity:
    @given(
        family=st.sampled_from(_FAMILIES),
        sys_size=st.sampled_from(_SYS_SIZES),
        num_layers=st.sampled_from(_DEPTHS),
        nonlinearity=st.sampled_from(_NONLINEARITIES),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_complex128_parity_at_1e10(self, family, sys_size, num_layers, nonlinearity, batch, seed):
        fused = _session(family, sys_size, num_layers, nonlinearity, "full", "complex128")
        unfused = _session(family, sys_size, num_layers, nonlinearity, "none", "complex128")
        images = _images(family, sys_size, batch, seed)
        np.testing.assert_allclose(fused.run(images), unfused.run(images), atol=PARITY_ATOL)

    @given(
        family=st.sampled_from(_FAMILIES),
        num_layers=st.sampled_from(_DEPTHS),
        nonlinearity=st.sampled_from(_NONLINEARITIES),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_complex64_parity_within_engine_budget(self, family, num_layers, nonlinearity, batch, seed):
        """float32 programs compare at the engine's documented budget --
        a 1e-10 bound is not expressible in complex64 arithmetic."""
        fused = _session(family, 16, num_layers, nonlinearity, "full", "complex64")
        unfused = _session(family, 16, num_layers, nonlinearity, "none", "complex64")
        images = _images(family, 16, batch, seed)
        fused_out = fused.run(images)
        assert fused_out.dtype == np.float32
        np.testing.assert_allclose(fused_out, unfused.run(images), atol=COMPLEX64_LOGIT_ATOL)

    @given(
        approx=st.sampled_from(("fraunhofer", "fresnel")),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_other_approximations_keep_parity(self, approx, batch, seed):
        key = ("approx", approx)
        if key not in _cache:
            model = DONN(_config(16, 3, approx=approx))
            _cache[key] = (
                engine_compile(model, optimize="full"),
                engine_compile(model, optimize="none"),
            )
        fused, unfused = _cache[key]
        images = _images("donn", 16, batch, seed)
        np.testing.assert_allclose(fused.run(images), unfused.run(images), atol=PARITY_ATOL)

    @given(batch=st.integers(min_value=1, max_value=4), seed=st.integers(min_value=0, max_value=2**16))
    def test_padded_propagation_keeps_parity(self, batch, seed):
        """pad_factor=2 exercises the pad/crop transpose rules in the
        adjoint operator build."""
        key = ("padded",)
        if key not in _cache:
            model = DONN(_config(12, 3, pad_factor=2))
            _cache[key] = (
                engine_compile(model, optimize="full"),
                engine_compile(model, optimize="none"),
            )
        fused, unfused = _cache[key]
        assert fused.plan_summary()["collapsed"]
        images = _images("donn", 12, batch, seed)
        np.testing.assert_allclose(fused.run(images), unfused.run(images), atol=PARITY_ATOL)


# --------------------------------------------------------------------- #
# The collapse guarantee and the local rewrites
# --------------------------------------------------------------------- #
class TestPlanOptimization:
    def test_linear_classifier_collapses_to_single_operator(self):
        """Acceptance: a nonlinearity-free model's plan collapses to one
        precomputed input->detector operator (via plan_summary())."""
        session = _session("donn", 16, 4, None, "full", "complex128")
        summary = session.plan_summary()
        assert summary["collapsed"]
        assert summary["fft_ops_after"] == 0
        assert summary["ops_after"] == {"Encode": 1, "DetectorOperator": 1, "ReadIntensity": 1}
        assert summary["fft_ops_before"] == 2 * (4 + 1)  # FFT+IFFT per propagator
        assert "collapse_cascade" in summary["passes"]

    def test_multichannel_collapses_per_branch(self):
        session = _session("multichannel", 12, 3, None, "full", "complex128")
        summary = session.plan_summary()
        assert summary["collapsed"]
        assert summary["ops_after"]["DetectorOperator"] == 3
        assert summary["fft_ops_after"] == 0

    def test_nonlinear_model_does_not_collapse(self):
        session = _session("donn", 12, 3, "saturable", "full", "complex128")
        summary = session.plan_summary()
        assert not summary["collapsed"]
        assert summary["ops_after"]["Nonlinear"] == 3
        assert summary["fft_ops_after"] == summary["fft_ops_before"]

    def test_segmentation_never_collapses(self):
        """The whole output plane is the answer: a dense operator would be
        a pessimization, so the collapse is gated to classifiers."""
        session = _session("segmentation", 12, 3, None, "full", "complex128")
        assert not session.plan_summary()["collapsed"]

    def test_zero_phase_cascade_folds_to_one_transform_pair(self):
        """Dead-kernel elimination exposes IFFT/FFT identity pairs, which
        cancel, and the surviving transfer functions fuse into one
        product: FFT -> PointwiseMul -> IFFT, whatever the depth."""
        model = _zero_phase_donn(num_layers=4)
        session = engine_compile(model, optimize="fuse")
        summary = session.plan_summary()
        assert summary["fft_ops_before"] == 10
        assert summary["fft_ops_after"] == 2
        assert summary["ops_after"]["PointwiseMul"] == 1
        for rewrite in ("eliminate_dead_kernels", "cancel_transform_pairs", "fuse_pointwise"):
            assert rewrite in summary["passes"]
        images = _images("donn", 12, 3, 7)
        reference = engine_compile(model, optimize="none").run(images)
        np.testing.assert_allclose(session.run(images), reference, atol=PARITY_ATOL)

    def test_operator_budget_gates_collapse(self):
        model = _model("donn", 12, 3, None)
        gated = engine_compile(model, max_operator_bytes=1)
        assert not gated.plan_summary()["collapsed"]
        reference = engine_compile(model, optimize="none")
        images = _images("donn", 12, 2, 3)
        np.testing.assert_allclose(gated.run(images), reference.run(images), atol=PARITY_ATOL)

    def test_transposed_chain_computes_operator_rows(self):
        """The adjoint build's core identity: pushing a one-hot output
        field through the transposed linear chain yields the matching row
        of the forward operator -- forward(x)[p] == row_p . x."""
        model = _model("donn", 12, 2, None)
        plan = lower(model, "complex128")
        ops = plan.branches[0].ops
        assert isinstance(ops[0], Encode) and isinstance(ops[-1], Intensity)
        linear = ops[1:-1]
        fft = get_fft_backend("numpy")
        forward = emit_ops(linear, fft, plan.cdtype)
        size = plan.grid.size
        rng = np.random.default_rng(5)
        x = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
        out = forward(x.astype(plan.cdtype))
        transposed = transpose_linear_ops(linear)
        for flat_index in (0, 37, size * size - 1):
            basis = np.zeros((size, size), dtype=plan.cdtype)
            basis[flat_index // size, flat_index % size] = 1.0
            row = emit_ops(transposed, fft, plan.cdtype)(basis)
            np.testing.assert_allclose(
                np.sum(row * x), out.reshape(-1)[flat_index], atol=1e-12
            )

    def test_optimize_levels_are_validated(self):
        model = _model("donn", 12, 3, None)
        with pytest.raises(ValueError, match="optimize"):
            engine_compile(model, optimize="aggressive")
        with pytest.raises(ValueError, match="optimize"):
            optimize_plan(lower(model, "complex128"), "aggressive")

    def test_optimize_none_leaves_plan_untouched(self):
        session = _session("donn", 12, 3, None, "none", "complex128")
        summary = session.plan_summary()
        assert summary["passes"] == [] and not summary["collapsed"]
        assert summary["ops_before"] == summary["ops_after"]
        assert count_ops(session.plan) == count_ops(session.unoptimized_plan)


# --------------------------------------------------------------------- #
# Collapsed sessions keep the full session surface
# --------------------------------------------------------------------- #
class TestCollapsedSessionSurface:
    def test_intensity_patterns_still_full_plane(self):
        """The collapsed program only computes the read-out pixels; the
        camera view must still be the whole detector plane."""
        model = _model("donn", 16, 3, None)
        fused = engine_compile(model, optimize="full")
        unfused = engine_compile(model, optimize="none")
        images = _images("donn", 16, 3, 1)
        patterns = fused.intensity_patterns(images)
        assert patterns.shape == (3, 16, 16)
        np.testing.assert_allclose(patterns, unfused.intensity_patterns(images), atol=PARITY_ATOL)
        np.testing.assert_allclose(
            fused.read_detector(patterns), fused.run(images), atol=PARITY_ATOL
        )

    def test_spec_round_trip_preserves_optimize_level(self):
        model = _model("donn", 12, 3, None)
        for level in ("full", "none"):
            session = engine_compile(model, optimize=level)
            spec = session.to_spec()
            assert spec.optimize == level
            rebuilt = spec.build()
            assert rebuilt.optimize == level
            assert rebuilt.plan_summary()["collapsed"] == (level == "full")
            images = _images("donn", 12, 2, 9)
            np.testing.assert_allclose(rebuilt.run(images), session.run(images), atol=PARITY_ATOL)

    def test_spec_pickle_smaller_than_session_kernels(self):
        """Propagators rebuild their cached kernels on unpickle, so the
        spec blob must not pay for them."""
        model = _model("donn", 16, 4, None)
        spec = engine_compile(model).to_spec()
        blob = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        kernel_bytes = 5 * (16 * 16) * 16  # 5 complex128 transfer functions
        parameter_bytes = sum(p.data.nbytes for p in model.parameters())
        assert len(blob) < parameter_bytes + kernel_bytes


# --------------------------------------------------------------------- #
# refresh() as re-compile, deprecation shims
# --------------------------------------------------------------------- #
class TestRefreshRecompiles:
    def test_refresh_picks_up_retrained_weights(self, rng):
        """Regression for the satellite: refresh re-runs the full
        compile pipeline, so a collapsed operator is rebuilt from the new
        weights (not patched from stale cached arrays)."""
        model = DONN(_config(12, 3))
        session = engine_compile(model)
        images = _images("donn", 12, 3, 13)
        stale = session.run(images)
        for parameter in model.parameters():
            # Non-uniform perturbation: a constant phase offset is a
            # global phase factor, invisible to detector intensity.
            parameter.data = parameter.data + rng.uniform(0.0, 1.0, size=parameter.data.shape)
        assert np.abs(session.run(images) - stale).max() < PARITY_ATOL  # still the snapshot
        session.refresh()
        reference = engine_compile(model, optimize="none").run(images)
        refreshed = session.run(images)
        assert session.plan_summary()["collapsed"]
        np.testing.assert_allclose(refreshed, reference, atol=PARITY_ATOL)
        assert np.abs(refreshed - stale).max() > 1e-6

    def test_refresh_returns_self(self):
        session = engine_compile(DONN(_config(12, 3)))
        assert session.refresh() is session


class TestDeprecatedEntryPoints:
    def test_direct_constructor_warns_and_matches_compile(self):
        model = _model("donn", 12, 3, None)
        with pytest.warns(DeprecationWarning, match="repro.engine.compile"):
            legacy = InferenceSession(model)
        images = _images("donn", 12, 2, 21)
        np.testing.assert_allclose(
            legacy.run(images), engine_compile(model).run(images), atol=PARITY_ATOL
        )

    def test_export_session_warns_and_matches_compile(self):
        for family in _FAMILIES:
            model = _model(family, 12, 3, None)
            with pytest.warns(DeprecationWarning, match="repro.engine.compile"):
                legacy = model.export_session()
            images = _images(family, 12, 2, 22)
            np.testing.assert_allclose(
                legacy.run(images), engine_compile(model).run(images), atol=PARITY_ATOL
            )

    def test_compile_rejects_unsupported_models(self):
        with pytest.raises(TypeError, match="cannot compile"):
            engine_compile(object())
