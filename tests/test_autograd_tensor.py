"""Tests for the core Tensor type: arithmetic, shapes, reductions, autograd."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled, tensor, check_gradients


class Testconstruction:
    def test_from_list_promotes_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_from_complex_list(self):
        t = Tensor([1 + 1j, 2.0])
        assert t.is_complex

    def test_float32_promoted_to_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float64

    def test_complex64_promoted_to_complex128(self):
        t = Tensor(np.zeros(3, dtype=np.complex64))
        assert t.dtype == np.complex128

    def test_bool_promoted_to_float(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.float64

    def test_tensor_helper(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_numpy_returns_underlying_array(self):
        data = np.arange(3.0)
        t = Tensor(data)
        assert np.shares_memory(t.numpy(), t.data)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar_right_and_left(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((t + 1).data, [2.0, 3.0])
        np.testing.assert_allclose((1 + t).data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((t - 1).data, [0.0, 1.0])
        np.testing.assert_allclose((5 - t).data, [4.0, 3.0])

    def test_mul_and_div(self):
        t = Tensor([2.0, 4.0])
        np.testing.assert_allclose((t * 3).data, [6.0, 12.0])
        np.testing.assert_allclose((t / 2).data, [1.0, 2.0])
        np.testing.assert_allclose((8 / t).data, [4.0, 2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_matmul_values(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])

    def test_rmatmul_with_ndarray(self):
        a = np.eye(2)
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        out = a @ b
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, b.data)

    def test_comparisons_return_numpy(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert (t > 1.5).tolist() == [False, True, True]
        assert (t <= 2.0).tolist() == [True, True, False]
        assert (t < 2.0).tolist() == [True, False, False]
        assert (t >= 3.0).tolist() == [False, False, True]


class TestAutogradBasics:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_broadcast_backward_sums_over_broadcast_axes(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_scalar_broadcast_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad == pytest.approx(4.0)

    def test_grad_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        out = a * 2 + a * 3
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_requires_scalar_without_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [2.0, 20.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).sum().backward()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        out = (a * 2).detach() * 3
        assert not out.requires_grad

    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_gradient(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3
        c = a * 4
        (b * c).backward()  # d/da (12 a^2) = 24a = 48
        assert a.grad == pytest.approx(48.0)


class TestShapes:
    def test_reshape_and_flatten(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.reshape((6,)).shape == (6,)
        assert t.flatten().shape == (6,)

    def test_reshape_backward(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        (t.reshape(2, 3) * 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(6, 2.0))

    def test_transpose_default_and_axes(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4))
        assert t.T.shape == (4, 3, 2)
        assert t.transpose(0, 2, 1).shape == (2, 4, 3)

    def test_transpose_backward(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        weights = np.arange(6.0).reshape(3, 2)
        (t.transpose() * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(t.grad, weights.T)

    def test_getitem_forward_and_backward(self):
        t = Tensor(np.arange(9.0).reshape(3, 3), requires_grad=True)
        picked = t[1]
        np.testing.assert_allclose(picked.data, [3.0, 4.0, 5.0])
        picked.sum().backward()
        expected = np.zeros((3, 3))
        expected[1] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_fancy_index_backward_accumulates(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_negative_step_slice_backward(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        (t[::-1] * Tensor(np.array([1.0, 2.0, 3.0, 4.0]))).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 3.0, 2.0, 1.0])


class TestReductions:
    def test_sum_axis_and_keepdims(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(t.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_sum_backward_with_axis(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        (t.sum(axis=1) * Tensor(np.array([2.0, 3.0]))).sum().backward()
        np.testing.assert_allclose(t.grad, [[2.0] * 3, [3.0] * 3])

    def test_mean(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(t.mean(axis=1).data, [1.0, 4.0])

    def test_max_forward(self):
        t = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]))
        assert t.max().item() == 7.0
        np.testing.assert_allclose(t.max(axis=0).data, [7.0, 5.0])

    def test_max_backward_routes_to_argmax(self):
        t = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_max_backward_ties_split_gradient(self):
        t = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])


class TestElementwiseMath:
    def test_exp_log_roundtrip(self):
        t = Tensor([0.5, 1.5])
        np.testing.assert_allclose(t.exp().log().data, t.data)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_trig(self):
        t = Tensor([0.0, np.pi / 2])
        np.testing.assert_allclose(t.sin().data, [0.0, 1.0], atol=1e-12)
        np.testing.assert_allclose(t.cos().data, [1.0, 0.0], atol=1e-12)

    def test_tanh_range(self):
        out = Tensor(np.linspace(-5, 5, 11)).tanh().data
        assert np.all(np.abs(out) <= 1.0)

    def test_clip_values_and_gradient_masking(self):
        t = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        clipped = t.clip(0.0, 1.0)
        np.testing.assert_allclose(clipped.data, [0.0, 0.5, 1.0])
        clipped.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_gradcheck_scalar_chain(self, rng):
        x = Tensor(rng.uniform(0.5, 1.5, size=(3, 3)), requires_grad=True)
        assert check_gradients(lambda x: (x.exp() * x.log() + x.sqrt()).sum(), [x])

    def test_gradcheck_trig_chain(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert check_gradients(lambda x: (x.sin() * x.cos() + x.tanh()).sum(), [x])

    def test_gradcheck_division(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        b = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        assert check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_gradcheck_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        assert check_gradients(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_gradcheck_pow_negative_exponent(self, rng):
        x = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        assert check_gradients(lambda x: (x**-1.5).sum(), [x])
