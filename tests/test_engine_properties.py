"""Property-based tests (hypothesis) for the inference engine.

Engine/autograd parity must hold for *any* input shape, batch size and
chunk size, not just the handful pinned in ``tests/test_engine.py`` --
hypothesis searches that space.  CI sets ``DERANDOMIZE_CI=1`` which loads
a derandomized settings profile (the tinygrad idiom), so the suite is
reproducible run to run there while still exploring locally.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN
from repro.autograd import no_grad
from repro.engine import COMPLEX64_LOGIT_ATOL

settings.register_profile(
    "repro",
    max_examples=int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "20")),
    deadline=None,
    derandomize=bool(os.environ.get("DERANDOMIZE_CI")),
)
settings.load_profile("repro")

PARITY_ATOL = 1e-10
# Different chunkings batch the FFTs differently, which moves the last
# couple of float64 bits; anything above that is a real streaming bug.
CHUNKING_ATOL = 1e-12

_SYS_SIZES = (12, 16)
_FAMILIES = ("donn", "multichannel", "segmentation")
_NONLINEARITIES = (None, "saturable", "kerr")

_cache: dict = {}


def _config(sys_size: int) -> DONNConfig:
    return DONNConfig(
        sys_size=sys_size,
        pixel_size=36e-6,
        distance=0.05,
        wavelength=532e-9,
        num_layers=3,
        num_classes=4,
        det_size=3,
        seed=11,
    )


def _build(family: str, sys_size: int, nonlinearity):
    if family == "donn":
        return DONN(_config(sys_size), nonlinearity=nonlinearity)
    if family == "multichannel":
        return MultiChannelDONN(_config(sys_size), nonlinearity=nonlinearity)
    return SegmentationDONN(_config(sys_size), nonlinearity=nonlinearity)


def _model_and_session(family: str, sys_size: int, nonlinearity=None, dtype="complex128"):
    """Models/sessions are deterministic given the key; cache across examples."""
    key = (family, sys_size, nonlinearity, dtype)
    if key not in _cache:
        model_key = (family, sys_size, nonlinearity)
        if model_key not in _cache:
            _cache[model_key] = _build(family, sys_size, nonlinearity)
        _cache[key] = _cache[model_key].export_session(dtype=dtype)
    return _cache[(family, sys_size, nonlinearity)], _cache[key]


def _images(family: str, sys_size: int, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if family == "multichannel":
        return rng.uniform(0.0, 1.0, size=(batch, 3, sys_size, sys_size))
    return rng.uniform(0.0, 1.0, size=(batch, sys_size, sys_size))


def _graph_eval(model, inputs) -> np.ndarray:
    was_training = model.training
    model.eval()
    with no_grad():
        out = np.asarray(model(inputs).data.real)
    model.train(was_training)
    return out


class TestEngineAutogradParity:
    @given(
        family=st.sampled_from(_FAMILIES),
        sys_size=st.sampled_from(_SYS_SIZES),
        batch=st.integers(min_value=1, max_value=7),
        chunk=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_parity_under_random_shapes_and_chunking(self, family, sys_size, batch, chunk, seed):
        """session.run == autograd eval for any batch/chunk combination."""
        model, session = _model_and_session(family, sys_size)
        images = _images(family, sys_size, batch, seed)
        engine = session.run(images, batch_size=chunk)
        np.testing.assert_allclose(engine, _graph_eval(model, images), atol=PARITY_ATOL)

    @given(
        nonlinearity=st.sampled_from(_NONLINEARITIES),
        batch=st.integers(min_value=1, max_value=5),
        chunk=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_nonlinear_models_keep_parity(self, nonlinearity, batch, chunk, seed):
        """NonlinearLayer compilation must not break engine/autograd parity."""
        model, session = _model_and_session("donn", 16, nonlinearity)
        images = _images("donn", 16, batch, seed)
        engine = session.run(images, batch_size=chunk)
        np.testing.assert_allclose(engine, _graph_eval(model, images), atol=PARITY_ATOL)


class TestStreamingProperties:
    @given(
        family=st.sampled_from(_FAMILIES),
        batch=st.integers(min_value=1, max_value=9),
        chunk_a=st.integers(min_value=1, max_value=12),
        chunk_b=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_chunking_is_invariant(self, family, batch, chunk_a, chunk_b, seed):
        """Any two chunk sizes -- including chunks larger than the batch --
        stream to the same result."""
        _, session = _model_and_session(family, 12)
        images = _images(family, 12, batch, seed)
        a = session.run(images, batch_size=chunk_a)
        b = session.run(images, batch_size=chunk_b)
        np.testing.assert_allclose(a, b, rtol=0.0, atol=CHUNKING_ATOL)

    @given(
        batch=st.integers(min_value=1, max_value=6),
        chunk=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_predictions_match_model_for_any_chunking(self, batch, chunk, seed):
        model, session = _model_and_session("donn", 12)
        images = _images("donn", 12, batch, seed)
        np.testing.assert_array_equal(session.predict(images, batch_size=chunk), model.predict(images))


class TestReducedPrecisionProperties:
    @given(
        family=st.sampled_from(_FAMILIES),
        batch=st.integers(min_value=1, max_value=4),
        chunk=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_complex64_within_documented_budget(self, family, batch, chunk, seed):
        """complex64 logits/intensities stay within COMPLEX64_LOGIT_ATOL of
        the float64 engine for every model family."""
        _, exact = _model_and_session(family, 16)
        _, reduced = _model_and_session(family, 16, dtype="complex64")
        images = _images(family, 16, batch, seed)
        full = exact.run(images, batch_size=chunk)
        half = reduced.run(images, batch_size=chunk)
        assert half.dtype == np.float32
        np.testing.assert_allclose(half, full, atol=COMPLEX64_LOGIT_ATOL)
