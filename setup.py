"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 wheel support
(``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
