"""All-optical image segmentation with optical skip connections (Section 5.6.2, Figure 13).

Trains the advanced segmentation DONN (optical skip connection + training
time layer normalisation) and the paper's baseline architecture (no skip,
no norm) on synthetic street scenes with building/background masks, then
compares IoU and shows one predicted mask as ASCII art.

Run with::

    python examples/all_optical_segmentation.py
"""

from __future__ import annotations


from repro import DONNConfig, SegmentationDONN, SegmentationTrainer, load_segmentation_scenes
from repro.train import intersection_over_union
from repro.utils import ascii_heatmap, format_table


def train_and_score(model, train_images, train_masks, test_images, test_masks, epochs=6) -> float:
    trainer = SegmentationTrainer(model, learning_rate=0.2, batch_size=8, seed=0)
    trainer.fit(train_images, train_masks, epochs=epochs)
    predicted = model.predict_mask(test_images)
    return intersection_over_union(predicted, test_masks)


def main() -> None:
    images, masks = load_segmentation_scenes(num_samples=96, size=48, seed=0)
    train_images, train_masks = images[:80], masks[:80]
    test_images, test_masks = images[80:], masks[80:]

    config = DONNConfig(
        sys_size=48,
        pixel_size=36e-6,
        distance=0.08,
        wavelength=532e-9,
        num_layers=5,
        amplitude_factor=0.9,
        seed=0,
    )

    advanced = SegmentationDONN(config, use_skip=True, use_layer_norm=True)
    baseline = SegmentationDONN(config, use_skip=False, use_layer_norm=False)

    advanced_iou = train_and_score(advanced, train_images, train_masks, test_images, test_masks)
    baseline_iou = train_and_score(baseline, train_images, train_masks, test_images, test_masks)

    print("segmentation quality on held-out scenes (cf. Figure 13b):")
    print(format_table([
        {"model": "skip connection + layer norm (ours)", "IoU": advanced_iou},
        {"model": "baseline (no skip, no norm)", "IoU": baseline_iou},
    ]))

    sample = test_images[:1]
    predicted_mask = advanced.predict_mask(sample)[0]
    print("\ninput scene:")
    print(ascii_heatmap(sample[0], width=48, height=20))
    print("\nground-truth building mask:")
    print(ascii_heatmap(test_masks[0], width=48, height=20))
    print("\nall-optical predicted mask:")
    print(ascii_heatmap(predicted_mask, width=48, height=20))


if __name__ == "__main__":
    main()
