"""End-to-end agile design flow: DSE -> codesign training -> deployment (Figure 3).

This example drives the five automated stages of the LightRidge design
flow for a visible-range SLM system:

1. analytical DSE picks the diffraction distance / unit size for 532 nm,
2. the raw (continuous-phase, regularized) model is trained,
3. codesign training continues over the SLM's measured discrete levels
   (Gumbel-Softmax quantisation-aware training, Section 3.2),
4. SLM voltage maps are dumped for "fabrication",
5. the model is validated on the emulated physical hardware (discrete
   levels + fabrication variation + CMOS camera noise), reporting the
   out-of-box deployment accuracy and the simulation/hardware pattern
   correlation -- the Figure 1 / Figure 6 story.

Run with::

    python examples/design_flow_codesign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DONNConfig, load_digits
from repro.codesign import slm_profile
from repro.dsl import DesignFlow


def main() -> None:
    train_x, train_y, test_x, test_y = load_digits(num_train=300, num_test=80, size=64, seed=2)

    base_config = DONNConfig(
        sys_size=64,
        pixel_size=36e-6,
        distance=0.3,
        wavelength=532e-9,
        num_layers=3,
        num_classes=10,
        det_size=8,
        seed=0,
    )
    device = slm_profile(num_levels=64, seed=5)  # a measured-style LC2012 calibration

    flow = DesignFlow(base_config=base_config, device_profile=device, run_dse=True, seed=0)
    with tempfile.TemporaryDirectory() as fabrication_dir:
        result = flow.run(
            train_x,
            train_y,
            test_x,
            test_y,
            raw_epochs=5,
            codesign_epochs=3,
            learning_rate=0.5,
            batch_size=50,
            fabrication_dir=Path(fabrication_dir),
            codesign=True,
            validate_deployment=True,
        )

        print("== stage 1: DSE ==")
        best = result.dse_result.best_point
        print(f"  chosen unit size {best.unit_size * 1e6:.1f} um, distance {best.distance:.3f} m "
              f"(predicted accuracy {best.accuracy:.2f}); "
              f"{result.dse_result.emulation_iterations} emulation runs instead of "
              f"{result.dse_result.grid_size} grid points "
              f"({result.dse_result.speedup_vs_grid_search:.0f}x fewer)")

        print("== stage 2: raw training ==")
        print(f"  test accuracy per epoch: {[round(a, 3) for a in result.raw_training.test_accuracies]}")

        print("== stage 3: codesign training over SLM levels ==")
        print(f"  test accuracy per epoch: {[round(a, 3) for a in result.codesign_training.test_accuracies]}")

        print("== stage 4: fabrication dump ==")
        print(f"  wrote {len(result.fabrication_files)} SLM configuration files to {fabrication_dir}")

        print("== stage 5: deployment on emulated hardware ==")
        report = result.deployment
        print(f"  simulation accuracy  : {report.simulation_accuracy:.3f}")
        print(f"  hardware accuracy    : {report.hardware_accuracy:.3f} "
              f"(gap {report.accuracy_gap * 100:.1f} points)")
        print(f"  pattern correlation  : {report.pattern_correlation:.3f}")


if __name__ == "__main__":
    main()
