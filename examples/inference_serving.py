"""Serving a trained DONN with the autograd-free inference engine.

Trains a small classifier, compiles it into an
:class:`~repro.engine.InferenceSession`, then shows the serving workflow:
chunked streaming over a large query set, parity with the autograd eval
path, the throughput gain, and refreshing a live session after further
training.

Run with::

    PYTHONPATH=src python examples/inference_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DONNConfig, Trainer, load_digits
from repro.baselines.regularization import build_regularized_donn
from repro.engine import available_backends, compile as engine_compile
from repro.train import evaluate_classifier


def main() -> None:
    # 1. Train a small DONN classifier (see examples/quickstart.py).
    config = DONNConfig(
        sys_size=64, pixel_size=36e-6, distance=0.1, wavelength=532e-9,
        num_layers=3, num_classes=10, det_size=8, seed=0,
    )
    train_x, train_y, test_x, test_y = load_digits(num_train=400, num_test=200, size=64, seed=1)
    model = build_regularized_donn(config, train_x[:8])
    trainer = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=50, seed=0)
    trainer.fit(train_x, train_y, epochs=4)

    # 2. Compile it for serving: lower to the plan IR, run the
    #    optimization passes, emit over the FFT backend (scipy threaded
    #    when installed, numpy otherwise).
    session = engine_compile(model, batch_size=64)
    summary = session.plan_summary()
    print(f"compiled {session!r} (backends available: {', '.join(available_backends())})")
    print(f"plan: {summary['fft_ops_before']} FFT ops -> {summary['fft_ops_after']} "
          f"after passes {summary['passes']}")

    # 3. Stream a "traffic burst" through it in chunks, then check the
    #    answers against the autograd path.
    logits = session.run(test_x)                       # chunks of 64
    predictions = session.predict(test_x)
    graph_accuracy = evaluate_classifier(model, test_x, test_y)
    engine_accuracy = float((predictions == test_y).mean())
    print(f"graph accuracy {graph_accuracy:.3f} | engine accuracy {engine_accuracy:.3f} "
          f"| logits shape {logits.shape}")

    # 4. Throughput: graph predict vs engine run over the same queries.
    start = time.perf_counter()
    model.predict(test_x)
    graph_seconds = time.perf_counter() - start
    start = time.perf_counter()
    session.predict(test_x)
    engine_seconds = time.perf_counter() - start
    print(f"graph: {len(test_x) / graph_seconds:,.0f} images/sec | "
          f"engine: {len(test_x) / engine_seconds:,.0f} images/sec "
          f"({graph_seconds / engine_seconds:.1f}x)")

    # 5. Sessions are snapshots: after more training, refresh to serve the
    #    updated weights (or export a second session for A/B serving).
    trainer.fit(train_x, train_y, epochs=1)
    stale = float((session.predict(test_x) == test_y).mean())
    session.refresh()
    fresh = float((session.predict(test_x) == test_y).mean())
    print(f"accuracy before refresh {stale:.3f} -> after refresh {fresh:.3f}")

    # 6. The detector-plane intensity (what the camera records) is also
    #    available for noise studies and visualisation.
    pattern = session.intensity_patterns(test_x[:1])
    print(f"detector pattern: shape {pattern.shape}, peak {np.max(pattern):.3e}")


if __name__ == "__main__":
    main()
