"""Multi-channel RGB DONN for scene classification (Section 5.6.1, Figure 12 / Table 5).

Builds the three-channel architecture -- the input RGB image is split into
R/G/B grey-scale images, each routed through its own five-layer diffractive
stack, with all beams projected onto one shared detector -- and compares it
against the single-channel baseline trained without the complex-valued
regularization (Zhou et al.-style training).

Run with::

    python examples/rgb_multichannel_classification.py
"""

from __future__ import annotations

import numpy as np

from repro import DONNConfig, MultiChannelDONN, Trainer, load_scenes
from repro.data import SCENE_CLASSES
from repro.train import top_k_accuracy
from repro.utils import format_table


def evaluate_topk(model, images: np.ndarray, labels: np.ndarray) -> dict:
    from repro.autograd import no_grad

    model.eval()
    with no_grad():
        logits = np.asarray(model(images).data.real)
    model.train()
    return {
        "top1": top_k_accuracy(logits, labels, k=1),
        "top3": top_k_accuracy(logits, labels, k=3),
        "top5": top_k_accuracy(logits, labels, k=5),
    }


def calibrate_gamma(config: DONNConfig, images: np.ndarray, num_channels: int, target: float = 1.0) -> float:
    """Amplitude-regularization calibration (Section 3.2) for the RGB model."""
    from repro.autograd import no_grad

    probe = MultiChannelDONN(config.with_updates(amplitude_factor=1.0), num_channels=num_channels)
    with no_grad():
        logits = np.asarray(probe(images).data.real)
    mean_max = float(logits.max(axis=-1).mean())
    return float((target / mean_max) ** (1.0 / (2.0 * (config.num_layers + 1))))


def main() -> None:
    num_classes = len(SCENE_CLASSES)
    train_x, train_y, test_x, test_y = load_scenes(num_train=240, num_test=60, size=48, num_classes=num_classes, seed=0)
    print(f"scene dataset: {len(train_x)} train / {len(test_x)} test, classes: {', '.join(SCENE_CLASSES)}")

    config = DONNConfig(
        sys_size=48,
        pixel_size=36e-6,
        distance=0.08,
        wavelength=532e-9,
        num_layers=3,
        num_classes=num_classes,
        det_size=6,
        seed=0,
    )

    # Multi-channel RGB DONN (ours) with the calibrated amplitude factor.
    gamma = calibrate_gamma(config, train_x[:8], num_channels=3)
    print(f"calibrated amplitude regularization factor gamma = {gamma:.3f}")
    rgb_model = MultiChannelDONN(config.with_updates(amplitude_factor=gamma), num_channels=3)
    Trainer(rgb_model, num_classes=num_classes, learning_rate=0.1, batch_size=30, loss="cross_entropy", seed=0).fit(
        train_x, train_y, epochs=6
    )
    rgb_scores = evaluate_topk(rgb_model, test_x, test_y)

    # Baseline: single grey-scale channel (luminance), no regularization.
    grey_train = train_x.mean(axis=1, keepdims=True)
    grey_test = test_x.mean(axis=1, keepdims=True)
    baseline = MultiChannelDONN(config.with_updates(amplitude_factor=1.0), num_channels=1)
    Trainer(baseline, num_classes=num_classes, learning_rate=0.1, batch_size=30, loss="cross_entropy", seed=0).fit(
        grey_train, train_y, epochs=6
    )
    baseline_scores = evaluate_topk(baseline, grey_test, test_y)

    print("\nscene classification accuracy (cf. Table 5):")
    print(format_table([
        {"model": "RGB multi-channel DONN (ours)", **rgb_scores},
        {"model": "single-channel baseline", **baseline_scores},
    ]))


if __name__ == "__main__":
    main()
