"""Multi-tenant async serving with dynamic batching (``repro.serve``).

Builds three model families -- a digit classifier with an all-optical
Kerr nonlinearity, an RGB multi-channel classifier in reduced-precision
``complex64`` mode, and a segmentation DONN -- registers them under names
on one :class:`~repro.serve.InferenceServer`, then fires bursts of
concurrent single-image requests at it.  The server coalesces each burst
into a handful of fused engine calls (watch the ``mean_batch_size``
stats) and scatters every answer back to its caller.  A final section
shows the explicit overload error from the bounded queue and a model
served under a latency SLO (deadline-aware batching + shedding).

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN
from repro.engine import compile as engine_compile
from repro.serve import (
    DeadlineExceededError,
    InferenceServer,
    ServerOverloadedError,
    SLOAwarePolicy,
)

SYS = 64


def build_models():
    config = DONNConfig(
        sys_size=SYS, pixel_size=36e-6, distance=0.1, wavelength=532e-9,
        num_layers=3, num_classes=10, det_size=8, seed=0,
    )
    digits = DONN(config, nonlinearity="kerr")          # NonlinearLayer in the stack
    rgb = MultiChannelDONN(config)                       # three optical channels
    scenes = SegmentationDONN(config.with_updates(num_layers=3))
    return digits, rgb, scenes


async def main() -> None:
    digits, rgb, scenes = build_models()
    rng = np.random.default_rng(7)

    # One server, three tenants.  max_batch/max_wait_ms tune the
    # throughput/latency trade: bigger batches amortize more fixed cost,
    # longer waits fuse sparser traffic.  complex64 halves the memory of
    # the RGB model's cached kernels (accuracy budget: 1e-4 on logits).
    server = InferenceServer(max_batch=32, max_wait_ms=2.0)
    server.add_model("digits", digits)
    server.add_model("rgb", rgb, dtype="complex64")
    server.add_model("scenes", scenes)

    async with server:
        # A burst of concurrent clients per model; every request is a
        # single image, every answer is that request's own result row.
        digit_images = rng.uniform(0.0, 1.0, size=(24, SYS, SYS))
        rgb_images = rng.uniform(0.0, 1.0, size=(12, 3, SYS, SYS))
        scene_images = rng.uniform(0.0, 1.0, size=(12, SYS, SYS))

        start = time.perf_counter()
        digit_logits, rgb_logits, masks = await asyncio.gather(
            server.submit_many("digits", digit_images),
            server.submit_many("rgb", rgb_images),
            server.submit_many("scenes", scene_images),
        )
        elapsed = time.perf_counter() - start

        total = len(digit_images) + len(rgb_images) + len(scene_images)
        print(f"answered {total} concurrent requests across 3 models in {elapsed * 1000:.1f} ms")
        print(f"digits -> logits {digit_logits.shape}, predictions {digit_logits.argmax(axis=-1)[:8]}...")
        print(f"rgb    -> logits {rgb_logits.shape} (complex64 session)")
        print(f"scenes -> intensity maps {masks.shape}")

        for name, stats in server.stats().items():
            s = stats.as_dict()
            print(
                f"  [{name}] {s['completed']} requests fused into {s['batches']} engine calls "
                f"(mean batch {s['mean_batch_size']:.1f}, largest {s['largest_batch']})"
            )

        # Backpressure is explicit: a tiny queue overflows loudly instead
        # of buffering unboundedly or deadlocking.
        server.add_model("tiny-queue", engine_compile(digits), max_queue=4, max_batch=1)
        flood = [server.submit("tiny-queue", image) for image in digit_images]
        answers = await asyncio.gather(*flood, return_exceptions=True)
        overloaded = sum(isinstance(a, ServerOverloadedError) for a in answers)
        served = sum(isinstance(a, np.ndarray) for a in answers)
        print(f"flooding a max_queue=4 model: {served} served, {overloaded} rejected with ServerOverloadedError")

        # Latency-SLO serving: the policy stamps every request with a
        # deadline, sizes batches from an online latency model so p99
        # stays inside the budget, and sheds requests that already
        # missed instead of computing answers nobody can use.
        server.add_model("digits-slo", engine_compile(digits), policy=SLOAwarePolicy(slo_ms=50.0))
        burst = await asyncio.gather(
            *(server.submit("digits-slo", image) for image in digit_images), return_exceptions=True
        )
        on_time = sum(isinstance(a, np.ndarray) for a in burst)
        slo_stats = server.stats()["digits-slo"].as_dict()
        print(
            f"SLO model (50 ms budget): {on_time} served, "
            f"{slo_stats['deadline_missed']} shed as DeadlineExceededError; "
            f"p50/p99 latency {slo_stats['p50_latency_ms']:.1f}/{slo_stats['p99_latency_ms']:.1f} ms "
            f"(queue {slo_stats['mean_queue_wait_ms']:.1f} ms + compute {slo_stats['mean_compute_ms']:.1f} ms)"
        )

        # An impossible per-request budget fails fast, loudly:
        try:
            await server.submit("digits-slo", digit_images[0], slo_ms=0.001)
        except DeadlineExceededError as exc:
            print(f"0.001 ms budget -> {type(exc).__name__}: {exc}")


async def sharded() -> None:
    """Replica groups: the same model served by 2 worker processes.

    Each fused batch is routed (here by power-of-two-choices) to one of
    two spawned workers, which rebuilt their own compiled sessions from
    the model's picklable SessionSpec; batch arrays travel over shared
    memory.  See docs/sharding.md.
    """
    digits, _, _ = build_models()
    server = InferenceServer(replicas=2, router="power_of_two_choices")
    server.add_model("digits", digits)
    rng = np.random.default_rng(7)
    images = rng.uniform(size=(24, SYS, SYS))
    async with server:  # start() spawns the workers; exit drains + stops them
        rows = await server.submit_many("digits", list(images))
        stats = server.stats()["digits"].as_dict()
        spread = [f"#{r['replica']} pid={r['pid']}: {r['dispatched']} batches" for r in stats["replicas"]]
        print(f"sharded digits: {len(rows)} answers from 2 worker processes ({'; '.join(spread)})")


if __name__ == "__main__":
    asyncio.run(main())
    asyncio.run(sharded())
