"""On-chip DONN integration case study (Section 5.5, Figure 11).

Given the pixel pitch of a CMOS detector die (3.45 um for the CS165MU1)
and a 532 nm source, the DSE engine picks a diffraction distance and
resolution that fit the chip, the model is trained at that geometry, and
the fabrication specification (chip dimensions, per-layer thickness maps
for nano-printing) is produced.

Run with::

    python examples/onchip_integration.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Trainer, load_digits
from repro.baselines.regularization import build_regularized_donn
from repro.codesign import ideal_profile
from repro.hardware import design_onchip_system, dump_slm_configuration, to_system, OnChipIntegrationSpec
from repro.utils import format_table


def main() -> None:
    # 1. DSE under chip-integration constraints: the CMOS pixel pitch fixes
    #    the diffraction unit size; search distance / resolution.
    spec = design_onchip_system(pixel_size=3.45e-6, wavelength=532e-9, num_layers=5)
    dims = spec.dimensions()
    print("on-chip integration specification:")
    print(format_table([{
        "pixel pitch (um)": spec.config.pixel_size * 1e6,
        "resolution": spec.config.sys_size,
        "layer spacing (um)": spec.config.distance * 1e6,
        "chip side (um)": dims["side_um"],
        "stack height (um)": dims["height_um"],
    }]))
    print(f"fits a 1x1 mm detector die: {spec.fits_detector(1e-3)}")

    # 2. Train a (scaled-down) DONN at the chosen on-chip geometry.
    train_x, train_y, test_x, test_y = load_digits(num_train=300, num_test=80, size=64, seed=3)
    config = spec.config.with_updates(sys_size=64, num_layers=3, det_size=8, num_classes=10)
    model = build_regularized_donn(config, train_x[:8])
    result = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=50, seed=0).fit(
        train_x, train_y, epochs=6, test_images=test_x, test_labels=test_y
    )
    print(f"\nemulation accuracy at the on-chip geometry: {result.final_test_accuracy:.3f}")

    # 3. Dump the fabrication files: per-layer phase -> thickness maps.
    scaled_spec = OnChipIntegrationSpec(config=config)
    print("\nfabrication record:", scaled_spec.fabrication_spec())
    with tempfile.TemporaryDirectory() as output_dir:
        records = to_system(model, ideal_profile(num_levels=256))
        files = dump_slm_configuration(
            [{**record, "control_values": record["phases"], "control_unit": "rad"} for record in records],
            Path(output_dir),
        )
        print(f"wrote {len(files)} per-layer fabrication files (phase maps) to a temporary directory")


if __name__ == "__main__":
    main()
