"""Quickstart: design, train and inspect a small DONN classifier.

This is the 60-second tour of the reproduction's public API, mirroring the
paper's tutorial flow (Appendix A): build a DONN from architectural
hyper-parameters, train it on a digit-classification task with the
complex-valued regularization, and look at the detector read-out.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations


from repro import DONNConfig, Trainer, load_digits
from repro.baselines.regularization import build_regularized_donn
from repro.utils import ascii_heatmap, pattern_summary


def main() -> None:
    # 1. Architectural hyper-parameters (a scaled-down Section 5.1 system).
    config = DONNConfig(
        sys_size=64,          # 64 x 64 diffraction units
        pixel_size=36e-6,     # 36 um SLM pixels
        distance=0.1,         # 10 cm between planes
        wavelength=532e-9,    # green CW laser
        num_layers=3,
        num_classes=10,
        det_size=8,
        seed=0,
    )
    print(f"DONN config: {config.sys_size}x{config.sys_size}, "
          f"{config.num_layers} layers, unit size {config.unit_size_in_wavelengths:.0f} wavelengths")

    # 2. A synthetic digit dataset (MNIST stand-in; no network needed).
    train_x, train_y, test_x, test_y = load_digits(num_train=400, num_test=100, size=64, seed=1)

    # 3. Build the model with the physics-aware regularization factor
    #    calibrated from a few sample images (Section 3.2).
    model = build_regularized_donn(config, train_x[:8])
    print(f"calibrated amplitude regularization factor gamma = {model.config.amplitude_factor:.3f}")

    # 4. Train with Adam on the softmax-MSE loss (the paper's setup).
    trainer = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=50, seed=0)
    result = trainer.fit(train_x, train_y, epochs=8, test_images=test_x, test_labels=test_y, verbose=True)
    print(f"final test accuracy: {result.final_test_accuracy:.3f}")

    # 5. Inspect what the camera would see for one test digit.
    pattern = model.detector_pattern(test_x[:1]).data[0]
    print("\ndetector intensity pattern for one test image "
          f"(true class {test_y[0]}, predicted {model.predict(test_x[:1])[0]}):")
    print(ascii_heatmap(pattern, width=48, height=24))
    print("pattern summary:", {k: round(v, 4) for k, v in pattern_summary(pattern).items()})

    # 6. The trained phase masks are what would be loaded on the SLMs.
    phases = model.phase_patterns()
    print(f"\ntrained phase mask of layer 0 (radians): min={phases[0].min():.2f}, max={phases[0].max():.2f}")


if __name__ == "__main__":
    main()
