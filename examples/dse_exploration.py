"""Architectural design space exploration with LightRidge-DSE (Section 4, Figure 5).

Sweeps the (diffraction unit size, diffraction distance) design space at
two training wavelengths (432 nm and 632 nm), fits the gradient-boosted
analytical model, predicts the design space at 532 nm, and compares the
prediction against the ground-truth sweep -- including a sensitivity
analysis around the chosen design point (Table 3).

Run with::

    python examples/dse_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.dse import (
    AnalyticalDSEModel,
    DesignSpace,
    physics_prior_accuracy,
    run_analytical_dse,
    sensitivity_analysis,
)
from repro.dse.sensitivity import most_sensitive_parameter
from repro.utils import ascii_heatmap, format_table


def heatmap_of(points, space: DesignSpace) -> np.ndarray:
    """Arrange a flat list of design points back onto the (d, D) grid."""
    rows = len(space.unit_sizes_in_wavelengths)
    cols = len(space.distances)
    return np.array([point.accuracy for point in points]).reshape(rows, cols)


def main() -> None:
    result = run_analytical_dse(
        training_wavelengths=(432e-9, 632e-9),
        target_wavelength=532e-9,
        model=AnalyticalDSEModel(n_estimators=400, learning_rate=0.2, max_depth=3),
        verification_budget=2,
    )
    target_space = DesignSpace(wavelength=532e-9)

    predicted = heatmap_of(result.predicted_points, target_space)
    truth = np.array(
        [physics_prior_accuracy(532e-9, d, z) for d, z in target_space.grid()]
    ).reshape(predicted.shape)

    print("predicted 532 nm design space (rows: unit size 10->110 wavelengths, cols: distance 0.1->0.6 m)")
    print(ascii_heatmap(predicted, width=33, height=11))
    print("\nground-truth 532 nm design space")
    print(ascii_heatmap(truth, width=33, height=11))
    correlation = np.corrcoef(predicted.ravel(), truth.ravel())[0, 1]
    print(f"\nprediction/ground-truth correlation: {correlation:.3f}")

    best = result.best_point
    print(f"best verified design point: unit size {best.unit_size * 1e6:.1f} um "
          f"({best.unit_size / 532e-9:.0f} wavelengths), distance {best.distance:.2f} m, "
          f"accuracy {best.accuracy:.2f}")
    print(f"emulation runs used: {result.emulation_iterations} "
          f"(vs {result.grid_size} for grid search, {result.speedup_vs_grid_search:.0f}x speedup)")

    print("\nsensitivity analysis around the chosen point (Table 3):")
    rows = sensitivity_analysis(532e-9, best.unit_size, best.distance)
    table = [
        {"parameter": row.parameter, "shift_%": row.shift * 100, "accuracy": row.accuracy}
        for row in rows
    ]
    print(format_table(table))
    print(f"\nmost sensitive parameter: {most_sensitive_parameter(rows)}")


if __name__ == "__main__":
    main()
