"""Serving a DONN over HTTP/JSON with the gateway (``repro.gateway``).

Boots a digit-classifier DONN behind an
:class:`~repro.serve.InferenceServer` and a
:class:`~repro.gateway.Gateway` on an ephemeral loopback port, then
walks the whole API surface through :class:`~repro.gateway.GatewayClient`
-- health, model roster, single and batch inference, per-request
``slo_ms`` budgets, and the error mapping (an unknown model comes back
as a 404 that the client re-raises as the original
:class:`~repro.serve.UnknownModelError`).  A final section verifies that
the logits that crossed the wire as JSON match a direct
:func:`repro.engine.compile` run bit-for-bit at ``atol=1e-10`` -- JSON
round-trips doubles exactly.

Everything runs in one process over 127.0.0.1; point the same client at
another host to serve for real (see ``docs/gateway.md`` for the
deployment walkthrough, including remote ``repro-worker`` replicas).

Run with::

    PYTHONPATH=src python examples/gateway_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.gateway import Gateway, GatewayClient
from repro.serve import InferenceServer, UnknownModelError

SYS = 32


def build_model() -> DONN:
    config = DONNConfig(
        sys_size=SYS, pixel_size=36e-6, distance=0.1, wavelength=532e-9,
        num_layers=3, num_classes=10, det_size=4, seed=0,
    )
    return DONN(config)


async def main() -> None:
    model = build_model()
    rng = np.random.default_rng(7)
    images = rng.uniform(0.0, 1.0, size=(8, SYS, SYS))

    server = InferenceServer(max_batch=16, max_wait_ms=2.0)
    server.add_model("digits", model)

    # port=0 binds an ephemeral port; gateway.port reports the real one.
    # The gateway starts (and on exit stops) the backing server itself.
    async with Gateway(server, port=0) as gateway:
        print(f"gateway listening on {gateway.url()}  (try: curl {gateway.url()}healthz)\n")

        async with GatewayClient(port=gateway.port) as client:
            # -- health + roster ---------------------------------------- #
            health = await client.health()
            print(f"healthz: status={health['status']} models={health['models']}")
            for entry in await client.models():
                print(
                    f"models:  {entry['name']}: {entry['kind']} "
                    f"{tuple(entry['input_shape'])} dtype={entry['dtype']}"
                )

            # -- single + batch inference ------------------------------- #
            logits = await client.infer("digits", images[0])
            print(f"\ninfer:   one image -> logits shape {logits.shape}, "
                  f"argmax {int(np.argmax(logits))}")
            batch = await client.infer_many("digits", images)
            print(f"infer:   batch of {len(images)} -> outputs shape {batch.shape} "
                  "(requests coalesce into fused engine calls)")

            # -- per-request latency budget ----------------------------- #
            # A generous budget here; an expired one raises
            # DeadlineExceededError (HTTP 504) instead of a late answer.
            guarded = await client.infer("digits", images[1], slo_ms=5000.0)
            print(f"infer:   with slo_ms=5000 -> argmax {int(np.argmax(guarded))}")

            # -- the error mapping, round-tripped ----------------------- #
            try:
                await client.infer("tpyos", images[0])
            except UnknownModelError as exc:
                print(f"\nerrors:  404/unknown_model -> {type(exc).__name__}: {exc}")

            # -- wire-format parity ------------------------------------- #
            reference = engine_compile(model).run(images)
            drift = float(np.max(np.abs(batch - reference)))
            print(f"\nparity:  max |HTTP - compile()| = {drift:.2e} (JSON "
                  "round-trips float64 exactly)")
            assert drift < 1e-10

            stats = await client.stats()
            digits = stats["models"]["digits"]
            print(f"stats:   {digits['completed']} completed, "
                  f"largest batch {digits['largest_batch']}, "
                  f"gateway requests {stats['gateway']['total_requests']}")


if __name__ == "__main__":
    asyncio.run(main())
