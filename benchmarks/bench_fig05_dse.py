"""Figure 5: architectural DSE heat maps and ML-predicted design space.

Reproduces the DSE workflow: sweep (unit size, distance) at 432 nm and
632 nm, fit the gradient-boosted analytical model, predict the 532 nm
design space, and validate the prediction against the ground-truth sweep
(the paper's Figure 5c vs 5d).  A small training-based spot check verifies
that the physics-prior surrogate ranks design points the same way real
DONN training does.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results
from repro import DONNConfig, load_digits
from repro.dse import AnalyticalDSEModel, DesignSpace, physics_prior_accuracy, run_analytical_dse
from repro.dse.space import evaluate_design_point


def test_fig05_analytical_dse(benchmark):
    result = benchmark.pedantic(
        lambda: run_analytical_dse(
            training_wavelengths=(432e-9, 632e-9),
            target_wavelength=532e-9,
            model=AnalyticalDSEModel(n_estimators=400, learning_rate=0.2, max_depth=3),
            verification_budget=2,
        ),
        rounds=1,
        iterations=1,
    )
    space = DesignSpace(wavelength=532e-9)
    predicted = np.array([point.accuracy for point in result.predicted_points])
    truth = np.array([physics_prior_accuracy(532e-9, d, z) for d, z in space.grid()])
    correlation = float(np.corrcoef(predicted, truth)[0, 1])
    grid_best = float(truth.max())

    rows = [
        {
            "quantity": "prediction/grid-search correlation (Fig 5c vs 5d)",
            "value": correlation,
        },
        {"quantity": "best accuracy found by DSE (2 emulation runs)", "value": result.best_point.accuracy},
        {"quantity": "best accuracy over full 121-point grid search", "value": grid_best},
        {"quantity": "emulation-run reduction vs grid search", "value": result.speedup_vs_grid_search},
        {"quantity": "chosen unit size (wavelengths)", "value": result.best_point.unit_size / 532e-9},
        {"quantity": "chosen distance (m)", "value": result.best_point.distance},
    ]
    notes = "Paper: analytical DSE finds the grid-search optimum with ~2 emulations (60x fewer runs)."
    report("Figure 5: analytical-model DSE at 532 nm", rows, notes)
    save_results("fig05_dse", rows, notes)

    assert correlation > 0.9
    assert result.best_point.accuracy >= grid_best - 0.1
    assert result.speedup_vs_grid_search >= 50


def test_fig05_surrogate_agrees_with_training(benchmark):
    """Spot check: the surrogate's ranking of good vs bad design points matches
    accuracy obtained by actually training small DONNs at those points."""
    dataset = load_digits(num_train=150, num_test=60, size=48, seed=4)
    good_distance, bad_distance = 0.1, 0.002  # moderate vs far-too-small spread at 36 um
    base = DONNConfig(sys_size=48, pixel_size=36e-6, wavelength=532e-9, num_layers=2, det_size=6, distance=good_distance, seed=0)

    def measure():
        measured = {}
        for label, distance in (("good", good_distance), ("bad", bad_distance)):
            config = base.with_updates(distance=distance)
            measured[label] = evaluate_design_point(config, *dataset, epochs=4, learning_rate=0.5, batch_size=30)
        return measured

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    surrogate = {
        "good": physics_prior_accuracy(532e-9, 36e-6, good_distance, system_size=48),
        "bad": physics_prior_accuracy(532e-9, 36e-6, bad_distance, system_size=48),
    }
    rows = [
        {"design point": "good (D = 0.1 m)", "surrogate_accuracy": surrogate["good"], "trained_accuracy": measured["good"]},
        {"design point": "bad (D = 2 mm)", "surrogate_accuracy": surrogate["bad"], "trained_accuracy": measured["bad"]},
    ]
    notes = "Both the surrogate and real training must rank the well-connected design above the degenerate one."
    report("Figure 5 (validation): surrogate vs trained accuracy", rows, notes)
    save_results("fig05_dse_validation", rows, notes)

    assert surrogate["good"] > surrogate["bad"]
    assert measured["good"] > measured["bad"]
