"""Gateway overhead: loopback HTTP serving vs in-process serving.

The gateway's promise is that putting the serving stack behind a network
front door costs protocol work (JSON codec, HTTP framing, loopback TCP)
but does not *distort* the serving behavior underneath -- same batcher,
same policies, same backpressure.  This benchmark measures that promise
with the open-loop Poisson load generator driven two ways over the same
model and the same arrival schedule:

* **in_process** -- ``submit`` calls ``InferenceServer.submit`` directly
  (the PR 4 measurement path: no wire, no codec).
* **loopback_http** -- ``submit`` is ``GatewayClient.infer`` against a
  :class:`~repro.gateway.Gateway` on an ephemeral loopback port: every
  request is a real HTTP exchange with JSON in both directions.

Reported per mode and arrival rate: p50/p95/p99 latency (clocked from
the scheduled arrival instant -- coordinated-omission-free) and achieved
images/sec.  The committed ``benchmarks/results/gateway_serving.json``
records the sys-64 comparison; its gate is the acceptance criterion that
loopback-HTTP p99 stays within ``GATEWAY_P99_FACTOR`` (default 2x) of
the in-process p99 at the same arrival rate, with zero transport errors.
``--smoke`` (or ``GATEWAY_BENCH_SMOKE=1``) shrinks the sweep for CI and
gates only on "zero errors end to end".

Run directly (``python benchmarks/bench_gateway.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_gateway.py -s``).  Note the
whole exercise shares one event loop *and* (in CI) one core between load
generator, HTTP client, gateway and engine -- the HTTP numbers price in
the codec work, which is the point.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import LoadResult, run_metadata, run_open_loop
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.gateway import Gateway, GatewayClient, GatewayLimits
from repro.serve import InferenceServer

SMOKE = bool(int(os.environ.get("GATEWAY_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
#: Seed for payload content and the Poisson schedule; recorded in the
#: committed results JSON so a run can be reproduced exactly.
SEED = int(os.environ.get("GATEWAY_BENCH_SEED", cli_value("--seed", "42")))
SYS_SIZE = int(os.environ.get("GATEWAY_BENCH_SYS_SIZE", "32" if SMOKE else "64"))
NUM_LAYERS = 5
#: Arrival rates swept, as fractions of the *bottleneck* capacity (the
#: smaller of fused-call supply and measured HTTP round-trip throughput;
#: on one core that is always the HTTP path).  Kept below saturation on
#: purpose: the question is protocol overhead at healthy load, not which
#: mode collapses first -- an open-loop rate past what the codec can
#: carry measures queue growth, not overhead.
RATE_FRACTIONS = (0.5,) if SMOKE else (0.2, 0.3)
NUM_REQUESTS = int(os.environ.get("GATEWAY_BENCH_REQUESTS", "120" if SMOKE else "500"))
#: Repetitions per (mode, rate) point in full runs; each point reports its
#: median-p99 repetition.  The CI container is shared -- multi-hundred-ms
#: machine stalls land on *some* repetition every few runs, and a
#: single-sample p99 would hand whichever mode caught one an arbitrary
#: win or loss.  The median of five shrugs off up to two stalled reps.
NUM_REPS = 1 if SMOKE else 5
#: Acceptance gate: loopback-HTTP p99 must stay within this factor of the
#: in-process p99 at the same arrival rate (full runs only).
P99_FACTOR = float(os.environ.get("GATEWAY_P99_FACTOR", "2.0"))
MAX_BATCH = 32
#: Batching window shared by both modes -- identical fusion behavior
#: underneath is what makes the comparison about *protocol* overhead.
#: 20 ms is a throughput-leaning window (batch wide, amortize fixed
#: cost), the regime a network front door exists for; the latency-POLICY
#: trade-offs at 2 ms windows are bench_slo_serving.py's subject.
MAX_WAIT_MS = 20.0
MAX_QUEUE = 4096


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    return engine_compile(DONN(config), batch_size=MAX_BATCH, dtype="complex128")


def _measure_capacity(session) -> float:
    """Images/sec of back-to-back fused calls at B=32 (the supply side)."""
    batch = np.random.default_rng(0).uniform(size=(MAX_BATCH, SYS_SIZE, SYS_SIZE))
    session.run(batch)  # warm FFT plans
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < 0.5:
        session.run(batch)
        calls += 1
    return MAX_BATCH * calls / (time.perf_counter() - start)


def _measure_http_capacity(session) -> float:
    """Requests/sec of the full loopback HTTP round trip (closed loop).

    Eight concurrent keep-alive clients hammer one gateway for ~0.6 s;
    the achieved rate is the protocol path's supply side -- batching
    underneath fuses their requests, so this measures codec + wire +
    dispatch, not one-request-at-a-time engine latency.
    """

    async def drive():
        loop = asyncio.get_running_loop()
        server = InferenceServer(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, max_queue=MAX_QUEUE)
        server.add_model("bench", session)
        payload = np.random.default_rng(0).uniform(size=(SYS_SIZE, SYS_SIZE))
        counts = [0]
        async with Gateway(server, port=0) as gateway:
            async with GatewayClient(port=gateway.port, max_connections=16) as client:
                await client.infer("bench", payload)  # warm codec + engine
                start = loop.time()
                stop = start + 0.6

                async def hammer():
                    while loop.time() < stop:
                        await client.infer("bench", payload)
                        counts[0] += 1

                await asyncio.gather(*(hammer() for _ in range(8)))
                return counts[0] / (loop.time() - start)

    return asyncio.run(drive())


def _run_in_process(session, rate_rps: float, payloads) -> LoadResult:
    async def drive():
        server = InferenceServer(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, max_queue=MAX_QUEUE)
        server.add_model("bench", session)
        async with server:
            warm = payloads[: min(32, len(payloads))]
            await asyncio.gather(
                *(server.submit("bench", image) for image in warm), return_exceptions=True
            )
            return await run_open_loop(
                lambda image: server.submit("bench", image),
                payloads,
                rate_rps,
                np.random.default_rng(SEED + 1),
            )

    return asyncio.run(drive())


def _run_loopback_http(session, rate_rps: float, payloads) -> LoadResult:
    async def drive():
        server = InferenceServer(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, max_queue=MAX_QUEUE)
        server.add_model("bench", session)
        limits = GatewayLimits(max_connections=128, max_inflight=MAX_QUEUE)
        async with Gateway(server, port=0, limits=limits) as gateway:
            async with GatewayClient(port=gateway.port, max_connections=64) as client:
                warm = payloads[: min(32, len(payloads))]
                await asyncio.gather(
                    *(client.infer("bench", image) for image in warm), return_exceptions=True
                )
                return await run_open_loop(
                    lambda image: client.infer("bench", image),
                    payloads,
                    rate_rps,
                    np.random.default_rng(SEED + 1),
                )

    return asyncio.run(drive())


def _sweep():
    import gc

    session = _build_session()
    engine_capacity = _measure_capacity(session)
    http_capacity = _measure_http_capacity(session)
    bottleneck = min(engine_capacity, http_capacity)
    rng = np.random.default_rng(SEED)
    # Quantized to 3 decimals: inference payloads are images (8-bit data
    # scaled to [0, 1]), so the wire carries short float literals -- not
    # the 17-significant-digit worst case of raw uniform doubles, which
    # would quadruple the JSON text for precision no camera produces.
    payloads = np.round(rng.uniform(0.0, 1.0, size=(NUM_REQUESTS, SYS_SIZE, SYS_SIZE)), 3)

    modes = {"in_process": _run_in_process, "loopback_http": _run_loopback_http}
    rows = []
    results = {}
    all_reps = []
    gc.collect()
    gc.disable()
    try:
        # One unmeasured mini-run per mode first: the first asyncio.run of
        # a mode pays one-time costs (executor thread spin-up, allocator
        # growth) that otherwise land as a fake p99 outlier in whichever
        # point happens to run first.
        for runner in modes.values():
            runner(session, bottleneck * RATE_FRACTIONS[0], payloads[:40])
        for fraction in RATE_FRACTIONS:
            rate = bottleneck * fraction
            for mode, runner in modes.items():
                reps = [runner(session, rate, payloads) for _ in range(NUM_REPS)]
                all_reps.extend((mode, fraction, rep) for rep in reps)
                result = sorted(reps, key=lambda r: r.percentile(99))[NUM_REPS // 2]
                results[(mode, fraction)] = result
                rows.append(
                    {
                        "mode": mode,
                        "rate_fraction_of_capacity": fraction,
                        "reps": NUM_REPS,
                        **result.row(),
                    }
                )
    finally:
        gc.enable()

    summary = {
        "mode": "summary",
        "sys_size": SYS_SIZE,
        "num_layers": NUM_LAYERS,
        "engine_capacity_images_per_sec": engine_capacity,
        "http_capacity_rps": http_capacity,
        "p99_factor_limit": P99_FACTOR,
    }
    for fraction in RATE_FRACTIONS:
        in_proc = results[("in_process", fraction)]
        http = results[("loopback_http", fraction)]
        if in_proc.completed and http.completed:
            summary[f"p99_overhead_factor_at_{fraction}"] = http.percentile(99) / in_proc.percentile(99)
            summary[f"http_images_per_sec_at_{fraction}"] = http.achieved_rate
    rows.append(summary)
    return rows, results, summary, all_reps


def _check(results, summary, all_reps) -> None:
    for mode, fraction, rep in all_reps:
        assert rep.errors == 0, (
            f"{mode} at {fraction}x capacity hit {rep.errors} transport errors"
        )
        assert rep.completed > 0, f"{mode} at {fraction}x capacity completed nothing"
    if SMOKE:
        return
    for fraction in RATE_FRACTIONS:
        factor = summary.get(f"p99_overhead_factor_at_{fraction}")
        assert factor is not None and factor <= P99_FACTOR, (
            f"loopback-HTTP p99 is {factor:.2f}x the in-process p99 at {fraction}x capacity "
            f"(limit {P99_FACTOR}x)"
        )


def _notes() -> str:
    return (
        f"Open-loop Poisson load against a {NUM_LAYERS}-layer DONN at sys_size {SYS_SIZE} "
        f"(complex128 engine), {NUM_REQUESTS} offered requests per point, identical arrival "
        f"schedules per mode; each point reports the median-p99 repetition of {NUM_REPS} "
        "run(s) so a one-off machine stall on the shared CI container cannot decide the "
        "comparison.  in_process submits straight into InferenceServer; loopback_http "
        "drives the same server through Gateway + GatewayClient over 127.0.0.1 (real HTTP/1.1, "
        "JSON both ways, pooled keep-alive connections).  Arrival rates are fractions of the "
        "bottleneck capacity (min of fused-call supply and measured closed-loop HTTP round-trip "
        "throughput) so the open-loop comparison runs at load both paths can carry.  Latency is "
        "clocked from the scheduled arrival instant (coordinated-omission-free); the summary row "
        f"records the p99 overhead factor, gated at {P99_FACTOR}x by the acceptance criterion.  "
        "Generator, client, gateway and engine share one event loop and (in CI) one core, so "
        "HTTP numbers price in all codec work."
    )


def test_gateway_serving(benchmark):
    rows, results, summary, all_reps = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("Gateway serving: loopback HTTP vs in-process", rows, _notes())
    save_results(
        "gateway_serving_smoke" if SMOKE else "gateway_serving",
        rows,
        _notes(),
        metadata=run_metadata(SEED),
    )
    _check(results, summary, all_reps)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke run
    rows, results, summary, all_reps = _sweep()
    report("Gateway serving: loopback HTTP vs in-process", rows, _notes())
    if "--no-save" not in sys.argv:
        save_results(
            "gateway_serving_smoke" if SMOKE else "gateway_serving",
            rows,
            _notes(),
            metadata=run_metadata(SEED),
        )
    _check(results, summary, all_reps)
    for key, value in summary.items():
        if key.startswith("p99_overhead_factor"):
            print(f"{key}: {value:.2f}x")
