"""Model-store benchmark: publish/load latency, cold starts, live swaps.

``repro.store`` sits on the serving path at three moments, and this
benchmark times all three:

1. **Publish/load.**  Snapshotting a compiled session into the store
   (hash + atomic blob + manifest write) and loading it back -- cold
   (bytes re-read and re-verified from disk) and warm (content-hash LRU
   cache hit).  Re-publish latency is reported too: content addressing
   should make the idempotent path cheap (a hash plus a manifest scan,
   no blob write).
2. **Replica cold-start.**  Booting a one-replica
   :class:`~repro.cluster.ReplicaGroup` from a :class:`~repro.store.StoreRef`
   (the worker pulls verified bytes from disk) vs from a pickled
   :class:`~repro.engine.SessionSpec` (the model crosses the spawn
   pipe).  The ref is a few hundred bytes on the wire; the spec is the
   whole model.  Wall times are dominated by process spawn + compile on
   both sides, so the claim is "store cold-start costs about the same",
   not "it is faster".
3. **Zero-downtime swap under load.**  An open-loop Poisson trace
   against a store-backed two-replica server while
   ``swap_model`` rolls the fleet to a second published version
   mid-trace.  **Gate (all hosts, smoke included): zero request
   errors** -- the rolling spawn-then-publish/drain-then-retire swap
   must never drop or corrupt an in-flight request.  The p99 across the
   swap and the swap's own duration are recorded honestly (shared
   runners cannot hold a latency claim; the quiet-machine run is
   committed in ``benchmarks/results/model_store.json``).

Run directly (``python benchmarks/bench_model_store.py [--smoke] [--seed S]``).
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from pathlib import Path

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import run_metadata, run_open_loop
from repro import DONN, DONNConfig
from repro.cluster import ReplicaGroup
from repro.engine import compile as engine_compile
from repro.serve import InferenceServer
from repro.store import ModelStore

SMOKE = bool(int(os.environ.get("STORE_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
SEED = int(os.environ.get("STORE_BENCH_SEED", cli_value("--seed", "42")))
SYS_SIZE = int(os.environ.get("STORE_BENCH_SYS_SIZE", "32"))
NUM_LAYERS = 3
#: Publish/load timing repetitions (medians reported).
REPS = 3 if SMOKE else 10
#: Open-loop trace for the swap scenario: modest rate, large queue, so
#: the only way to fail the zero-errors gate is the swap itself.
SWAP_RATE_RPS = float(os.environ.get("STORE_BENCH_SWAP_RATE", "30" if SMOKE else "60"))
SWAP_SECONDS = 3.0 if SMOKE else 8.0
#: When the mid-trace swap fires, as a fraction of the trace.
SWAP_AT_FRACTION = 0.4


def _model(seed: int) -> DONN:
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=seed,
    )
    return DONN(config)


def _median_ms(fn, reps: int = REPS) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    return float(np.median(times))


def bench_publish_load(root: Path) -> dict:
    session = engine_compile(_model(seed=1), optimize="full")
    spec = session.to_spec()
    blob_bytes = len(spec.canonical_bytes())

    store = ModelStore(root / "latency")
    start = time.perf_counter()
    manifest = store.publish("bench", spec)
    publish_ms = (time.perf_counter() - start) * 1000.0
    republish_ms = _median_ms(lambda: store.publish("bench", spec))

    def cold_load():
        ModelStore(root / "latency", cache_entries=0).load("bench")

    cold_ms = _median_ms(cold_load)
    store.load("bench")  # prime the cache
    warm_ms = _median_ms(lambda: store.load("bench"))
    return {
        "scenario": "publish_load",
        "blob_bytes": blob_bytes,
        "publish_ms": round(publish_ms, 3),
        "republish_ms": round(republish_ms, 3),
        "cold_load_ms": round(cold_ms, 3),
        "warm_load_ms": round(warm_ms, 3),
        "content_hash": manifest.content_hash[:12],
    }


def bench_cold_start(root: Path) -> list:
    spec = engine_compile(_model(seed=1), optimize="full").to_spec()
    store = ModelStore(root / "coldstart")
    store.publish("bench", spec)
    ref = store.ref("bench")
    batch = np.random.default_rng(SEED).uniform(size=(8, SYS_SIZE, SYS_SIZE))
    reference = spec.build().run(batch)

    rows = []
    for label, payload in (("store_ref", ref), ("pickled_spec", spec)):
        start = time.perf_counter()
        with ReplicaGroup(payload, replicas=1, call_timeout_s=120.0, name=label) as group:
            boot_s = time.perf_counter() - start
            result = group.infer_sync(batch)
        np.testing.assert_allclose(result, reference, atol=1e-10)
        rows.append(
            {
                "scenario": "replica_cold_start",
                "payload": label,
                "boot_s": round(boot_s, 3),
                "logit_parity": "1e-10",
            }
        )
    return rows


async def _swap_scenario(root: Path) -> dict:
    store = ModelStore(root / "swap")
    store.publish("bench", _model(seed=1), optimize="full", batch_size=64)
    store.publish("bench", _model(seed=2), optimize="full", batch_size=64)

    server = InferenceServer(
        store=store,
        max_batch=32,
        max_wait_ms=2.0,
        max_queue=8192,
        cluster_options={"call_timeout_s": 60.0},
    )
    server.add_model("bench", "bench@v1", replicas=2)
    pool = np.random.default_rng(SEED).uniform(size=(64, SYS_SIZE, SYS_SIZE))
    count = max(32, int(SWAP_RATE_RPS * SWAP_SECONDS))
    payloads = [pool[i % len(pool)] for i in range(count)]
    swap_state: dict = {}

    async def swap_mid_trace():
        await asyncio.sleep(SWAP_SECONDS * SWAP_AT_FRACTION)
        start = time.perf_counter()
        summary = await server.swap_model("bench", "v2")
        swap_state["swap_s"] = time.perf_counter() - start
        swap_state["summary"] = summary

    async with server:
        warm = [server.submit("bench", pool[i % len(pool)]) for i in range(32)]
        await asyncio.gather(*warm, return_exceptions=True)
        swapper = asyncio.get_running_loop().create_task(swap_mid_trace())
        result = await run_open_loop(
            lambda image: server.submit("bench", image),
            payloads,
            SWAP_RATE_RPS,
            np.random.default_rng(SEED + 1),
        )
        await swapper
        final_version = server.stats()["bench"].store["version"]

    return {
        "scenario": "swap_under_load",
        "rate_rps": SWAP_RATE_RPS,
        "offered": result.offered,
        "completed": result.completed,
        "rejected": result.rejected,
        "deadline_missed": result.deadline_missed,
        "errors": result.errors,
        "p50_ms": round(float(np.percentile(result.latencies_ms, 50)), 2) if result.completed else None,
        "p99_ms": round(float(np.percentile(result.latencies_ms, 99)), 2) if result.completed else None,
        "swap_s": round(swap_state["swap_s"], 3),
        "swapped_to": swap_state["summary"]["version"],
        "final_version": final_version,
    }


def main() -> int:
    import tempfile

    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        root = Path(tmp)
        rows.append(bench_publish_load(root))
        rows.extend(bench_cold_start(root))
        swap_row = asyncio.run(_swap_scenario(root))
        rows.append(swap_row)

    notes = (
        f"model store at sys_size={SYS_SIZE}, {NUM_LAYERS} layers"
        + (" [smoke]" if SMOKE else "")
        + "; gate: zero request errors across the mid-trace rolling swap"
    )
    report("model store: publish/load, cold starts, zero-downtime swap", rows, notes)
    save_results("model_store_smoke" if SMOKE else "model_store", rows, notes, metadata=run_metadata(SEED))

    failures = []
    if swap_row["errors"]:
        failures.append(f"swap dropped {swap_row['errors']} request(s)")
    if swap_row["final_version"] != "v2":
        failures.append(f"fleet ended on {swap_row['final_version']}, expected v2")
    if swap_row["completed"] < swap_row["offered"] * 0.95:
        failures.append(
            f"only {swap_row['completed']}/{swap_row['offered']} requests completed"
        )
    if failures:
        print("FAILED: " + "; ".join(failures))
        return 1
    print("ok: rolling swap under open-loop load with zero request errors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
