"""Latency-SLO serving: batching policies under open-loop Poisson load.

The closed-loop benchmark (``bench_serving_throughput.py``) answers "how
fast can clients pull answers"; this one answers the production question
"how much *offered* traffic can the server absorb while p99 latency
stays inside a budget".  Following the iso-metric argument (PAPERS.md:
report throughput at a fixed latency target, not raw images/sec), each
batching policy is swept over Poisson arrival rates and scored by its
**max sustained rate**: the highest arrival rate at which

* p99 latency of completed requests stays <= ``SLO_MS``, and
* at least 99% of issued requests are answered (no holding the SLO by
  shedding traffic wholesale).

Three policies from ``repro.serve.policy`` compete on identical
sessions:

* **fixed** -- :class:`FixedWindowPolicy` with the PR 3 defaults
  (``max_batch=32``, ``max_wait_ms=2``): the static baseline.
* **slo** -- :class:`SLOAwarePolicy`: per-request deadlines, an online
  EWMA latency model sizing batches to the budget, and shedding of
  requests that already missed.  Near saturation this is the difference
  between a burst backlog poisoning every later request (fixed) and the
  burst tail being cut at exactly the requests that were unanswerable
  anyway.
* **adaptive** -- :class:`AdaptivePolicy`: AIMD batch sizing from queue
  depth, no deadline knowledge.

The committed ``benchmarks/results/slo_serving.json`` shows the SLO
policy sustaining >= 1.2x the fixed window's arrival rate at an equal
p99 budget at sys_size 64 (the quiet-machine claim this file gates on);
``--smoke`` (or ``SLO_BENCH_SMOKE=1``) runs a seconds-long small-size
sweep for CI, gating only on "every policy serves and the harness
works".

Run directly (``python benchmarks/bench_slo_serving.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_slo_serving.py -s``).
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import LoadResult, run_metadata, run_open_loop
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.serve import AdaptivePolicy, FixedWindowPolicy, InferenceServer, SLOAwarePolicy

SMOKE = bool(int(os.environ.get("SLO_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
#: Seed for payload content and the Poisson arrival schedule -- recorded
#: in the committed results JSON so a run can be reproduced exactly.
SEED = int(os.environ.get("SLO_BENCH_SEED", cli_value("--seed", "42")))
SYS_SIZE = int(os.environ.get("SLO_BENCH_SYS_SIZE", "32" if SMOKE else "64"))
NUM_LAYERS = 5
DTYPE = os.environ.get("SLO_BENCH_DTYPE", "complex128")
#: The p99 latency budget every policy is judged against.
SLO_MS = float(os.environ.get("SLO_BENCH_SLO_MS", "40"))
#: Arrival rates swept, as fractions of the measured fused-call capacity.
RATE_FRACTIONS = (
    (0.5, 0.9) if SMOKE else (0.45, 0.65, 0.8, 0.9, 1.0, 1.1)
)
#: Offered requests per (policy, rate) point.
NUM_REQUESTS = int(os.environ.get("SLO_BENCH_REQUESTS", "200" if SMOKE else "2500"))
MAX_QUEUE = 8192
#: Required sustained-rate ratio of slo vs fixed on a quiet machine; CI
#: smoke sets 0 (shared runners cannot hold a latency claim).
MIN_RATIO = 0.0 if SMOKE else float(os.environ.get("SLO_RATIO_FLOOR", "1.2"))
#: Alternative gate (the iso-throughput clause): at the highest rate both
#: policies fully serve, the SLO policy's p99 must be this many times
#: lower than the fixed window's, at >= 90% of its throughput.
MIN_P99_IMPROVEMENT = float(os.environ.get("SLO_P99_FLOOR", "1.5"))
MIN_SUCCESS = 0.99


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    return engine_compile(DONN(config), batch_size=64, dtype=DTYPE)


def _measure_capacity(session) -> float:
    """Images/sec of back-to-back fused calls at B=32 (the supply side)."""
    batch = np.random.default_rng(0).uniform(size=(32, SYS_SIZE, SYS_SIZE))
    session.run(batch)  # warm FFT plans
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < 0.5:
        session.run(batch)
        calls += 1
    return 32 * calls / (time.perf_counter() - start)


def _policies() -> dict:
    """Fresh policy instances per sweep point (policies are stateful)."""
    return {
        "fixed": lambda: FixedWindowPolicy(max_batch=32, max_wait_ms=2.0),
        "slo": lambda: SLOAwarePolicy(slo_ms=SLO_MS, max_batch=64),
        "adaptive": lambda: AdaptivePolicy(max_batch=64, max_wait_ms=2.0),
    }


def _run_point(session, policy_factory, rate_rps: float, payloads) -> LoadResult:
    """One (policy, arrival-rate) sweep point on a fresh server."""

    async def drive():
        server = InferenceServer(policy=policy_factory, max_queue=MAX_QUEUE)
        server.add_model("bench", session)
        async with server:
            # Warm the path (and the SLO policy's latency model) with a
            # short burst that is not measured.
            warm = payloads[: min(64, len(payloads))]
            await asyncio.gather(
                *(server.submit("bench", image) for image in warm), return_exceptions=True
            )
            return await run_open_loop(
                lambda image: server.submit("bench", image),
                payloads,
                rate_rps,
                np.random.default_rng(SEED + 1),
            )

    return asyncio.run(drive())


def _sweep():
    import gc

    session = _build_session()
    capacity = _measure_capacity(session)
    rng = np.random.default_rng(SEED)
    payloads = rng.uniform(0.0, 1.0, size=(NUM_REQUESTS, SYS_SIZE, SYS_SIZE))

    rows = []
    sustained = {}
    results = {}
    # GC pauses land in every policy's tail alike; freezing collection for
    # the sweep keeps the p99 about batching, not allocator luck.
    gc.collect()
    gc.disable()
    try:
        for name, factory in _policies().items():
            best = 0.0
            results[name] = {}
            for fraction in RATE_FRACTIONS:
                rate = capacity * fraction
                result = _run_point(session, factory, rate, payloads)
                results[name][fraction] = result
                ok = result.sustains(SLO_MS, MIN_SUCCESS)
                if ok:
                    best = max(best, rate)
                rows.append(
                    {
                        "policy": name,
                        "rate_fraction_of_capacity": fraction,
                        "slo_ms": SLO_MS,
                        "sustained": ok,
                        **result.row(),
                    }
                )
            sustained[name] = best
    finally:
        gc.enable()

    summary = {
        "policy": "summary",
        "sys_size": SYS_SIZE,
        "dtype": DTYPE,
        "capacity_images_per_sec": capacity,
        "slo_ms": SLO_MS,
        "min_success": MIN_SUCCESS,
        **{f"max_sustained_rps_{name}": rate for name, rate in sustained.items()},
    }
    if sustained.get("fixed", 0.0) > 0.0:
        summary["slo_vs_fixed_sustained_ratio"] = sustained["slo"] / sustained["fixed"]
    iso = _iso_throughput_point(results)
    if iso is not None:
        fraction, fixed_point, slo_point = iso
        summary.update(
            iso_rate_fraction=fraction,
            iso_fixed_p99_ms=fixed_point.percentile(99),
            iso_slo_p99_ms=slo_point.percentile(99),
            iso_p99_improvement=fixed_point.percentile(99) / slo_point.percentile(99),
            iso_throughput_ratio=slo_point.achieved_rate / fixed_point.achieved_rate,
        )
    rows.append(summary)
    return rows, sustained, summary


def _iso_throughput_point(results):
    """Highest swept rate at which *both* policies answer >= MIN_SUCCESS.

    This is where the acceptance criterion's iso-throughput clause is
    evaluated: equal offered (and, checked in ``_check``, near-equal
    achieved) throughput -- how do the tails compare?
    """
    for fraction in sorted(RATE_FRACTIONS, reverse=True):
        fixed_point = results.get("fixed", {}).get(fraction)
        slo_point = results.get("slo", {}).get(fraction)
        if fixed_point is None or slo_point is None:
            continue
        if fixed_point.success_rate >= MIN_SUCCESS and slo_point.success_rate >= MIN_SUCCESS:
            return fraction, fixed_point, slo_point
    return None


def _check(rows, sustained, summary) -> None:
    for name, best in sustained.items():
        assert best > 0.0, f"policy {name!r} sustained no swept rate under the {SLO_MS}ms SLO"
    if SMOKE:
        return
    # The acceptance gate, matching the issue's either/or phrasing:
    # >= MIN_RATIO sustained arrival rate at the equal p99 budget, OR
    # near-equal throughput at a >= MIN_P99_IMPROVEMENT lower p99.
    sustained_ratio = sustained["slo"] / sustained["fixed"]
    if sustained_ratio >= MIN_RATIO:
        return
    p99_improvement = summary.get("iso_p99_improvement", 0.0)
    throughput_ratio = summary.get("iso_throughput_ratio", 0.0)
    assert p99_improvement >= MIN_P99_IMPROVEMENT and throughput_ratio >= 0.9, (
        f"SLOAwarePolicy sustained only {sustained_ratio:.2f}x the fixed window's arrival rate "
        f"(floor {MIN_RATIO}x) and its iso-throughput p99 improvement is "
        f"{p99_improvement:.2f}x at {throughput_ratio:.2f}x throughput "
        f"(floors {MIN_P99_IMPROVEMENT}x at 0.9x)"
    )


def _notes() -> str:
    return (
        f"Open-loop Poisson load against a {NUM_LAYERS}-layer DONN at sys_size {SYS_SIZE} "
        f"({DTYPE} engine), {NUM_REQUESTS} offered requests per point.  A rate is 'sustained' "
        f"when p99 latency (clocked from the scheduled arrival instant) stays <= {SLO_MS}ms "
        f"and >= {MIN_SUCCESS:.0%} of offered requests are answered.  fixed = "
        "FixedWindowPolicy(max_batch=32, max_wait_ms=2); slo = SLOAwarePolicy (deadlines + "
        "EWMA latency model + shedding); adaptive = AdaptivePolicy (AIMD on queue depth).  "
        "The summary row's iso_* fields compare the tails at the highest rate both fixed and "
        "slo fully serve -- the issue's 'equal throughput at a lower p99' clause."
    )


def test_slo_serving(benchmark):
    rows, sustained, summary = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("SLO serving: policies under open-loop Poisson load", rows, _notes())
    save_results(
        "slo_serving_smoke" if SMOKE else "slo_serving", rows, _notes(), metadata=run_metadata(SEED)
    )
    _check(rows, sustained, summary)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke run
    rows, sustained, summary = _sweep()
    report("SLO serving: policies under open-loop Poisson load", rows, _notes())
    if "--no-save" not in sys.argv:
        save_results(
            "slo_serving_smoke" if SMOKE else "slo_serving", rows, _notes(), metadata=run_metadata(SEED)
        )
    _check(rows, sustained, summary)
    print(f"max sustained rps: {sustained}")
    if "iso_p99_improvement" in summary:
        print(
            f"iso-throughput point ({summary['iso_rate_fraction']:.2f}x capacity): "
            f"p99 {summary['iso_slo_p99_ms']:.1f} ms (slo) vs {summary['iso_fixed_p99_ms']:.1f} ms (fixed), "
            f"{summary['iso_p99_improvement']:.2f}x lower at {summary['iso_throughput_ratio']:.2f}x throughput"
        )
