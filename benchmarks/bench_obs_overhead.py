"""Observability overhead: serving with tracing on vs sampled out.

``repro.obs`` promises to be *always-on cheap*: with ``sample_rate=0``
the instrumentation sites see ``None`` and allocate nothing, and with
``sample_rate=1.0`` the full span pipeline (gateway decode/encode spans,
queue spans, the shared batch span, dispatch + stitched compute spans,
the trace ring) must cost less than **3%** of end-to-end latency.  This
benchmark measures that promise with the open-loop Poisson generator
driving the same :class:`~repro.serve.InferenceServer` twice over an
identical arrival schedule:

* **obs_off** -- a tracer with ``sample_rate=0.0``: every request takes
  the sampled-out branch (one comparison, no allocation), which is the
  deployed shape when tracing is disabled.
* **obs_on** -- ``sample_rate=1.0``: every request mints a trace, the
  batcher/cluster layers hang spans off it, and the finished trace is
  filed into the ring buffer.

Both modes run the *same* submit wrapper (mint-or-skip, install, finish)
so the comparison isolates the cost of live spans rather than the cost
of calling the tracer at all.  Reported per mode and rate: p50/p95/p99
latency and achieved images/sec; the summary row records the p50
overhead factor per rate.

The <3% gate is an acceptance criterion but it is only *armed* when the
host has >= ``GATE_MIN_CORES`` (default 4) usable cores: on a one-core
CI container the load generator, batcher and engine fight for the same
core and scheduling jitter alone exceeds 3%, so the run records its
numbers honestly (``gate_armed: false`` in the summary) without failing.
``--smoke`` (or ``OBS_BENCH_SMOKE=1``) shrinks the sweep for CI and only
checks that both modes complete cleanly.

Run directly (``python benchmarks/bench_obs_overhead.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_obs_overhead.py -s``).
"""

from __future__ import annotations

import asyncio
import gc
import os
import sys

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import LoadResult, run_metadata, run_open_loop, usable_cores
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.obs import Tracer, use_trace
from repro.serve import InferenceServer

SMOKE = bool(int(os.environ.get("OBS_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
SEED = int(os.environ.get("OBS_BENCH_SEED", cli_value("--seed", "42")))
SYS_SIZE = int(os.environ.get("OBS_BENCH_SYS_SIZE", "32" if SMOKE else "64"))
NUM_LAYERS = 5
RATE_FRACTIONS = (0.3,) if SMOKE else (0.2, 0.3)
NUM_REQUESTS = int(os.environ.get("OBS_BENCH_REQUESTS", "150" if SMOKE else "500"))
#: Repetitions per (mode, rate) point; each point reports its median-p50
#: repetition so one machine stall cannot decide a 3% comparison.
NUM_REPS = 1 if SMOKE else 5
#: The acceptance bound: obs_on p50 within this factor of obs_off p50.
OVERHEAD_LIMIT = float(os.environ.get("OBS_OVERHEAD_LIMIT", "1.03"))
#: The gate needs cores to spare -- below this, scheduling jitter on the
#: shared core swamps a 3% effect and the numbers are recorded un-gated.
GATE_MIN_CORES = int(os.environ.get("OBS_GATE_MIN_CORES", "4"))
MAX_BATCH = 32
MAX_WAIT_MS = 5.0
MAX_QUEUE = 4096


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    return engine_compile(DONN(config), batch_size=MAX_BATCH, dtype="complex128")


def _measure_capacity(session) -> float:
    """Images/sec of back-to-back fused calls at B=32 (the supply side)."""
    import time

    batch = np.random.default_rng(0).uniform(size=(MAX_BATCH, SYS_SIZE, SYS_SIZE))
    session.run(batch)  # warm FFT plans
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < 0.5:
        session.run(batch)
        calls += 1
    return MAX_BATCH * calls / (time.perf_counter() - start)


def _run_mode(session, sample_rate: float, rate_rps: float, payloads) -> LoadResult:
    """One open-loop run with the given tracer sample rate.

    The submit wrapper mirrors the gateway's instrumentation exactly:
    mint (or skip) a trace, install it so the batcher hangs spans off
    it, await the inference, finish and file the trace.
    """
    tracer = Tracer(sample_rate=sample_rate)

    async def drive():
        server = InferenceServer(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, max_queue=MAX_QUEUE)
        server.add_model("bench", session)

        async def submit(image):
            trace = tracer.trace()
            if trace is None:
                return await server.submit("bench", image)
            try:
                with use_trace(trace):
                    return await server.submit("bench", image)
            finally:
                tracer.finish(trace)

        async with server:
            warm = payloads[: min(32, len(payloads))]
            await asyncio.gather(*(submit(image) for image in warm), return_exceptions=True)
            return await run_open_loop(
                submit, payloads, rate_rps, np.random.default_rng(SEED + 1)
            )

    return asyncio.run(drive())


def _sweep():
    session = _build_session()
    capacity = _measure_capacity(session)
    rng = np.random.default_rng(SEED)
    payloads = np.round(rng.uniform(0.0, 1.0, size=(NUM_REQUESTS, SYS_SIZE, SYS_SIZE)), 3)

    modes = {"obs_off": 0.0, "obs_on": 1.0}
    rows = []
    results = {}
    all_reps = []
    gc.collect()
    gc.disable()
    try:
        # Unmeasured warm-up per mode: first asyncio.run pays one-time
        # costs (executor spin-up) that would land as a fake outlier.
        for sample_rate in modes.values():
            _run_mode(session, sample_rate, capacity * RATE_FRACTIONS[0], payloads[:40])
        for fraction in RATE_FRACTIONS:
            rate = capacity * fraction
            for mode, sample_rate in modes.items():
                reps = [_run_mode(session, sample_rate, rate, payloads) for _ in range(NUM_REPS)]
                all_reps.extend((mode, fraction, rep) for rep in reps)
                result = sorted(reps, key=lambda r: r.percentile(50))[NUM_REPS // 2]
                results[(mode, fraction)] = result
                rows.append(
                    {
                        "mode": mode,
                        "rate_fraction_of_capacity": fraction,
                        "reps": NUM_REPS,
                        **result.row(),
                    }
                )
    finally:
        gc.enable()

    gate_armed = not SMOKE and usable_cores() >= GATE_MIN_CORES
    summary = {
        "mode": "summary",
        "sys_size": SYS_SIZE,
        "num_layers": NUM_LAYERS,
        "capacity_images_per_sec": capacity,
        "overhead_limit_factor": OVERHEAD_LIMIT,
        "gate_armed": gate_armed,
        "gate_min_cores": GATE_MIN_CORES,
        "usable_cores": usable_cores(),
    }
    for fraction in RATE_FRACTIONS:
        off = results[("obs_off", fraction)]
        on = results[("obs_on", fraction)]
        if off.completed and on.completed:
            summary[f"p50_overhead_factor_at_{fraction}"] = on.percentile(50) / off.percentile(50)
            summary[f"p99_overhead_factor_at_{fraction}"] = on.percentile(99) / off.percentile(99)
    rows.append(summary)
    return rows, results, summary, all_reps


def _check(results, summary, all_reps) -> None:
    for mode, fraction, rep in all_reps:
        assert rep.errors == 0, f"{mode} at {fraction}x capacity hit {rep.errors} errors"
        assert rep.completed > 0, f"{mode} at {fraction}x capacity completed nothing"
    if not summary["gate_armed"]:
        return
    for fraction in RATE_FRACTIONS:
        factor = summary.get(f"p50_overhead_factor_at_{fraction}")
        assert factor is not None and factor <= OVERHEAD_LIMIT, (
            f"tracing adds {100 * (factor - 1):.1f}% p50 latency at {fraction}x capacity "
            f"(limit {100 * (OVERHEAD_LIMIT - 1):.0f}%)"
        )


def _notes() -> str:
    return (
        f"Open-loop Poisson load against a {NUM_LAYERS}-layer DONN at sys_size {SYS_SIZE} "
        f"(complex128 engine), {NUM_REQUESTS} offered requests per point, identical arrival "
        f"schedules per mode; each point reports the median-p50 repetition of {NUM_REPS} "
        "run(s).  obs_off runs a tracer at sample_rate=0 (the sampled-out branch: no "
        "allocation); obs_on runs sample_rate=1.0 (full span pipeline: request, queue, "
        "batch, dispatch and compute spans plus the trace ring).  Both modes share the "
        "mint-install-finish submit wrapper so the difference isolates live-span cost.  "
        f"The <{100 * (OVERHEAD_LIMIT - 1):.0f}% p50 gate arms only with >= "
        f"{GATE_MIN_CORES} usable cores -- on fewer, scheduler jitter on the shared core "
        "exceeds the bound and the run records its factors honestly without failing."
    )


def test_obs_overhead(benchmark):
    rows, results, summary, all_reps = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("Observability overhead: tracing on vs sampled out", rows, _notes())
    save_results(
        "obs_overhead_smoke" if SMOKE else "obs_overhead",
        rows,
        _notes(),
        metadata=run_metadata(SEED),
    )
    _check(results, summary, all_reps)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke run
    rows, results, summary, all_reps = _sweep()
    report("Observability overhead: tracing on vs sampled out", rows, _notes())
    if "--no-save" not in sys.argv:
        save_results(
            "obs_overhead_smoke" if SMOKE else "obs_overhead",
            rows,
            _notes(),
            metadata=run_metadata(SEED),
        )
    _check(results, summary, all_reps)
    for key, value in summary.items():
        if key.endswith(tuple(f"_{f}" for f in RATE_FRACTIONS)) and isinstance(value, float):
            print(f"{key}: {value:.3f}x")
