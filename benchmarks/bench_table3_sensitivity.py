"""Table 3: single-parameter sensitivity around the DSE-chosen design point.

The paper shifts the best design by +/-5% and +/-10% in wavelength,
diffraction distance and unit size (one at a time); the unit size turns
out to be by far the most sensitive parameter.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results
from repro.dse import sensitivity_analysis
from repro.dse.sensitivity import most_sensitive_parameter
from repro.dse.space import diffraction_spread_units

WAVELENGTH = 532e-9
UNIT_SIZE = 36e-6


def _best_distance() -> float:
    """Distance that puts the DSE-chosen point at the peak of the landscape."""
    theta = np.arcsin(WAVELENGTH / (2 * UNIT_SIZE))
    return 30.0 * UNIT_SIZE / np.tan(theta)


def test_table3_sensitivity(benchmark):
    distance = _best_distance()
    rows_raw = benchmark.pedantic(
        lambda: sensitivity_analysis(WAVELENGTH, UNIT_SIZE, distance), rounds=1, iterations=1
    )
    rows = [
        {
            "parameter": row.parameter,
            "shift_%": row.shift * 100,
            "value": row.value,
            "accuracy": row.accuracy,
        }
        for row in rows_raw
    ]
    notes = (
        "Paper: +/-5% unit-size shifts drop accuracy to ~0.30 while wavelength/distance shifts drop it "
        "to ~0.70.  Reproduced shape: unit size is the most sensitive parameter (its accuracy drop is the "
        "largest); absolute drop magnitudes are smaller because the analytical surrogate is smoother than "
        "the trained-model landscape."
    )
    report("Table 3: sensitivity analysis", rows, notes)
    save_results("table3_sensitivity", rows, notes)

    assert most_sensitive_parameter(rows_raw) == "unit_size"

    # The physical driver: a unit-size shift changes the connectivity spread
    # quadratically, wavelength/distance shifts only linearly.
    nominal = diffraction_spread_units(WAVELENGTH, UNIT_SIZE, distance)
    unit_shifted = diffraction_spread_units(WAVELENGTH, UNIT_SIZE * 1.05, distance)
    distance_shifted = diffraction_spread_units(WAVELENGTH, UNIT_SIZE, distance * 1.05)
    assert abs(unit_shifted - nominal) > abs(distance_shifted - nominal)
