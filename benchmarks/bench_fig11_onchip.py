"""Figure 11 / Section 5.5: monolithic on-chip DONN integration case study.

The paper fixes the CMOS pixel pitch (3.45 um, CS165MU1) and the 532 nm
source, asks the DSE engine for a distance/resolution pair, trains the
model, and reports the integrated chip dimensions (690 x 690 um footprint,
~2.7 mm stack for 5 layers at 532 um spacing).  This benchmark reproduces
the arithmetic exactly and the accuracy at a scaled-down resolution.
"""

from __future__ import annotations


from _bench_helpers import report, save_results
from repro import DONNConfig, Trainer, load_digits
from repro.baselines.regularization import build_regularized_donn
from repro.dse.space import diffraction_spread_units
from repro.hardware import OnChipIntegrationSpec, design_onchip_system

PIXEL_PITCH = 3.45e-6
WAVELENGTH = 532e-9


def test_fig11_onchip_integration(benchmark):
    # The paper's chosen geometry, for the dimension arithmetic.
    paper_config = DONNConfig(
        sys_size=200, pixel_size=PIXEL_PITCH, distance=532e-6, wavelength=WAVELENGTH, num_layers=5
    )
    paper_spec = OnChipIntegrationSpec(config=paper_config)

    # DSE under the chip constraint, then a scaled-down training run.
    dataset = load_digits(num_train=200, num_test=60, size=64, seed=6)

    def experiment():
        spec = design_onchip_system(pixel_size=PIXEL_PITCH, wavelength=WAVELENGTH, num_layers=5)
        config = spec.config.with_updates(sys_size=64, num_layers=3, det_size=8, num_classes=10)
        model = build_regularized_donn(config, dataset[0][:8])
        trainer = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=40, seed=0)
        result = trainer.fit(dataset[0], dataset[1], epochs=6, test_images=dataset[2], test_labels=dataset[3])
        return spec, result

    spec, result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    dims = paper_spec.dimensions()
    rows = [
        {"quantity": "paper geometry: chip footprint (um)", "value": dims["side_um"]},
        {"quantity": "paper geometry: stack height (um)", "value": dims["height_um"]},
        {"quantity": "paper geometry: fits 1x1 mm detector die", "value": float(paper_spec.fits_detector(1e-3))},
        {"quantity": "DSE-chosen layer spacing (um)", "value": spec.config.distance * 1e6},
        {"quantity": "DSE-chosen spacing: connectivity spread (units)", "value": diffraction_spread_units(WAVELENGTH, PIXEL_PITCH, spec.config.distance)},
        {"quantity": "emulation accuracy at on-chip geometry (scaled 64^2)", "value": result.final_test_accuracy},
    ]
    notes = (
        "Paper: 3.45 um pitch at 200^2 gives a 690 x 690 um footprint, DSE returns a 532 um layer "
        "spacing, and the integrated 5-layer DONN reaches 92% emulation accuracy.  Reproduced: the "
        "footprint arithmetic matches exactly; DSE picks a sub-millimetre spacing with a moderate "
        "connectivity spread; the scaled-down training run reaches well-above-chance accuracy."
    )
    report("Figure 11 / Section 5.5: on-chip integration", rows, notes)
    save_results("fig11_onchip", rows, notes)

    assert dims["side_um"] == 690.0
    assert paper_spec.fits_detector(1e-3)
    assert 1e-5 < spec.config.distance < 5e-3
    assert result.final_test_accuracy > 0.4
