"""Serving throughput: dynamic batching vs sequential per-request engine calls.

The roadmap's "heavy traffic" scenario: many concurrent clients each ask
for one image at a time.  Without batching every request pays the fixed
per-invocation cost of an engine call (python dispatch, FFT plan lookup,
encode) plus the serving stack's dispatch overhead; ``repro.serve``
coalesces concurrent requests into fused batched engine calls, amortizing
both.  This load generator runs closed-loop clients (each client submits
one request, awaits the answer, repeats) in three modes:

* **sequential_direct** -- a plain python loop of single-image engine
  calls, no serving stack at all: the hard floor, reported for
  transparency (it has zero dispatch overhead but also zero concurrency,
  backpressure or multi-tenancy).
* **sequential_serving** -- the same :class:`~repro.serve.InferenceServer`
  with ``max_batch=1``: sequential per-request engine calls as they
  actually manifest under concurrent clients.  This is the unbatched
  baseline the speedup gate compares against (identical infrastructure,
  coalescing off).
* **dynamic_batching** -- coalescing on (``max_batch``/``max_wait_ms``,
  idle-flush continuous batching).

It reports p50/p99 request latency and images/sec for each mode, asserts
the scattered results still match a direct engine run, and gates on a
minimum batched-vs-unbatched speedup.  On a quiet machine dynamic
batching is >= 1.5x at sys_size 64 under >= 8 concurrent clients (the
committed ``benchmarks/results/serving_throughput.json`` shows ~1.8x);
shared CI runners set a lower floor via ``SERVING_SPEEDUP_FLOOR``.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from _bench_helpers import report, save_results
from loadgen import run_metadata
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.serve import InferenceServer

#: Payload-content seed; recorded in the committed results JSON.
SEED = int(os.environ.get("SERVING_BENCH_SEED", "42"))
SYS_SIZE = int(os.environ.get("SERVING_BENCH_SYS_SIZE", "64"))
NUM_LAYERS = 5
NUM_CLIENTS = int(os.environ.get("SERVING_BENCH_CLIENTS", "16"))
REQUESTS_PER_CLIENT = int(os.environ.get("SERVING_BENCH_REQUESTS", "24"))
# The serving-optimized engine configuration: reduced precision is the
# mode a throughput-bound deployment would pick, and every mode below
# uses the same session, so the speedup isolates batching alone.
DTYPE = os.environ.get("SERVING_BENCH_DTYPE", "complex64")
MAX_BATCH = 32
MAX_WAIT_MS = 5.0
# Continuous-batching mode: flush as soon as the queue drains.  Fusion
# then comes from requests piling up while the engine executes the
# previous batch, which is the optimal policy for closed-loop clients.
IDLE_FLUSH_MS = float(os.environ.get("SERVING_BENCH_IDLE_FLUSH_MS", "0"))
MAX_QUEUE = 2048
# Best-of-N rounds per mode: the standard guard against scheduler noise
# on shared machines (parity is asserted on every round regardless).
ROUNDS = int(os.environ.get("SERVING_BENCH_ROUNDS", "3"))
# >= 1.5x is the claim on a quiet machine (committed results); CI smoke
# only asserts batched >= unbatched because shared runners are noisy.
MIN_SPEEDUP = float(os.environ.get("SERVING_SPEEDUP_FLOOR", "1.5"))
# Scatter/routing errors show up as O(1) logit differences; the tolerance
# only needs to absorb dtype-dependent FFT chunking noise.
PARITY_ATOL = 1e-9 if DTYPE == "complex128" else 1e-3


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    model = DONN(config)
    return model, engine_compile(model, batch_size=MAX_BATCH, dtype=DTYPE)


def _make_requests(rng) -> np.ndarray:
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT
    return rng.uniform(0.0, 1.0, size=(total, SYS_SIZE, SYS_SIZE))


def _percentiles(latencies) -> dict:
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_latency_ms": float(np.percentile(array, 50)),
        "p99_latency_ms": float(np.percentile(array, 99)),
    }


def _run_direct(session, requests: np.ndarray):
    """No serving stack: a bare loop of single-image engine calls."""
    latencies = []
    outputs = []
    start = time.perf_counter()
    for image in requests:
        tick = time.perf_counter()
        outputs.append(session.run(image))
        latencies.append(time.perf_counter() - tick)
    elapsed = time.perf_counter() - start
    return np.stack(outputs), latencies, elapsed, None


def _run_serving(session, requests: np.ndarray, max_batch: int):
    """Closed-loop clients against the server (batching on or off)."""

    async def load():
        server = InferenceServer(
            max_batch=max_batch, max_wait_ms=MAX_WAIT_MS, max_queue=MAX_QUEUE, idle_flush_ms=IDLE_FLUSH_MS
        )
        server.add_model("bench", session)
        latencies = []
        outputs = [None] * len(requests)

        async def client(client_index: int):
            for turn in range(REQUESTS_PER_CLIENT):
                index = client_index * REQUESTS_PER_CLIENT + turn
                tick = time.perf_counter()
                outputs[index] = await server.submit("bench", requests[index])
                latencies.append(time.perf_counter() - tick)

        async with server:
            start = time.perf_counter()
            await asyncio.gather(*(client(i) for i in range(NUM_CLIENTS)))
            elapsed = time.perf_counter() - start
            stats = server.stats()["bench"].as_dict()
        return np.stack(outputs), latencies, elapsed, stats

    return asyncio.run(load())


def _best_of(run, *args):
    return min((run(*args) for _ in range(ROUNDS)), key=lambda result: result[2])


def _row(mode, outputs, latencies, elapsed, stats, reference, session):
    parity = float(np.abs(outputs - reference).max())
    assert parity <= PARITY_ATOL, f"{mode} results diverge from the engine: {parity:.3e}"
    row = {
        "mode": mode,
        "sys_size": SYS_SIZE,
        "clients": NUM_CLIENTS,
        "requests": len(reference),
        "images_per_sec": len(reference) / elapsed,
        **_percentiles(latencies),
        "parity_max_abs_error": parity,
        "fft_backend": session.backend_name,
        "dtype": DTYPE,
    }
    if stats is not None:
        row.update(
            max_wait_ms=MAX_WAIT_MS,
            idle_flush_ms=IDLE_FLUSH_MS,
            engine_calls=stats["batches"],
            mean_batch_size=stats["mean_batch_size"],
            largest_batch=stats["largest_batch"],
        )
    return row


def _sweep():
    rng = np.random.default_rng(SEED)
    model, session = _build_session()
    requests = _make_requests(rng)

    # Warm up FFT plans / caches on both paths before timing.
    session.run(requests[:MAX_BATCH])
    session.run(requests[0])
    reference = session.run(requests, batch_size=MAX_BATCH)

    direct = _best_of(_run_direct, session, requests)
    unbatched = _best_of(_run_serving, session, requests, 1)
    batched = _best_of(_run_serving, session, requests, MAX_BATCH)

    rows = [
        _row("sequential_direct", *direct, reference, session),
        _row("sequential_serving", *unbatched, reference, session),
        _row("dynamic_batching", *batched, reference, session),
    ]
    by_mode = {row["mode"]: row for row in rows}
    batched_row = by_mode["dynamic_batching"]
    batched_row["max_batch"] = MAX_BATCH
    batched_row["speedup_vs_sequential_serving"] = (
        batched_row["images_per_sec"] / by_mode["sequential_serving"]["images_per_sec"]
    )
    batched_row["speedup_vs_direct_loop"] = (
        batched_row["images_per_sec"] / by_mode["sequential_direct"]["images_per_sec"]
    )
    return rows


def test_serving_throughput(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    notes = (
        f"Closed-loop load: {NUM_CLIENTS} concurrent clients x {REQUESTS_PER_CLIENT} single-image "
        f"requests against a {NUM_LAYERS}-layer DONN at sys_size {SYS_SIZE} ({DTYPE} engine).  "
        "sequential_direct = bare per-image engine loop (no serving stack); sequential_serving = "
        "the server with max_batch=1 (per-request engine calls, coalescing off); dynamic_batching = "
        f"coalescing on (max_batch={MAX_BATCH}, idle-flush continuous batching).  The speedup gate "
        "compares batching on vs off through the identical serving stack; every mode's scattered "
        f"results are asserted equal to direct engine output within {PARITY_ATOL:g}."
    )
    report("Serving throughput: sequential vs dynamic batching", rows, notes)
    save_results("serving_throughput", rows, notes, metadata=run_metadata(SEED))

    batched = next(row for row in rows if row["mode"] == "dynamic_batching")
    assert batched["mean_batch_size"] > 1.0, "the load generator never coalesced anything"
    assert batched["speedup_vs_sequential_serving"] >= MIN_SPEEDUP, (
        f"dynamic batching speedup is {batched['speedup_vs_sequential_serving']:.2f}x over the "
        f"unbatched serving baseline, expected >= {MIN_SPEEDUP}x"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    for line in _sweep():
        print(line)
