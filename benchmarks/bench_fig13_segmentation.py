"""Figure 13: all-optical image segmentation with optical skip connections.

The advanced architecture (optical skip connection + training-time layer
norm) is compared against the paper's baseline (no skip, no norm, prior
training method) on building/background segmentation; the advanced model
should produce better masks (higher IoU), especially for fine structure.
"""

from __future__ import annotations


from _bench_helpers import report, save_results
from repro import DONNConfig, SegmentationDONN, SegmentationTrainer, load_segmentation_scenes
from repro.train import intersection_over_union
from repro.train.metrics import pixel_accuracy

SIZE = 48
EPOCHS = 5


def test_fig13_segmentation(benchmark):
    images, masks = load_segmentation_scenes(num_samples=88, size=SIZE, seed=0)
    train_images, train_masks = images[:72], masks[:72]
    test_images, test_masks = images[72:], masks[72:]
    config = DONNConfig(
        sys_size=SIZE,
        pixel_size=36e-6,
        distance=0.08,
        wavelength=532e-9,
        num_layers=5,
        amplitude_factor=0.9,
        seed=0,
    )

    def run(use_skip: bool, use_layer_norm: bool):
        model = SegmentationDONN(config, use_skip=use_skip, use_layer_norm=use_layer_norm)
        trainer = SegmentationTrainer(model, learning_rate=0.2, batch_size=8, seed=0)
        trainer.fit(train_images, train_masks, epochs=EPOCHS)
        predicted = model.predict_mask(test_images)
        return {
            "iou": intersection_over_union(predicted, test_masks),
            "pixel_accuracy": pixel_accuracy(predicted, test_masks),
        }

    def experiment():
        advanced = run(use_skip=True, use_layer_norm=True)
        baseline = run(use_skip=False, use_layer_norm=False)
        skip_only = run(use_skip=True, use_layer_norm=False)
        return advanced, baseline, skip_only

    advanced, baseline, skip_only = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        {"model": "skip connection + layer norm (ours)", **advanced},
        {"model": "skip connection only (ablation)", **skip_only},
        {"model": "baseline (no skip, no norm) [Lin/Zhou style]", **baseline},
    ]
    notes = (
        "Paper: the advanced architecture produces visibly better edges and small-object masks than the "
        "baseline.  Reproduced: higher IoU / pixel accuracy for the skip+norm model on held-out scenes."
    )
    report("Figure 13: all-optical segmentation", rows, notes)
    save_results("fig13_segmentation", rows, notes)

    assert advanced["iou"] >= baseline["iou"]
    assert advanced["iou"] > 0.2  # produces meaningful masks, not noise
