"""Table 1: framework comparison -- emulation runtime and programming effort.

LightRidge vs. a LightPipes-style emulator on the same 5-layer DONN
emulation workload.  The runtime gap comes from batched, fused FFT tensor
kernels vs. per-sample DFT-matrix evaluation; the lines-of-code comparison
is reproduced as the number of user-facing calls needed to express the
workload in each API.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_helpers import report, save_results
from repro import DONN, DONNConfig
from repro.autograd import Tensor, no_grad
from repro.baselines import LightPipesEmulator


SYSTEM = DONNConfig(sys_size=96, pixel_size=36e-6, distance=0.1, num_layers=5, seed=0)
BATCH = 8


def _lightridge_runtime(model, fields: Tensor) -> float:
    with no_grad():
        model.detector_pattern(fields)  # warm-up
        start = time.perf_counter()
        model.detector_pattern(fields)
        return time.perf_counter() - start


def _lightpipes_runtime(emulator, fields, phases) -> float:
    start = time.perf_counter()
    emulator.run_donn(fields, phases)
    return time.perf_counter() - start


def test_table1_framework_comparison(benchmark):
    rng = np.random.default_rng(0)
    images = rng.uniform(size=(BATCH, SYSTEM.sys_size, SYSTEM.sys_size))
    model = DONN(SYSTEM)
    fields = model.encode(images)
    emulator = LightPipesEmulator(SYSTEM.grid, SYSTEM.wavelength, SYSTEM.distance)

    lightridge_seconds = benchmark.pedantic(
        lambda: _lightridge_runtime(model, fields), rounds=1, iterations=1
    )
    lightpipes_seconds = _lightpipes_runtime(emulator, list(fields.data), model.phase_patterns())

    # Programming-effort proxy: user-facing calls to express the 5-layer
    # emulation (LightRidge: config + model + forward = 3; LightPipes-style:
    # per-layer propagate + phase screen + final propagate + intensity, per sample).
    lightridge_loc = 3
    lightpipes_loc = BATCH * (2 * SYSTEM.num_layers + 2)

    rows = [
        {
            "framework": "LightRidge (this repo)",
            "optics_kernels": "yes",
            "dse": "yes",
            "relative_LoC": 1.0,
            "emulation_seconds": lightridge_seconds,
            "relative_runtime": 1.0,
        },
        {
            "framework": "LightPipes-style baseline",
            "optics_kernels": "yes",
            "dse": "no",
            "relative_LoC": lightpipes_loc / lightridge_loc,
            "emulation_seconds": lightpipes_seconds,
            "relative_runtime": lightpipes_seconds / max(lightridge_seconds, 1e-9),
        },
    ]
    notes = (
        "Paper: LightPipes needs ~2x the code and days of runtime vs minutes-hours for LightRidge "
        f"(5-layer workload).  Reproduced at {SYSTEM.sys_size}^2, batch {BATCH}."
    )
    report("Table 1: framework comparison", rows, notes)
    save_results("table1_framework_comparison", rows, notes)

    assert lightpipes_seconds > lightridge_seconds  # LightRidge strictly faster
    assert lightpipes_loc > lightridge_loc
