"""Figure 7: complex-valued regularization vs depth, and noise robustness.

Two claims are reproduced:

1. With the regularization factor gamma calibrated, DONN accuracy is high
   and roughly depth-independent, while the un-regularized baseline
   training (Lin/Zhou style) is much worse for shallow stacks.
2. Deeper DONNs produce higher prediction confidence and therefore degrade
   less under detector intensity noise (1%, 3%, 5%).
"""

from __future__ import annotations


from _bench_helpers import report, save_results, train_donn
from repro.train import evaluate_with_detector_noise

DEPTHS = (1, 3, 5)
NOISE_LEVELS = (0.01, 0.03, 0.05)
EPOCHS = 6


def test_fig07_regularization_and_noise(benchmark, bench_config, bench_digits):
    def experiment():
        rows = []
        models = {}
        for depth in DEPTHS:
            config = bench_config.with_updates(num_layers=depth)
            regularized_model, regularized = train_donn(bench_config.with_updates(num_layers=depth), bench_digits, epochs=EPOCHS)
            _, baseline = train_donn(config, bench_digits, epochs=EPOCHS, regularized=False)
            models[depth] = regularized_model
            rows.append(
                {
                    "depth": depth,
                    "regularized_accuracy": regularized.final_test_accuracy,
                    "baseline_accuracy": baseline.final_test_accuracy,
                }
            )
        return rows, models

    rows, models = benchmark.pedantic(experiment, rounds=1, iterations=1)

    _, _, test_x, test_y = bench_digits
    noise_rows = []
    for depth, model in models.items():
        entry = {"depth": depth}
        clean = evaluate_with_detector_noise(model, test_x, test_y, noise_level=0.0, seed=0)
        entry["clean_accuracy"] = clean["accuracy"]
        entry["confidence"] = clean["confidence"]
        for level in NOISE_LEVELS:
            noisy = evaluate_with_detector_noise(model, test_x, test_y, noise_level=level, seed=0)
            entry[f"accuracy_at_{int(level * 100)}pct_noise"] = noisy["accuracy"]
        noise_rows.append(entry)

    notes = (
        "Paper: regularized training beats the baseline by ~30 accuracy points for 1-layer DONNs and "
        "matches it for deep stacks; deeper DONNs are more confident and barely degrade under 5% "
        "detector noise while single-layer DONNs collapse."
    )
    report("Figure 7a: regularized vs baseline training across depth", rows, notes)
    report("Figure 7b: confidence / noise robustness vs depth", noise_rows)
    save_results("fig07_regularization", rows, notes)
    save_results("fig07_noise_robustness", noise_rows)

    by_depth = {row["depth"]: row for row in rows}
    # Regularization helps most for the shallow model (paper: +31 points at D=1).
    assert by_depth[1]["regularized_accuracy"] > by_depth[1]["baseline_accuracy"]
    # Regularized accuracy is roughly depth-independent (within 15 points here).
    regularized_values = [row["regularized_accuracy"] for row in rows]
    assert max(regularized_values) - min(regularized_values) < 0.3

    noise_by_depth = {row["depth"]: row for row in noise_rows}
    deep, shallow = noise_by_depth[max(DEPTHS)], noise_by_depth[min(DEPTHS)]
    # Deeper stacks are more confident and lose less accuracy at 5% noise.
    assert deep["confidence"] >= shallow["confidence"] - 0.05
    deep_drop = deep["clean_accuracy"] - deep["accuracy_at_5pct_noise"]
    shallow_drop = shallow["clean_accuracy"] - shallow["accuracy_at_5pct_noise"]
    assert deep_drop <= shallow_drop + 0.1
