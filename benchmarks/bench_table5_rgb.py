"""Table 5 / Figure 12: multi-channel RGB DONN scene classification.

The paper's RGB architecture (three parallel diffractive channels summed on
one detector, trained with the regularized loss) beats a baseline trained
with prior-work methods by ~29 top-1 points on Places365.  Reproduced on
the synthetic scene dataset: the RGB multi-channel model with calibrated
amplitude regularization vs a single-channel grey-scale model trained the
prior-work way (no regularization).

Scaling note: with the small synthetic dataset and CPU epoch budget the
softmax-MSE loss does not converge on this harder multi-class task, so both
systems are trained with cross entropy; the comparison isolates the
architectural contribution (three colour channels vs one) plus the
amplitude calibration, which is the Figure 12 claim.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results
from repro import DONNConfig, MultiChannelDONN, Trainer, load_scenes
from repro.autograd import no_grad
from repro.data import SCENE_CLASSES
from repro.train import top_k_accuracy

SIZE = 48
EPOCHS = 6


def _topk_scores(model, images, labels):
    model.eval()
    with no_grad():
        logits = np.asarray(model(images).data.real)
    model.train()
    return {
        "top1": top_k_accuracy(logits, labels, k=1),
        "top3": top_k_accuracy(logits, labels, k=3),
        "top5": top_k_accuracy(logits, labels, k=5),
    }


def _calibrate_gamma(config: DONNConfig, images: np.ndarray, num_channels: int, target: float = 1.0) -> float:
    """Amplitude-regularization calibration for the multi-channel model."""
    probe = MultiChannelDONN(config.with_updates(amplitude_factor=1.0), num_channels=num_channels)
    with no_grad():
        logits = np.asarray(probe(images).data.real)
    mean_max = float(logits.max(axis=-1).mean())
    return float((target / mean_max) ** (1.0 / (2.0 * (config.num_layers + 1))))


def test_table5_rgb_scene_classification(benchmark):
    num_classes = len(SCENE_CLASSES)
    train_x, train_y, test_x, test_y = load_scenes(
        num_train=240, num_test=60, size=SIZE, num_classes=num_classes, seed=0
    )
    config = DONNConfig(
        sys_size=SIZE,
        pixel_size=36e-6,
        distance=0.08,
        wavelength=532e-9,
        num_layers=3,
        num_classes=num_classes,
        det_size=6,
        seed=0,
    )

    def experiment():
        gamma = _calibrate_gamma(config, train_x[:8], num_channels=3)
        rgb_model = MultiChannelDONN(config.with_updates(amplitude_factor=gamma), num_channels=3)
        Trainer(
            rgb_model, num_classes=num_classes, learning_rate=0.1, batch_size=30, loss="cross_entropy", seed=0
        ).fit(train_x, train_y, epochs=EPOCHS)
        ours = _topk_scores(rgb_model, test_x, test_y)

        baseline_model = MultiChannelDONN(config.with_updates(amplitude_factor=1.0), num_channels=1)
        grey_train = train_x.mean(axis=1, keepdims=True)
        grey_test = test_x.mean(axis=1, keepdims=True)
        Trainer(
            baseline_model, num_classes=num_classes, learning_rate=0.1, batch_size=30, loss="cross_entropy", seed=0
        ).fit(grey_train, train_y, epochs=EPOCHS)
        baseline = _topk_scores(baseline_model, grey_test, test_y)
        return ours, baseline

    ours, baseline = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        {"model": "RGB multi-channel DONN (ours)", **ours},
        {"model": "single-channel baseline [Zhou et al. style]", **baseline},
    ]
    notes = (
        "Paper (Places365): ours 0.52/0.73/0.84 vs baseline 0.23/0.48/0.67 top-1/3/5.  Reproduced shape: "
        "the multi-channel regularized model beats the single-channel unregularized baseline on every "
        "top-k metric, with the largest margin at top-1."
    )
    report("Table 5: RGB scene classification", rows, notes)
    save_results("table5_rgb", rows, notes)

    assert ours["top1"] > baseline["top1"]
    assert ours["top3"] >= baseline["top3"] - 0.05
    assert ours["top5"] >= baseline["top5"] - 0.05
    assert ours["top1"] > 1.5 / num_classes  # clearly above chance
