"""Figure 10: training runtime scaling with DONN depth and system size.

The paper trains DONNs of up to 30 layers at up to 500^2 on one GPU and
observes (a) runtime growing almost linearly with depth and (b) a jump
when the system size exceeds the hardware's comfortable working set.
Here per-epoch training time is measured for depths {1, 3, 6, 10} at 48^2
and for 96^2 at depth 3 (scaled down, CPU).
"""

from __future__ import annotations

import time


from _bench_helpers import report, save_results
from repro import DONN, DONNConfig, Trainer, load_digits

DEPTHS = (1, 3, 6, 10)
SMALL_SIZE = 48
LARGE_SIZE = 96
SAMPLES = 40
BATCH = 10


def _epoch_seconds(size: int, depth: int, dataset) -> float:
    train_x, train_y = dataset
    config = DONNConfig(
        sys_size=size, pixel_size=36e-6, distance=0.1, num_layers=depth, det_size=6, seed=0, amplitude_factor=0.9
    )
    model = DONN(config)
    trainer = Trainer(model, num_classes=10, learning_rate=0.5, batch_size=BATCH, seed=0)
    start = time.perf_counter()
    trainer.train_epoch(train_x, train_y)
    return time.perf_counter() - start


def test_fig10_training_scaling(benchmark):
    small_x, small_y, _, _ = load_digits(num_train=SAMPLES, num_test=1, size=SMALL_SIZE, seed=0)
    large_x, large_y, _, _ = load_digits(num_train=SAMPLES, num_test=1, size=LARGE_SIZE, seed=0)

    def experiment():
        rows = []
        for depth in DEPTHS:
            rows.append(
                {
                    "system_size": SMALL_SIZE,
                    "depth": depth,
                    "epoch_seconds": _epoch_seconds(SMALL_SIZE, depth, (small_x, small_y)),
                }
            )
        rows.append(
            {
                "system_size": LARGE_SIZE,
                "depth": 3,
                "epoch_seconds": _epoch_seconds(LARGE_SIZE, 3, (large_x, large_y)),
            }
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    notes = (
        "Paper: per-epoch runtime grows ~linearly with depth (30-layer 500^2 trains in ~280 s/epoch on a "
        "3090 Ti) and jumps when the system size grows past the device's sweet spot.  Reproduced: runtime "
        "increases monotonically with depth and super-linearly with system size."
    )
    report("Figure 10: training runtime scaling", rows, notes)
    save_results("fig10_training_scaling", rows, notes)

    small_rows = [row for row in rows if row["system_size"] == SMALL_SIZE]
    times = [row["epoch_seconds"] for row in small_rows]
    assert times == sorted(times)  # monotone in depth
    # Depth-10 should cost several times depth-1 (roughly linear growth).
    assert times[-1] > 3.0 * times[0]
    # Quadrupling the pixel count at fixed depth costs more than 2x.
    large_row = [row for row in rows if row["system_size"] == LARGE_SIZE][0]
    depth3_small = [row for row in small_rows if row["depth"] == 3][0]
    assert large_row["epoch_seconds"] > 2.0 * depth3_small["epoch_seconds"]
