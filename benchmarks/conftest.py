"""Shared fixtures for the experiment-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md section 3 for the index).  Benchmarks print the reproduced
rows (run with ``-s`` to see them live) and also write them as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete numbers.

The experiments are scaled down (system size, dataset size, epochs) so the
full suite runs on a laptop-class CPU in minutes; the sweep axes and the
relative comparisons are preserved.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from _bench_helpers import train_donn
from repro import DONNConfig, load_digits, load_fashion

# Same convention as tests/conftest.py: CI pins the global RNGs so the
# benchmark smoke job is reproducible run to run.
if os.environ.get("DERANDOMIZE_CI"):
    np.random.seed(20230423)
    random.seed(20230423)


@pytest.fixture(scope="session")
def bench_digits():
    """Digit dataset at the benchmark system size (64 x 64)."""
    return load_digits(num_train=250, num_test=80, size=64, seed=11)


@pytest.fixture(scope="session")
def bench_fashion():
    return load_fashion(num_train=250, num_test=80, size=64, seed=11)


@pytest.fixture(scope="session")
def bench_config():
    """The scaled-down Section 5.1 system used by most training benchmarks."""
    return DONNConfig(
        sys_size=64,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=3,
        num_classes=10,
        det_size=8,
        seed=0,
    )


@pytest.fixture(scope="session")
def trained_reference_donn(bench_config, bench_digits):
    """A trained 3-layer DONN shared by the deployment-oriented benchmarks."""
    model, result = train_donn(bench_config, bench_digits, epochs=8)
    return model, result
