"""Figure 8: runtime speedup breakdown over the three DONN kernels.

The paper decomposes DONN emulation into FFT2, iFFT2 and complex
multiplication, and reports per-kernel speedups of the optimised tensor
implementation over LightPipes (11x / 10x / 4x on CPU, 6.4x overall).
Here the same decomposition is measured: the LightPipes-style baseline
times its DFT-matrix transforms and unfused multiplies, and the optimised
path times numpy's pocketfft-based batched FFTs and fused complex ops.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_helpers import report, save_results
from repro.baselines import LightPipesEmulator
from repro.optics import RayleighSommerfeldPropagator, SpatialGrid

SIZE = 256
LAYERS = 5
BATCH = 4
WAVELENGTH = 532e-9
DISTANCE = 0.1


def _optimised_kernel_times(grid: SpatialGrid, fields: np.ndarray, phases, transfer: np.ndarray):
    """Time the three tensor kernels over the same workload as the baseline."""
    times = {"fft2": 0.0, "ifft2": 0.0, "complex_multiply": 0.0}
    current = fields.copy()
    for phase in list(phases) + [None]:
        start = time.perf_counter()
        spectrum = np.fft.fft2(current, axes=(-2, -1))
        times["fft2"] += time.perf_counter() - start

        start = time.perf_counter()
        spectrum *= transfer
        times["complex_multiply"] += time.perf_counter() - start

        start = time.perf_counter()
        current = np.fft.ifft2(spectrum, axes=(-2, -1))
        times["ifft2"] += time.perf_counter() - start

        if phase is not None:
            start = time.perf_counter()
            current *= np.exp(1j * phase)
            times["complex_multiply"] += time.perf_counter() - start
    return times


def test_fig08_kernel_breakdown(benchmark):
    rng = np.random.default_rng(0)
    grid = SpatialGrid(size=SIZE, pixel_size=36e-6)
    fields = rng.normal(size=(BATCH, SIZE, SIZE)) + 0j
    phases = [rng.uniform(0, 2 * np.pi, size=(SIZE, SIZE)) for _ in range(LAYERS)]
    propagator = RayleighSommerfeldPropagator(grid, WAVELENGTH, DISTANCE)
    transfer = propagator.transfer_function

    emulator = LightPipesEmulator(grid, WAVELENGTH, DISTANCE)
    emulator.run_donn(list(fields), phases)  # warm-up
    emulator.reset_timings()
    emulator.run_donn(list(fields), phases)
    baseline_times = emulator.timings.as_dict()

    optimised_times = benchmark.pedantic(
        lambda: _optimised_kernel_times(grid, fields, phases, transfer), rounds=1, iterations=1
    )

    rows = []
    for kernel in ("fft2", "ifft2", "complex_multiply"):
        rows.append(
            {
                "kernel": kernel,
                "baseline_seconds": baseline_times[kernel],
                "optimised_seconds": optimised_times[kernel],
                "speedup": baseline_times[kernel] / max(optimised_times[kernel], 1e-9),
            }
        )
    overall = sum(baseline_times.values()) / max(sum(optimised_times.values()), 1e-9)
    rows.append({"kernel": "overall", "speedup": overall})

    notes = (
        "Paper (CPU, 5-layer 500^2): FFT2 11x, iFFT2 10x, complex MM 4x, overall 6.4x.  "
        f"Reproduced at {SIZE}^2, batch {BATCH}: the transforms dominate and gain the most; the "
        "element-wise multiply gains less; overall speedup is several-fold."
    )
    report("Figure 8: kernel-level speedup breakdown", rows, notes)
    save_results("fig08_kernel_breakdown", rows, notes)

    by_kernel = {row["kernel"]: row for row in rows}
    assert by_kernel["fft2"]["speedup"] > 1.5
    assert by_kernel["ifft2"]["speedup"] > 1.5
    assert by_kernel["overall"]["speedup"] > 1.5
    # The transform kernels gain more than the element-wise multiply, as in the paper.
    assert by_kernel["fft2"]["speedup"] > by_kernel["complex_multiply"]["speedup"]
