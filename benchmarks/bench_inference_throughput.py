"""Serving throughput: autograd graph-mode vs the compiled inference engine.

The deployment-side question of the paper (and of this repo's roadmap) is
how fast a *trained* DONN can answer queries.  This benchmark measures
images/sec of the two inference paths at sys_size 64 / 128 / 200:

* **graph mode** -- ``model.predict``, the model's own inference API,
  which runs the forward pass through the autograd ``Tensor`` machinery
  (the status quo before ``repro.engine``);
* **no-grad eval** -- the ``evaluate_classifier``-style loop that wraps
  the graph path in ``no_grad`` (reported for transparency);
* **engine mode** -- a session from :func:`repro.engine.compile` with all
  diffraction kernels, modulations and detector masks precomputed.

A second section measures what the *plan optimizer* adds on top: a deep
(8-layer) nonlinearity-free DONN compiled with ``optimize="full"`` --
which collapses the whole linear cascade into one precomputed
input→detector operator pair -- against the same model at
``optimize="none"`` (the lowered plan emitted verbatim).  The plan op
counts before/after the passes and the spec pickle size go into the
committed results metadata.

Both sections assert end-to-end numerical parity (``atol=1e-10`` on the
detector logits) so no speedup can come from computing something
different.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np

from _bench_helpers import report, save_results
from loadgen import run_metadata
from repro import DONN, DONNConfig
from repro.autograd import no_grad
from repro.engine import compile as engine_compile

SIZES_AND_BATCHES = ((64, 32), (128, 16), (200, 8))
#: Payload-content seed; recorded in the committed results JSON.
SEED = int(os.environ.get("ENGINE_BENCH_SEED", "42"))
NUM_LAYERS = 5
ROUNDS = 3
PARITY_ATOL = 1e-10
# >= 2x is the claim on a quiet machine; shared CI runners set a lower
# floor (ENGINE_SPEEDUP_FLOOR) so timing noise can't fail the gate while
# the parity assertion stays strict everywhere.
MIN_SPEEDUP_AT_64 = float(os.environ.get("ENGINE_SPEEDUP_FLOOR", "2.0"))

# Plan-fusion section: a deep linear cascade at sys_size 64.  The >=3x
# claim (ROADMAP item 1) holds on a quiet machine; CI smoke runs set
# FUSION_SPEEDUP_FLOOR below it for the same timing-noise reason.
FUSION_SYS_SIZE = 64
FUSION_BATCH = 64
FUSION_LAYERS = 8
MIN_FUSION_SPEEDUP = float(os.environ.get("FUSION_SPEEDUP_FLOOR", "3.0"))


def _throughput(fn, num_images: int, rounds: int = ROUNDS) -> float:
    """Best-of-N images/sec (best-of is standard for timing benchmarks)."""
    fn()  # warm-up
    best = min(_timed(fn) for _ in range(rounds))
    return num_images / best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _sweep():
    rng = np.random.default_rng(SEED)
    rows = []
    for sys_size, batch in SIZES_AND_BATCHES:
        config = DONNConfig(
            sys_size=sys_size,
            pixel_size=36e-6,
            distance=0.1,
            wavelength=532e-9,
            num_layers=NUM_LAYERS,
            num_classes=10,
            seed=1,
        )
        model = DONN(config)
        session = engine_compile(model, batch_size=batch)
        images = rng.uniform(0.0, 1.0, size=(batch, sys_size, sys_size))

        with no_grad():
            model.eval()
            reference = np.asarray(model(images).data.real)
            model.train()
        engine_logits = session.run(images)
        max_error = float(np.abs(engine_logits - reference).max())
        assert np.allclose(engine_logits, reference, atol=PARITY_ATOL), (
            f"engine/graph logits diverge at sys_size {sys_size}: max |diff| = {max_error:.3e}"
        )

        graph_ips = _throughput(lambda: model.predict(images), batch)

        def nograd_eval():
            with no_grad():
                model.eval()
                model(images)
                model.train()

        nograd_ips = _throughput(nograd_eval, batch)
        engine_ips = _throughput(lambda: session.run(images), batch)

        rows.append(
            {
                "sys_size": sys_size,
                "batch": batch,
                "graph_images_per_sec": graph_ips,
                "nograd_images_per_sec": nograd_ips,
                "engine_images_per_sec": engine_ips,
                "speedup_vs_graph": engine_ips / graph_ips,
                "speedup_vs_nograd": engine_ips / nograd_ips,
                "parity_max_abs_error": max_error,
                "fft_backend": session.backend_name,
            }
        )
    return rows


def _fusion_sweep():
    """optimize='full' vs 'none' on a deep nonlinearity-free cascade."""
    rng = np.random.default_rng(SEED)
    config = DONNConfig(
        sys_size=FUSION_SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=FUSION_LAYERS,
        num_classes=10,
        seed=1,
    )
    model = DONN(config)
    images = rng.uniform(0.0, 1.0, size=(FUSION_BATCH, FUSION_SYS_SIZE, FUSION_SYS_SIZE))

    unopt = engine_compile(model, optimize="none", batch_size=FUSION_BATCH)
    fused = engine_compile(model, optimize="full", batch_size=FUSION_BATCH)
    summary = fused.plan_summary()

    reference = unopt.run(images)
    max_error = float(np.abs(fused.run(images) - reference).max())
    assert max_error <= PARITY_ATOL, (
        f"optimize='full' logits diverge from 'none': max |diff| = {max_error:.3e}"
    )

    none_ips = _throughput(lambda: unopt.run(images), FUSION_BATCH)
    full_ips = _throughput(lambda: fused.run(images), FUSION_BATCH)

    return {
        "section": "plan_fusion",
        "sys_size": FUSION_SYS_SIZE,
        "batch": FUSION_BATCH,
        "num_layers": FUSION_LAYERS,
        "none_images_per_sec": none_ips,
        "full_images_per_sec": full_ips,
        "speedup_full_vs_none": full_ips / none_ips,
        "parity_max_abs_error": max_error,
        "collapsed": summary["collapsed"],
        "fft_ops_before": summary["fft_ops_before"],
        "fft_ops_after": summary["fft_ops_after"],
        "fft_backend": fused.backend_name,
        "spec_pickle_bytes": len(pickle.dumps(fused.to_spec(), protocol=pickle.HIGHEST_PROTOCOL)),
        "plan_ops_before": summary["ops_before"],
        "plan_ops_after": summary["ops_after"],
    }


def test_inference_throughput(benchmark):
    def run_all():
        return _sweep(), _fusion_sweep()

    rows, fusion = benchmark.pedantic(run_all, rounds=1, iterations=1)
    notes = (
        "Images/sec of a trained 5-layer DONN forward pass: autograd graph mode (model.predict) vs the "
        "compiled engine (repro.engine.compile).  Engine logits are asserted equal to graph logits within "
        f"atol={PARITY_ATOL:g} before timing.  The plan_fusion row compiles a deep "
        f"{FUSION_LAYERS}-layer nonlinearity-free DONN with optimize='full' (cascade collapsed to one "
        "precomputed input->detector operator) vs optimize='none'."
    )
    report("Inference throughput: graph mode vs engine mode", rows, notes)
    report("Plan optimizer: optimize='full' vs 'none' (deep linear cascade)", [fusion])
    metadata = dict(run_metadata(SEED))
    metadata.update(
        {
            "plan_ops_before": fusion["plan_ops_before"],
            "plan_ops_after": fusion["plan_ops_after"],
            "spec_pickle_bytes": fusion["spec_pickle_bytes"],
        }
    )
    save_results("inference_throughput", rows + [fusion], notes, metadata=metadata)

    assert all(row["parity_max_abs_error"] <= PARITY_ATOL for row in rows)
    row64 = next(row for row in rows if row["sys_size"] == 64)
    assert row64["speedup_vs_graph"] >= MIN_SPEEDUP_AT_64, (
        f"engine speedup at sys_size 64 is {row64['speedup_vs_graph']:.2f}x, expected >= {MIN_SPEEDUP_AT_64}x"
    )
    # The fusion pass must actually remove FFT work, not just win a race.
    assert fusion["collapsed"] and fusion["fft_ops_after"] < fusion["fft_ops_before"]
    assert fusion["speedup_full_vs_none"] >= MIN_FUSION_SPEEDUP, (
        f"optimize='full' speedup is {fusion['speedup_full_vs_none']:.2f}x, expected >= {MIN_FUSION_SPEEDUP}x"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    for line in _sweep():
        print(line)
    print(_fusion_sweep())
