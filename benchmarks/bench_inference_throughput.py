"""Serving throughput: autograd graph-mode vs the compiled inference engine.

The deployment-side question of the paper (and of this repo's roadmap) is
how fast a *trained* DONN can answer queries.  This benchmark measures
images/sec of the two inference paths at sys_size 64 / 128 / 200:

* **graph mode** -- ``model.predict``, the model's own inference API,
  which runs the forward pass through the autograd ``Tensor`` machinery
  (the status quo before ``repro.engine``);
* **no-grad eval** -- the ``evaluate_classifier``-style loop that wraps
  the graph path in ``no_grad`` (reported for transparency);
* **engine mode** -- an :class:`~repro.engine.InferenceSession` with all
  diffraction kernels, modulations and detector masks precomputed.

It also asserts end-to-end numerical parity between the engine and the
graph path (``atol=1e-10`` on the detector logits) so the speedup can
never come from computing something different.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _bench_helpers import report, save_results
from loadgen import run_metadata
from repro import DONN, DONNConfig
from repro.autograd import no_grad

SIZES_AND_BATCHES = ((64, 32), (128, 16), (200, 8))
#: Payload-content seed; recorded in the committed results JSON.
SEED = int(os.environ.get("ENGINE_BENCH_SEED", "42"))
NUM_LAYERS = 5
ROUNDS = 3
PARITY_ATOL = 1e-10
# >= 2x is the claim on a quiet machine; shared CI runners set a lower
# floor (ENGINE_SPEEDUP_FLOOR) so timing noise can't fail the gate while
# the parity assertion stays strict everywhere.
MIN_SPEEDUP_AT_64 = float(os.environ.get("ENGINE_SPEEDUP_FLOOR", "2.0"))


def _throughput(fn, num_images: int, rounds: int = ROUNDS) -> float:
    """Best-of-N images/sec (best-of is standard for timing benchmarks)."""
    fn()  # warm-up
    best = min(_timed(fn) for _ in range(rounds))
    return num_images / best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _sweep():
    rng = np.random.default_rng(SEED)
    rows = []
    for sys_size, batch in SIZES_AND_BATCHES:
        config = DONNConfig(
            sys_size=sys_size,
            pixel_size=36e-6,
            distance=0.1,
            wavelength=532e-9,
            num_layers=NUM_LAYERS,
            num_classes=10,
            seed=1,
        )
        model = DONN(config)
        session = model.export_session(batch_size=batch)
        images = rng.uniform(0.0, 1.0, size=(batch, sys_size, sys_size))

        with no_grad():
            model.eval()
            reference = np.asarray(model(images).data.real)
            model.train()
        engine_logits = session.run(images)
        max_error = float(np.abs(engine_logits - reference).max())
        assert np.allclose(engine_logits, reference, atol=PARITY_ATOL), (
            f"engine/graph logits diverge at sys_size {sys_size}: max |diff| = {max_error:.3e}"
        )

        graph_ips = _throughput(lambda: model.predict(images), batch)

        def nograd_eval():
            with no_grad():
                model.eval()
                model(images)
                model.train()

        nograd_ips = _throughput(nograd_eval, batch)
        engine_ips = _throughput(lambda: session.run(images), batch)

        rows.append(
            {
                "sys_size": sys_size,
                "batch": batch,
                "graph_images_per_sec": graph_ips,
                "nograd_images_per_sec": nograd_ips,
                "engine_images_per_sec": engine_ips,
                "speedup_vs_graph": engine_ips / graph_ips,
                "speedup_vs_nograd": engine_ips / nograd_ips,
                "parity_max_abs_error": max_error,
                "fft_backend": session.backend_name,
            }
        )
    return rows


def test_inference_throughput(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    notes = (
        "Images/sec of a trained 5-layer DONN forward pass: autograd graph mode (model.predict) vs the "
        "cached-kernel InferenceSession.  Engine logits are asserted equal to graph logits within "
        f"atol={PARITY_ATOL:g} before timing."
    )
    report("Inference throughput: graph mode vs engine mode", rows, notes)
    save_results("inference_throughput", rows, notes, metadata=run_metadata(SEED))

    assert all(row["parity_max_abs_error"] <= PARITY_ATOL for row in rows)
    row64 = next(row for row in rows if row["sys_size"] == 64)
    assert row64["speedup_vs_graph"] >= MIN_SPEEDUP_AT_64, (
        f"engine speedup at sys_size 64 is {row64['speedup_vs_graph']:.2f}x, expected >= {MIN_SPEEDUP_AT_64}x"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    for line in _sweep():
        print(line)
