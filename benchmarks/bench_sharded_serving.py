"""Sharded serving: replica groups vs the single-process server.

The PR 3/4 serving stack computes in one Python process, so one GIL (and
one core's worth of FFT throughput, numpy's pocketfft being single
threaded) caps every model.  ``repro.cluster`` moves the fused batches to
``multiprocessing`` replica workers behind a routing policy; this
benchmark measures what that buys, with the PR 4 open-loop Poisson load
generator (latency clocked from scheduled arrivals -- no coordinated
omission):

1. **Scaling sweep.**  The single-process server and an N-replica
   sharded server absorb the same arrival-rate sweep (fractions of the
   measured single-process fused-call capacity); each is scored by its
   max sustained rate under a p99 SLO.  On a host with >= 4 usable cores
   and >= 4 replicas, the gate is the issue's acceptance claim: sharded
   serving sustains >= ``SHARDED_SPEEDUP_FLOOR`` (1.5x) the
   single-process images/sec, at an equal-or-lower p99 at the
   single-process server's own best rate.  On smaller hosts (the
   committed results record ``usable_cores``) multi-process scaling is
   physically unavailable, so the sweep still runs and is recorded but
   the scaling gate relaxes to "sharding must keep serving correctly" --
   re-run on a multi-core machine to check the 1.5x claim.
2. **Asymmetric-replica routing.**  One replica is deliberately slowed
   (``handicaps={0: ...}`` -- an extra sleep per call, so the asymmetry
   is real even on one core), and ``round_robin`` vs
   ``power_of_two_choices`` absorb identical load.  Round-robin keeps
   feeding the slow replica its full share, so its tail degrades to the
   slow member; p2c routes on in-flight depth and avoids it.  Gate:
   p2c's p99 beats round-robin's by >= ``SHARDED_ASYM_P99_FLOOR``.

Run directly (``python benchmarks/bench_sharded_serving.py [--smoke]
[--replicas N] [--seed S]``) or through pytest (``pytest
benchmarks/bench_sharded_serving.py -s``).  ``--smoke`` (CI's
``cluster-smoke`` job, both py3.10 and 3.12, spawn start method) runs a
seconds-long small-size sweep gating only on correct serving.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import run_metadata, run_open_loop, usable_cores
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.serve import FixedWindowPolicy, InferenceServer

SMOKE = bool(int(os.environ.get("SHARDED_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
#: Seed for payload content and Poisson schedules; stamped into the
#: committed results JSON together with the host core counts.
SEED = int(os.environ.get("SHARDED_BENCH_SEED", cli_value("--seed", "42")))
SYS_SIZE = int(os.environ.get("SHARDED_BENCH_SYS_SIZE", "32" if SMOKE else "64"))
NUM_LAYERS = 5
REPLICAS = int(os.environ.get("SHARDED_BENCH_REPLICAS", cli_value("--replicas", "2" if SMOKE else "4")))
#: The p99 latency budget a rate must hold to count as sustained.
SLO_MS = float(os.environ.get("SHARDED_BENCH_SLO_MS", "40"))
NUM_REQUESTS = int(os.environ.get("SHARDED_BENCH_REQUESTS", "120" if SMOKE else "1500"))
MAX_QUEUE = 8192
MIN_SUCCESS = 0.99
#: Arrival rates, as fractions of the measured *single-process* capacity.
SINGLE_FRACTIONS = (0.5,) if SMOKE else (0.5, 0.7, 0.85, 1.0)
SHARDED_FRACTIONS = (0.5, 0.8) if SMOKE else (0.5, 0.7, 0.85, 1.0, 1.3, 1.7, 2.2, 3.0)
#: The scaling gate, active only where the hardware can express it.
MIN_SPEEDUP = float(os.environ.get("SHARDED_SPEEDUP_FLOOR", "1.5"))
#: Required p99(round_robin) / p99(power_of_two_choices) under asymmetry.
ASYM_P99_FLOOR = 0.0 if SMOKE else float(os.environ.get("SHARDED_ASYM_P99_FLOOR", "1.1"))
#: Artificial slowdown of replica 0 in the asymmetry experiment.
ASYM_HANDICAP_MS = float(os.environ.get("SHARDED_BENCH_HANDICAP_MS", "25" if SMOKE else "50"))
ASYM_RATE_FRACTION = 0.5


#: The 1.5x claim needs real parallel hardware under >= 4 replicas.
SCALING_GATE_ACTIVE = not SMOKE and REPLICAS >= 4 and usable_cores() >= 4


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    return engine_compile(DONN(config), batch_size=64, dtype="complex128")


def _measure_capacity(session) -> float:
    """Single-process images/sec of back-to-back fused calls at B=32."""
    batch = np.random.default_rng(SEED).uniform(size=(32, SYS_SIZE, SYS_SIZE))
    session.run(batch)  # warm FFT plans
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < 0.5:
        session.run(batch)
        calls += 1
    return 32 * calls / (time.perf_counter() - start)


def _policy_factory():
    """Identical batching policy everywhere: the comparison is sharding."""
    return FixedWindowPolicy(max_batch=32, max_wait_ms=2.0)


def _drive_rates(server_factory, fractions, capacity, payloads) -> dict:
    """One server absorbing the sweep; returns {fraction: LoadResult}."""

    async def drive():
        results = {}
        server = server_factory()
        async with server:
            warm = payloads[: min(64, len(payloads))]
            await asyncio.gather(
                *(server.submit("bench", image) for image in warm), return_exceptions=True
            )
            for fraction in fractions:
                results[fraction] = await run_open_loop(
                    lambda image: server.submit("bench", image),
                    payloads,
                    capacity * fraction,
                    np.random.default_rng(SEED + 1),
                )
        return results

    return asyncio.run(drive())


def _single_server(session):
    def factory():
        server = InferenceServer(policy=_policy_factory, max_queue=MAX_QUEUE)
        server.add_model("bench", session)
        return server

    return factory


def _sharded_server(session, router: str, handicaps=None):
    def factory():
        server = InferenceServer(
            policy=_policy_factory,
            max_queue=MAX_QUEUE,
            replicas=REPLICAS,
            router=router,
            cluster_options={"handicaps": handicaps} if handicaps else None,
        )
        server.add_model("bench", session)
        return server

    return factory


def _best_sustained(results: dict, capacity: float):
    """(best rate, its LoadResult, its fraction) among SLO-holding points."""
    best_rate, best_point, best_fraction = 0.0, None, None
    for fraction, result in results.items():
        if result.sustains(SLO_MS, MIN_SUCCESS) and capacity * fraction > best_rate:
            best_rate, best_point, best_fraction = capacity * fraction, result, fraction
    return best_rate, best_point, best_fraction


def _rows_for(mode: str, router: str, results: dict) -> list:
    return [
        {
            "mode": mode,
            "router": router,
            "replicas": 1 if mode == "single" else REPLICAS,
            "rate_fraction_of_capacity": fraction,
            "slo_ms": SLO_MS,
            "sustained": result.sustains(SLO_MS, MIN_SUCCESS),
            **result.row(),
        }
        for fraction, result in results.items()
    ]


def _sweep():
    import gc

    session = _build_session()
    capacity = _measure_capacity(session)
    payloads = np.random.default_rng(SEED).uniform(0.0, 1.0, size=(NUM_REQUESTS, SYS_SIZE, SYS_SIZE))

    rows = []
    gc.collect()
    gc.disable()  # GC pauses land in p99 tails; keep them out of the comparison
    try:
        single = _drive_rates(_single_server(session), SINGLE_FRACTIONS, capacity, payloads)
        sharded = _drive_rates(
            _sharded_server(session, "round_robin"), SHARDED_FRACTIONS, capacity, payloads
        )
        asym = {
            router: _drive_rates(
                _sharded_server(session, router, handicaps={0: ASYM_HANDICAP_MS / 1000.0}),
                (ASYM_RATE_FRACTION,),
                capacity,
                payloads,
            )[ASYM_RATE_FRACTION]
            for router in ("round_robin", "power_of_two_choices")
        }
    finally:
        gc.enable()

    rows.extend(_rows_for("single", "-", single))
    rows.extend(_rows_for("sharded", "round_robin", sharded))
    for router, result in asym.items():
        rows.append(
            {
                "mode": "asymmetric",
                "router": router,
                "replicas": REPLICAS,
                "handicap_ms_replica0": ASYM_HANDICAP_MS,
                "rate_fraction_of_capacity": ASYM_RATE_FRACTION,
                "slo_ms": SLO_MS,
                "sustained": result.sustains(SLO_MS, MIN_SUCCESS),
                **result.row(),
            }
        )

    single_best, single_point, single_fraction = _best_sustained(single, capacity)
    sharded_best, _, _ = _best_sustained(sharded, capacity)
    summary = {
        "mode": "summary",
        "single_completed": sum(result.completed for result in single.values()),
        "sharded_completed": sum(result.completed for result in sharded.values()),
        "total_errors": sum(
            result.errors
            for results in (single.values(), sharded.values(), asym.values())
            for result in results
        ),
        "sys_size": SYS_SIZE,
        "replicas": REPLICAS,
        "capacity_images_per_sec": capacity,
        "slo_ms": SLO_MS,
        "single_max_sustained_rps": single_best,
        "sharded_max_sustained_rps": sharded_best,
        "sharded_speedup": (sharded_best / single_best) if single_best else float("nan"),
        "scaling_gate_active": SCALING_GATE_ACTIVE,
        "asym_rr_p99_ms": asym["round_robin"].percentile(99),
        "asym_p2c_p99_ms": asym["power_of_two_choices"].percentile(99),
    }
    if asym["power_of_two_choices"].completed:
        summary["asym_p99_improvement"] = (
            asym["round_robin"].percentile(99) / asym["power_of_two_choices"].percentile(99)
        )
    # The "equal or lower p99" clause: compare tails at the single-process
    # server's own best sustained fraction (both modes swept it).
    if single_point is not None and single_fraction in sharded:
        summary["p99_at_single_best_single_ms"] = single_point.percentile(99)
        summary["p99_at_single_best_sharded_ms"] = sharded[single_fraction].percentile(99)
    rows.append(summary)
    return rows, summary


def _check(summary: dict) -> None:
    # Serving correctness gates on every host, including CI smoke: all
    # modes must answer traffic without request errors.
    assert summary["total_errors"] == 0, f"{summary['total_errors']} requests errored"
    assert summary["single_completed"] > 0, "single-process server completed nothing"
    assert summary["sharded_completed"] > 0, "sharded server completed nothing"
    if SMOKE:
        # Shared runners cannot hold a p99 claim; the latency-sensitive
        # gates below are quiet-machine / multi-core assertions only.
        return
    if ASYM_P99_FLOOR > 0.0:
        improvement = summary.get("asym_p99_improvement", 0.0)
        assert improvement >= ASYM_P99_FLOOR, (
            f"power_of_two_choices p99 under an asymmetric replica is only {improvement:.2f}x "
            f"better than round_robin (floor {ASYM_P99_FLOOR}x): "
            f"rr={summary['asym_rr_p99_ms']:.1f}ms p2c={summary['asym_p2c_p99_ms']:.1f}ms"
        )
    if SCALING_GATE_ACTIVE:
        # Sustaining the SLO at all -- let alone at a higher rate -- is a
        # claim about parallel hardware: N replicas time-slicing one core
        # can miss a 40ms p99 at any rate.  Gated with the speedup.
        assert summary["single_max_sustained_rps"] > 0.0, "single-process server sustained nothing"
        assert summary["sharded_max_sustained_rps"] > 0.0, "sharded server sustained nothing"
        speedup = summary["sharded_speedup"]
        assert speedup >= MIN_SPEEDUP, (
            f"sharded serving sustains only {speedup:.2f}x the single-process rate "
            f"(floor {MIN_SPEEDUP}x with {REPLICAS} replicas on {usable_cores()} cores)"
        )
        single_p99 = summary.get("p99_at_single_best_single_ms")
        sharded_p99 = summary.get("p99_at_single_best_sharded_ms")
        if single_p99 is not None and sharded_p99 is not None:
            assert sharded_p99 <= single_p99 * 1.05, (
                f"at the single server's best rate, sharded p99 ({sharded_p99:.1f}ms) exceeds "
                f"the single-process p99 ({single_p99:.1f}ms)"
            )


def _notes() -> str:
    return (
        f"Open-loop Poisson load against a {NUM_LAYERS}-layer DONN at sys_size {SYS_SIZE} "
        f"(complex128 engine), {NUM_REQUESTS} offered requests per point, identical "
        f"FixedWindowPolicy(max_batch=32, max_wait_ms=2) everywhere.  single = in-process "
        f"InferenceServer; sharded = InferenceServer(replicas={REPLICAS}) dispatching fused "
        "batches to spawn-start worker processes over shared memory.  A rate is 'sustained' "
        f"when p99 <= {SLO_MS}ms and >= {MIN_SUCCESS:.0%} of offered requests are answered.  "
        f"asymmetric rows slow replica 0 by {ASYM_HANDICAP_MS}ms/call and compare routing "
        "policies at the same arrival rate.  The >=1.5x scaling claim needs >= 4 usable cores "
        "and >= 4 replicas (scaling_gate_active in the summary row; metadata records the "
        "host's core counts) -- on smaller hosts the sweep is recorded without the gate."
    )


def _metadata() -> dict:
    return {
        **run_metadata(SEED),
        "replicas": REPLICAS,
        "scaling_gate_active": SCALING_GATE_ACTIVE,
        "speedup_floor": MIN_SPEEDUP,
        "asym_p99_floor": ASYM_P99_FLOOR,
    }


def test_sharded_serving(benchmark):
    rows, summary = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("Sharded serving: replica groups vs single process", rows, _notes())
    save_results("sharded_serving_smoke" if SMOKE else "sharded_serving", rows, _notes(), _metadata())
    _check(summary)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke run
    rows, summary = _sweep()
    report("Sharded serving: replica groups vs single process", rows, _notes())
    if "--no-save" not in sys.argv:
        save_results("sharded_serving_smoke" if SMOKE else "sharded_serving", rows, _notes(), _metadata())
    _check(summary)
    print(
        f"max sustained rps: single={summary['single_max_sustained_rps']:.0f}, "
        f"sharded({REPLICAS} replicas)={summary['sharded_max_sustained_rps']:.0f} "
        f"({summary['sharded_speedup']:.2f}x, gate {'on' if SCALING_GATE_ACTIVE else 'off'})"
    )
    if "asym_p99_improvement" in summary:
        print(
            f"asymmetric replica p99: round_robin={summary['asym_rr_p99_ms']:.1f}ms vs "
            f"power_of_two_choices={summary['asym_p2c_p99_ms']:.1f}ms "
            f"({summary['asym_p99_improvement']:.2f}x better)"
        )
