"""Elastic autoscaling under step/ramp Poisson traces: iso-latency throughput per core.

``repro.cluster.autoscale`` grows and shrinks a replica group to hold a
p99 budget at minimum process count.  The right scorecard for that is
iso-latency throughput per core: at a fixed latency budget, how much
throughput does each worker *process* deliver?  A fixed fleet sized for
the peak wastes processes all night; the autoscaler should match its
throughput during the peak while spending far fewer process-seconds off
peak.

Three scenarios, all against the same model with an *asymmetric* fleet
(replica 0 carries a per-call handicap, so adding a clean replica has
observable latency consequences even on one core):

1. **Autoscaled step.**  A step-shaped Poisson trace (base -> sudden
   sustained peak -> base tail) drives ``InferenceServer(autoscale=...)``
   starting at one replica.  The step should trigger scale-up, the tail
   should drain the extra replicas back down (drain-before-terminate:
   zero request errors throughout).  The peak is reported as two
   sub-phases -- ``surge`` (contains the scale-up transient) and
   ``steady`` (post-convergence, where the p99 budget claim lives).
   Fleet size is sampled continuously; each phase reports achieved rate,
   p99, mean fleet, and rate per process (iso-latency throughput per
   core).
2. **Fixed-at-cap baseline.**  The identical trace against a fixed
   ``replicas=max`` server: the peak-sized fleet the autoscaler is
   supposed to beat on per-core efficiency off peak.
3. **Autoscaled ramp.**  A ramp up / ramp down trace
   (``loadgen.ramp_schedule``) exercises gradual growth and shedding.

Arrival rates are fractions of the *served* capacity of the starting
fleet (the highest paced rate one handicapped replica holds at half the
latency budget through the full submit -> batcher -> IPC path), not of
the raw fused-call rate -- the serving path, not the kernel, is what the
autoscaler defends.

Gates: every scenario must answer its traffic with **zero request
errors** on every host (drain-before-terminate is a correctness claim).
Off smoke, the structural iso gate applies: during the base phase the
autoscaler must hold >= ``AUTOSCALE_ISO_FLOOR`` x the fixed fleet's
throughput per process.  The *convergence* claims (scale-up fires,
steady-peak p99 back under budget, fleet sheds to the floor) are latency
claims about parallel hardware, active only with >= 4 usable cores
(``scaling_gate_active`` in the summary; PR 5 precedent) -- on smaller
hosts the trace still runs and is recorded honestly.

Run directly (``python benchmarks/bench_autoscale.py [--smoke] [--seed S]``)
or through pytest.  ``--smoke`` is CI's seconds-long correctness run.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

import numpy as np

from _bench_helpers import cli_value, report, save_results
from loadgen import ramp_schedule, run_metadata, run_open_loop, usable_cores
from repro import DONN, DONNConfig
from repro.engine import compile as engine_compile
from repro.serve import FixedWindowPolicy, InferenceServer

SMOKE = bool(int(os.environ.get("AUTOSCALE_BENCH_SMOKE", "0"))) or "--smoke" in sys.argv
SEED = int(os.environ.get("AUTOSCALE_BENCH_SEED", cli_value("--seed", "42")))
#: sys_size 64 even for smoke: at small system sizes the fused-call rate
#: outruns anything the per-request serving path can absorb, and the
#: capacity probe would saturate on asyncio overhead instead of compute.
SYS_SIZE = int(os.environ.get("AUTOSCALE_BENCH_SYS_SIZE", "64"))
NUM_LAYERS = 5
#: Fleet bounds for the autoscaled scenarios (and the fixed baseline's size).
MAX_REPLICAS = int(os.environ.get("AUTOSCALE_BENCH_MAX_REPLICAS", "2" if SMOKE else "4"))
#: The p99 budget the autoscaler defends.  The clustered path (batch
#: window + IPC + replica 0's handicap) has a p99 floor around 40-60ms
#: even when idle, so the budget sits well above it and the scale-down
#: threshold (low_fraction x budget) comfortably clears the floor.
SLO_MS = float(os.environ.get("AUTOSCALE_BENCH_SLO_MS", "150"))
#: Per-call slowdown of replica 0: the asymmetric member.
HANDICAP_MS = float(os.environ.get("AUTOSCALE_BENCH_HANDICAP_MS", "10"))
MAX_QUEUE = 8192
MIN_SUCCESS = 0.99
#: Arrival rates as fractions of the starting fleet's *served* capacity
#: (the highest paced rate one handicapped replica holds at half the
#: budget): the base must be comfortable for that replica, the peak must
#: overload it (so the step always fires the scaler) while staying
#: absorbable by the capped fleet on parallel hardware.
BASE_FRACTION = 0.5
PEAK_FRACTION = 2.0
#: Phase durations (seconds): base -> surge -> steady -> tail.  The tail
#: is long enough for the down-cooldown ladder to shed back to the floor.
PHASE_SECONDS = (1.0, 1.0, 1.5, 2.5) if SMOKE else (3.0, 2.0, 4.0, 12.0)
RAMP_SECONDS = 2.0 if SMOKE else 5.0
#: Structural iso gate (off smoke): base-phase throughput per process,
#: autoscaled vs fixed-at-cap.
ISO_FLOOR = float(os.environ.get("AUTOSCALE_ISO_FLOOR", "1.3"))

#: Convergence claims need real parallel hardware (PR 5 precedent).
SCALING_GATE_ACTIVE = not SMOKE and MAX_REPLICAS >= 2 and usable_cores() >= 4

AUTOSCALE = {
    "slo_p99_ms": SLO_MS,
    "min_replicas": 1,
    "max_replicas": MAX_REPLICAS,
    "interval_s": 0.1,
    "high_fraction": 0.9,
    "low_fraction": 0.5,
    "up_cooldown_s": 0.8,
    "down_cooldown_s": 1.0 if SMOKE else 1.5,
    "min_samples": 16,
    "stats_window": 128,
    # Group-level in_flight counts dispatched fused batches, and the
    # dispatch semaphore lets up to max_replicas of them stack on one
    # replica -- so a per-replica depth threshold below that cap fires on
    # pipelining alone.  Park it above the cap: this run isolates the
    # latency trigger.
    "max_inflight_per_replica": 6.0,
}


def _build_session():
    config = DONNConfig(
        sys_size=SYS_SIZE,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=NUM_LAYERS,
        num_classes=10,
        seed=1,
    )
    return engine_compile(DONN(config), batch_size=64, dtype="complex128")


def _raw_capacity(session) -> float:
    """Single-process images/sec of back-to-back fused calls at B=32."""
    batch = np.random.default_rng(SEED).uniform(size=(32, SYS_SIZE, SYS_SIZE))
    session.run(batch)  # warm FFT plans
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < 0.5:
        session.run(batch)
        calls += 1
    return 32 * calls / (time.perf_counter() - start)


def _policy_factory():
    return FixedWindowPolicy(max_batch=32, max_wait_ms=2.0)


def _server(session, autoscale):
    """One serving topology per scenario, same policy and handicap everywhere.

    ``autoscale`` is the autoscale options dict for the elastic scenarios
    (the fleet starts at its ``min_replicas``) or None for the fixed
    ``replicas=MAX_REPLICAS`` baseline.  Either way the model lives in a
    real :class:`ReplicaGroup` -- an autoscale config forces one even at
    a single starting replica -- so replica 0's handicap and the IPC hop
    are identical across scenarios.
    """
    server = InferenceServer(
        policy=_policy_factory,
        max_queue=MAX_QUEUE,
        replicas=1 if autoscale is not None else MAX_REPLICAS,
        router="least_loaded",
        cluster_options={"handicaps": {0: HANDICAP_MS / 1000.0}, "call_timeout_s": 60.0},
        autoscale=autoscale,
    )
    server.add_model("bench", session)
    return server


def _served_capacity(session, raw_capacity: float) -> float:
    """Served capacity of the starting fleet: the highest paced arrival
    rate one handicapped replica holds at **half** the p99 budget through
    the full submit -> batcher -> IPC -> fused-call path.

    A saturation burst would overstate it (deep queues coalesce into
    maximally-full batches), so this climbs a staircase of open-loop
    rates and keeps the last one that sustains ``SLO_MS / 2``.
    """
    pool = np.random.default_rng(SEED + 7).uniform(0.0, 1.0, size=(64, SYS_SIZE, SYS_SIZE))
    seconds = 0.6 if SMOKE else 1.2

    async def probe():
        best = None
        # The starting fleet exactly: one handicapped cluster replica
        # (max_replicas=1 pins it; the slow interval idles the loop).
        server = _server(session, {**AUTOSCALE, "max_replicas": 1, "interval_s": 60.0})
        async with server:
            warm = [server.submit("bench", pool[i % len(pool)]) for i in range(64)]
            await asyncio.gather(*warm, return_exceptions=True)
            for fraction in (0.15, 0.25, 0.4, 0.55, 0.7, 0.85):
                rate = fraction * raw_capacity
                count = max(64, int(rate * seconds))
                result = await run_open_loop(
                    lambda image: server.submit("bench", image),
                    [pool[i % len(pool)] for i in range(count)],
                    rate,
                    np.random.default_rng(SEED + 8),
                )
                if not result.sustains(SLO_MS / 2, MIN_SUCCESS):
                    break
                best = rate
        return best

    best = asyncio.run(probe())
    if best is None:
        raise RuntimeError(
            f"one replica sustained no probed rate at p99 <= {SLO_MS / 2:.0f}ms; "
            "the host is too loaded for a meaningful trace"
        )
    return best


def _fleet_of(server) -> int:
    stats = server.stats().get("bench")
    scaler = getattr(stats, "autoscaler", None) if stats is not None else None
    if scaler:
        return int(scaler["fleet"])
    return len(stats.replicas) if stats is not None and stats.replicas else 1


async def _sample_fleet(server, samples: list, stop: asyncio.Event) -> None:
    while not stop.is_set():
        samples.append(_fleet_of(server))
        try:
            await asyncio.wait_for(stop.wait(), 0.1)
        except asyncio.TimeoutError:
            pass


async def _run_phase(server, payload_pool, *, rate=None, rng=None, offsets=None, seconds=None):
    """One load segment with continuous fleet sampling."""
    count = len(offsets) if offsets is not None else max(8, int(rate * seconds))
    payloads = [payload_pool[i % len(payload_pool)] for i in range(count)]
    samples: list = []
    stop = asyncio.Event()
    sampler = asyncio.get_running_loop().create_task(_sample_fleet(server, samples, stop))
    try:
        result = await run_open_loop(
            lambda image: server.submit("bench", image),
            payloads,
            rate,
            rng,
            offsets=offsets,
        )
    finally:
        stop.set()
        await sampler
    samples = samples or [_fleet_of(server)]
    return result, {
        "fleet_mean": float(np.mean(samples)),
        "fleet_max": int(np.max(samples)),
        "fleet_final": int(samples[-1]),
    }


def _phase_row(scenario, phase, result, fleet):
    per_core = result.achieved_rate / fleet["fleet_mean"] if fleet["fleet_mean"] else 0.0
    return {
        "scenario": scenario,
        "phase": phase,
        "slo_ms": SLO_MS,
        "sustained": result.sustains(SLO_MS, MIN_SUCCESS),
        **result.row(),
        **fleet,
        "per_core_rps": per_core,  # iso-latency throughput per process
    }


async def _run_step(session, served: float, *, autoscale: bool):
    """The step trace (base -> surge -> steady -> tail) against one server."""
    base, peak = BASE_FRACTION * served, PEAK_FRACTION * served
    rates = {"base": base, "surge": peak, "steady": peak, "tail": base}
    pool = np.random.default_rng(SEED).uniform(0.0, 1.0, size=(256, SYS_SIZE, SYS_SIZE))
    rows = []
    server = _server(session, dict(AUTOSCALE) if autoscale else None)
    scenario = "autoscale-step" if autoscale else "fixed-step"
    async with server:
        warm = [server.submit("bench", pool[i]) for i in range(64)]
        await asyncio.gather(*warm, return_exceptions=True)
        for index, (phase, seconds) in enumerate(zip(rates, PHASE_SECONDS)):
            result, fleet = await _run_phase(
                server,
                pool,
                rate=rates[phase],
                rng=np.random.default_rng(SEED + 10 + index),
                seconds=seconds,
            )
            rows.append(_phase_row(scenario, phase, result, fleet))
        stats = server.stats()["bench"]
        snapshot = dict(stats.autoscaler or {})
    return rows, snapshot


async def _run_ramp(session, served: float):
    """Ramp up then down against the autoscaled server (one open-loop run)."""
    low, high = BASE_FRACTION * served, PEAK_FRACTION * served
    rng = np.random.default_rng(SEED + 99)
    up = ramp_schedule(low, high, RAMP_SECONDS, rng, steps=6)
    down = ramp_schedule(high, low, RAMP_SECONDS, rng, steps=6)
    offsets = np.concatenate([up, RAMP_SECONDS + down])
    pool = np.random.default_rng(SEED + 1).uniform(0.0, 1.0, size=(256, SYS_SIZE, SYS_SIZE))
    server = _server(session, dict(AUTOSCALE))
    async with server:
        warm = [server.submit("bench", pool[i]) for i in range(64)]
        await asyncio.gather(*warm, return_exceptions=True)
        result, fleet = await _run_phase(server, pool, offsets=offsets)
        stats = server.stats()["bench"]
        snapshot = dict(stats.autoscaler or {})
    return [_phase_row("autoscale-ramp", "ramp", result, fleet)], snapshot


def _sweep():
    import gc

    session = _build_session()
    raw = _raw_capacity(session)
    served = _served_capacity(session, raw)

    gc.collect()
    gc.disable()  # GC pauses land in p99 tails
    try:
        auto_rows, auto_snapshot = asyncio.run(_run_step(session, served, autoscale=True))
        fixed_rows, _ = asyncio.run(_run_step(session, served, autoscale=False))
        ramp_rows, ramp_snapshot = asyncio.run(_run_ramp(session, served))
    finally:
        gc.enable()

    rows = auto_rows + fixed_rows + ramp_rows
    by_phase = {(row["scenario"], row["phase"]): row for row in rows}
    auto_base = by_phase[("autoscale-step", "base")]
    fixed_base = by_phase[("fixed-step", "base")]
    auto_steady = by_phase[("autoscale-step", "steady")]
    auto_tail = by_phase[("autoscale-step", "tail")]
    summary = {
        "scenario": "summary",
        "sys_size": SYS_SIZE,
        "raw_capacity_images_per_sec": raw,
        "served_capacity_rps": served,
        "slo_ms": SLO_MS,
        "max_replicas": MAX_REPLICAS,
        "handicap_ms_replica0": HANDICAP_MS,
        "total_offered": sum(row["offered"] for row in rows),
        "total_completed": sum(row["completed"] for row in rows),
        "total_errors": sum(row["errors"] for row in rows),
        "scale_ups": auto_snapshot.get("scale_ups", 0),
        "scale_downs": auto_snapshot.get("scale_downs", 0),
        "nan_holds": auto_snapshot.get("nan_holds", 0),
        "peak_fleet_max": max(auto_steady["fleet_max"], by_phase[("autoscale-step", "surge")]["fleet_max"]),
        "tail_fleet_final": auto_tail["fleet_final"],
        "steady_p99_ms": auto_steady["p99_latency_ms"],
        "iso_base_autoscale_per_core_rps": auto_base["per_core_rps"],
        "iso_base_fixed_per_core_rps": fixed_base["per_core_rps"],
        "iso_per_core_ratio": (
            auto_base["per_core_rps"] / fixed_base["per_core_rps"]
            if fixed_base["per_core_rps"]
            else float("nan")
        ),
        "ramp_scale_ups": ramp_snapshot.get("scale_ups", 0),
        "ramp_fleet_max": by_phase[("autoscale-ramp", "ramp")]["fleet_max"],
        "ramp_fleet_final": by_phase[("autoscale-ramp", "ramp")]["fleet_final"],
        "scaling_gate_active": SCALING_GATE_ACTIVE,
    }
    rows.append(summary)
    return rows, summary


def _check(summary: dict) -> None:
    # Correctness gates on every host: elastic membership changes (spawn,
    # drain-before-terminate, close) must never error a request.
    assert summary["total_errors"] == 0, f"{summary['total_errors']} requests errored"
    assert summary["total_completed"] > 0, "no traffic completed"
    assert summary["peak_fleet_max"] <= MAX_REPLICAS, (
        f"fleet grew past the cap: {summary['peak_fleet_max']} > {MAX_REPLICAS}"
    )
    assert summary["ramp_fleet_max"] <= MAX_REPLICAS, "ramp fleet grew past the cap"
    if SMOKE:
        return
    # The peak exceeds one handicapped replica's served capacity by
    # construction, so the step must fire the scaler on any host.
    assert summary["scale_ups"] >= 1, "the step never triggered a scale-up"
    # Structural iso gate: off peak the autoscaler holds its throughput
    # with ~1 process while the fixed fleet spreads it over MAX_REPLICAS.
    ratio = summary["iso_per_core_ratio"]
    assert ratio >= ISO_FLOOR, (
        f"base-phase iso-latency throughput per core: autoscaled is only {ratio:.2f}x the "
        f"fixed-at-{MAX_REPLICAS} fleet (floor {ISO_FLOOR}x)"
    )
    if SCALING_GATE_ACTIVE:
        # Convergence: the steady peak holds the budget and the tail
        # sheds the extra replicas back to the floor.
        assert summary["scale_downs"] >= 1, "the tail never shed a replica"
        assert summary["tail_fleet_final"] == 1, (
            f"fleet did not shed back to the floor: {summary['tail_fleet_final']} replicas"
        )
        assert summary["steady_p99_ms"] <= SLO_MS, (
            f"steady-peak p99 {summary['steady_p99_ms']:.1f}ms never converged under the "
            f"{SLO_MS:.0f}ms budget"
        )


def _notes() -> str:
    return (
        f"Step/ramp open-loop Poisson traces against a {NUM_LAYERS}-layer DONN at sys_size "
        f"{SYS_SIZE} with an asymmetric fleet (replica 0 slowed {HANDICAP_MS}ms/call).  "
        f"autoscale-step starts at 1 replica under AutoscaleConfig(slo_p99_ms={SLO_MS:.0f}, "
        f"max_replicas={MAX_REPLICAS}); fixed-step drives the identical trace into a fixed "
        f"replicas={MAX_REPLICAS} fleet.  Rates are fractions of the starting fleet's "
        f"*served* capacity (highest paced rate 1 handicapped replica holds at p99 <= "
        f"{SLO_MS / 2:.0f}ms through the full serving path): base={BASE_FRACTION}x, "
        f"peak={PEAK_FRACTION}x split into surge (scale-up "
        "transient) and steady (post-convergence) sub-phases.  per_core_rps = achieved rate "
        "/ mean sampled fleet size -- the iso-latency throughput per process.  Gates: zero "
        "request errors everywhere (drain-before-terminate correctness); off smoke, the "
        f"step must fire >= 1 scale-up and autoscaled base-phase per_core_rps must be >= "
        f"{ISO_FLOOR}x fixed; convergence claims (steady-peak p99 under budget, tail sheds "
        "to 1) need >= 4 usable cores (scaling_gate_active) -- on smaller hosts the trace "
        "is recorded without them."
    )


def _metadata() -> dict:
    return {
        **run_metadata(SEED),
        "max_replicas": MAX_REPLICAS,
        "scaling_gate_active": SCALING_GATE_ACTIVE,
        "iso_floor": ISO_FLOOR,
        "autoscale_config": dict(AUTOSCALE),
    }


def test_autoscale(benchmark):
    rows, summary = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("Autoscaling: step/ramp traces, iso-latency throughput per core", rows, _notes())
    save_results("autoscale_smoke" if SMOKE else "autoscale", rows, _notes(), _metadata())
    _check(summary)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke run
    rows, summary = _sweep()
    report("Autoscaling: step/ramp traces, iso-latency throughput per core", rows, _notes())
    if "--no-save" not in sys.argv:
        save_results("autoscale_smoke" if SMOKE else "autoscale", rows, _notes(), _metadata())
    _check(summary)
    print(
        f"step: scale_ups={summary['scale_ups']} scale_downs={summary['scale_downs']} "
        f"peak_fleet={summary['peak_fleet_max']} tail_fleet={summary['tail_fleet_final']} "
        f"steady_p99={summary['steady_p99_ms']:.1f}ms (budget {SLO_MS:.0f}ms, "
        f"gate {'on' if SCALING_GATE_ACTIVE else 'off'})"
    )
    print(
        f"iso-latency throughput per core (base phase): autoscaled="
        f"{summary['iso_base_autoscale_per_core_rps']:.0f} rps/proc vs fixed-at-"
        f"{MAX_REPLICAS}={summary['iso_base_fixed_per_core_rps']:.0f} rps/proc "
        f"({summary['iso_per_core_ratio']:.2f}x)"
    )
