"""Table 4: energy efficiency (fps/Watt) and accuracy, DONN vs conventional NNs.

Two halves:

* efficiency -- the analytical power model compares the DONN prototype
  (laser + passive layers + CMOS read-out) against GPU / CPU / EdgeTPU
  platforms running the MLP and CNN baselines at batch 1;
* accuracy -- the MLP and CNN baselines are actually trained on the same
  synthetic digit/fashion data as the DONN, and the DONN accuracy comes
  from the shared trained reference model, reproducing the "~1 point
  behind digital NNs" observation.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results
from repro import Trainer, load_digits, load_fashion
from repro.baselines import CNNBaseline, MLPBaseline
from repro.hardware import energy_efficiency_table


def _train_digital(model, dataset, epochs, lr):
    train_x, train_y, test_x, test_y = dataset
    trainer = Trainer(model, num_classes=10, learning_rate=lr, batch_size=25, loss="cross_entropy", seed=0)
    result = trainer.fit(train_x, train_y, epochs=epochs, test_images=test_x, test_labels=test_y)
    return result.final_test_accuracy


def test_table4_energy_efficiency(benchmark):
    rows = benchmark.pedantic(lambda: energy_efficiency_table(system_size=200), rounds=1, iterations=1)
    notes = (
        "Paper: DONN prototype 995 fps/W; desktop GPUs/CPUs are 2 orders of magnitude less efficient, "
        "edge TPUs 1 order.  Reproduced with the analytical power model."
    )
    report("Table 4 (efficiency): fps/Watt by platform", rows, notes)
    save_results("table4_energy_efficiency", rows, notes)

    donn_row = rows[-1]
    np.testing.assert_allclose(donn_row["fps_per_watt"], 995.0, rtol=0.01)
    digital = {row["platform"]: row for row in rows[:-1]}
    for name in ("GPU 2080 Ti", "GPU 3090 Ti", "CPU Xeon"):
        assert digital[name]["donn_advantage_mlp"] > 50  # ~2 orders of magnitude
    assert 5 < digital["XPU (EdgeTPU)"]["donn_advantage_mlp"] < 200  # ~1 order


def test_table4_accuracy_comparison(benchmark, trained_reference_donn, bench_digits):
    digits_28 = load_digits(num_train=250, num_test=80, size=28, seed=11)
    fashion_28 = load_fashion(num_train=250, num_test=80, size=28, seed=11)

    def experiment():
        results = {}
        results["mlp_digits"] = _train_digital(MLPBaseline(28 * 28, hidden=64, seed=0), digits_28, epochs=8, lr=0.005)
        results["mlp_fashion"] = _train_digital(MLPBaseline(28 * 28, hidden=64, seed=0), fashion_28, epochs=8, lr=0.005)
        results["cnn_digits"] = _train_digital(CNNBaseline(28, hidden=32, seed=0), digits_28, epochs=4, lr=0.01)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    donn_model, donn_result = trained_reference_donn

    rows = [
        {"model": "MLP (digital)", "digits_accuracy": results["mlp_digits"], "fashion_accuracy": results["mlp_fashion"]},
        {"model": "CNN (digital)", "digits_accuracy": results["cnn_digits"]},
        {"model": "DONN (optical, 3-layer)", "digits_accuracy": donn_result.final_test_accuracy},
    ]
    notes = (
        "Paper: digital NNs reach 0.99/0.91 (MNIST/FMNIST) vs 0.98/0.89 for the DONN -- the optical "
        "system trails by a point or two while being orders of magnitude more efficient.  Reproduced "
        "shape: the DONN is competitive with but not above the digital baselines."
    )
    report("Table 4 (accuracy): DONN vs digital baselines", rows, notes)
    save_results("table4_accuracy", rows, notes)

    assert results["mlp_digits"] > 0.5
    assert donn_result.final_test_accuracy > 0.4
    # The DONN should be in the same league as, but not clearly better than, the MLP.
    assert donn_result.final_test_accuracy <= results["mlp_digits"] + 0.1
