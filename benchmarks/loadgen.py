"""Open-loop Poisson load generation for the serving layer.

The PR 3 serving benchmark runs *closed-loop* clients: each client waits
for its answer before sending the next request.  Closed-loop load is
self-clocking -- when the server slows down, the clients slow down with
it -- so it systematically under-reports queueing delay and cannot
represent "traffic arrives at 2000 requests/second whether you are ready
or not".  That phenomenon (coordinated omission) is exactly what an SLO
evaluation must not hide.

This module drives **open-loop** load: request arrival times are drawn
from a Poisson process at a target rate *in advance*, and every request
is fired at its scheduled instant regardless of how many answers are
still outstanding.  Latency is measured from the request's *scheduled*
arrival time, not from when the generator got around to sending it, so
generator lateness (event-loop jitter at sub-millisecond inter-arrivals)
counts against the server's numbers, never in their favor.

Outcomes are bucketed per request: completed, rejected on overload
(:class:`~repro.serve.ServerOverloadedError`), shed on deadline
(:class:`~repro.serve.DeadlineExceededError`), or other error.  A run is
summarized by :class:`LoadResult`, whose ``sustains(slo_ms)`` predicate
is the benchmark's gate: p99 of completed requests within the SLO *and*
at least ``min_success`` of all issued requests answered.
"""

from __future__ import annotations

import asyncio
import os
import platform
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Sequence

import numpy as np

from repro.serve import DeadlineExceededError, ServerOverloadedError

SubmitFn = Callable[[np.ndarray], Awaitable[np.ndarray]]


def usable_cores() -> int:
    """Scheduler-affinity core count -- on cgroup-limited containers the
    number that actually bounds multi-process scaling."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-linux


def run_metadata(seed: int) -> dict:
    """Reproducibility stamp for committed benchmark results.

    Every benchmark that draws a Poisson schedule records the seed it
    derived its generators from plus the host's core counts -- arrival
    jitter and multi-process scaling are both functions of those, so a
    results JSON without them cannot be re-run faithfully.
    """
    return {
        "seed": int(seed),
        "host_cores": os.cpu_count() or 1,
        "usable_cores": usable_cores(),
        "python": platform.python_version(),
    }


@dataclass
class LoadResult:
    """Summary of one open-loop run at one target arrival rate."""

    target_rate: float
    duration_s: float
    offered: int
    completed: int
    rejected: int = 0
    deadline_missed: int = 0
    errors: int = 0
    #: Scheduled-arrival-to-completion latency of each *completed*
    #: request, milliseconds.
    latencies_ms: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def achieved_rate(self) -> float:
        """Completed requests per second over the run."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def success_rate(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def percentile(self, q: float) -> float:
        if len(self.latencies_ms) == 0:
            return float("nan")
        return float(np.percentile(self.latencies_ms, q))

    def sustains(self, slo_ms: float, min_success: float = 0.99) -> bool:
        """Did the server hold the SLO at this arrival rate?

        True when the p99 latency of completed requests stays within
        ``slo_ms`` *and* at least ``min_success`` of issued requests were
        answered -- a policy may not "hold" an SLO by shedding traffic
        wholesale.
        """
        if self.completed == 0 or self.success_rate < min_success:
            return False
        return self.percentile(99) <= slo_ms

    def row(self) -> dict:
        """Flat JSON-friendly summary (for benchmark result files)."""
        return {
            "target_rate_rps": self.target_rate,
            "achieved_rate_rps": self.achieved_rate,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "errors": self.errors,
            "success_rate": self.success_rate,
            "p50_latency_ms": self.percentile(50),
            "p95_latency_ms": self.percentile(95),
            "p99_latency_ms": self.percentile(99),
        }


def poisson_schedule(rate_rps: float, num_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of a Poisson process.

    Inter-arrival gaps are i.i.d. exponential with mean ``1 / rate_rps``;
    the returned array is the running sum, starting at the first gap.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=num_requests))


async def run_open_loop(
    submit: SubmitFn,
    payloads: Sequence[np.ndarray],
    rate_rps: float,
    rng: np.random.Generator,
) -> LoadResult:
    """Fire ``payloads`` at Poisson arrival times; never wait for answers.

    ``submit`` is the per-request coroutine factory (e.g. ``lambda image:
    server.submit("model", image)``).  Requests are issued in scheduled
    order; when the event loop falls behind the schedule (sub-millisecond
    gaps), all overdue requests fire back-to-back -- the burst is part of
    the offered load, and their latency clocks still started at the
    scheduled instants.
    """
    offsets = poisson_schedule(rate_rps, len(payloads), rng)
    loop = asyncio.get_running_loop()
    outcomes: List[asyncio.Task] = []
    start = loop.time()

    async def one(payload: np.ndarray, scheduled: float):
        try:
            await submit(payload)
        except ServerOverloadedError:
            return "rejected", 0.0
        except DeadlineExceededError:
            return "deadline", 0.0
        except Exception:
            return "error", 0.0
        return "ok", (loop.time() - scheduled) * 1000.0

    for payload, offset in zip(payloads, offsets):
        scheduled = start + offset
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        outcomes.append(loop.create_task(one(payload, scheduled)))

    results = await asyncio.gather(*outcomes)
    duration = loop.time() - start
    latencies = np.asarray([ms for status, ms in results if status == "ok"])
    counts = {status: sum(1 for s, _ in results if s == status) for status in ("ok", "rejected", "deadline", "error")}
    return LoadResult(
        target_rate=rate_rps,
        duration_s=duration,
        offered=len(payloads),
        completed=counts["ok"],
        rejected=counts["rejected"],
        deadline_missed=counts["deadline"],
        errors=counts["error"],
        latencies_ms=latencies,
    )
