"""Open-loop Poisson load generation for the serving layer.

The PR 3 serving benchmark runs *closed-loop* clients: each client waits
for its answer before sending the next request.  Closed-loop load is
self-clocking -- when the server slows down, the clients slow down with
it -- so it systematically under-reports queueing delay and cannot
represent "traffic arrives at 2000 requests/second whether you are ready
or not".  That phenomenon (coordinated omission) is exactly what an SLO
evaluation must not hide.

This module drives **open-loop** load: request arrival times are drawn
from a Poisson process at a target rate *in advance*, and every request
is fired at its scheduled instant regardless of how many answers are
still outstanding.  Latency is measured from the request's *scheduled*
arrival time, not from when the generator got around to sending it, so
generator lateness (event-loop jitter at sub-millisecond inter-arrivals)
counts against the server's numbers, never in their favor.

Outcomes are bucketed per request: completed, rejected on overload
(:class:`~repro.serve.ServerOverloadedError`), shed on deadline
(:class:`~repro.serve.DeadlineExceededError`), or other error.  A run is
summarized by :class:`LoadResult`, whose ``sustains(slo_ms)`` predicate
is the benchmark's gate: p99 of completed requests within the SLO *and*
at least ``min_success`` of all issued requests answered.
"""

from __future__ import annotations

import asyncio
import os
import platform
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional, Sequence

import numpy as np

from repro.serve import DeadlineExceededError, ServerOverloadedError

SubmitFn = Callable[[np.ndarray], Awaitable[np.ndarray]]


def usable_cores() -> int:
    """Scheduler-affinity core count -- on cgroup-limited containers the
    number that actually bounds multi-process scaling."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-linux


def run_metadata(seed: int) -> dict:
    """Reproducibility stamp for committed benchmark results.

    Every benchmark that draws a Poisson schedule records the seed it
    derived its generators from plus the host's core counts -- arrival
    jitter and multi-process scaling are both functions of those, so a
    results JSON without them cannot be re-run faithfully.
    """
    return {
        "seed": int(seed),
        "host_cores": os.cpu_count() or 1,
        "usable_cores": usable_cores(),
        "python": platform.python_version(),
    }


@dataclass
class LoadResult:
    """Summary of one open-loop run at one target arrival rate."""

    target_rate: float
    duration_s: float
    offered: int
    completed: int
    rejected: int = 0
    deadline_missed: int = 0
    errors: int = 0
    #: Scheduled-arrival-to-completion latency of each *completed*
    #: request, milliseconds.
    latencies_ms: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def achieved_rate(self) -> float:
        """Completed requests per second over the run."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def success_rate(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def percentile(self, q: float) -> float:
        if len(self.latencies_ms) == 0:
            return float("nan")
        return float(np.percentile(self.latencies_ms, q))

    def sustains(self, slo_ms: float, min_success: float = 0.99) -> bool:
        """Did the server hold the SLO at this arrival rate?

        True when the p99 latency of completed requests stays within
        ``slo_ms`` *and* at least ``min_success`` of issued requests were
        answered -- a policy may not "hold" an SLO by shedding traffic
        wholesale.
        """
        if self.completed == 0 or self.success_rate < min_success:
            return False
        return self.percentile(99) <= slo_ms

    def row(self) -> dict:
        """Flat JSON-friendly summary (for benchmark result files)."""
        return {
            "target_rate_rps": self.target_rate,
            "achieved_rate_rps": self.achieved_rate,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "errors": self.errors,
            "success_rate": self.success_rate,
            "p50_latency_ms": self.percentile(50),
            "p95_latency_ms": self.percentile(95),
            "p99_latency_ms": self.percentile(99),
        }


def poisson_schedule(rate_rps: float, num_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of a Poisson process.

    Inter-arrival gaps are i.i.d. exponential with mean ``1 / rate_rps``;
    the returned array is the running sum, starting at the first gap.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=num_requests))


def piecewise_poisson_schedule(
    segments: Sequence[tuple], rng: np.random.Generator
) -> np.ndarray:
    """Arrival offsets of a Poisson process whose rate changes over time.

    ``segments`` is ``[(rate_rps, duration_s), ...]``: within each
    segment arrivals are Poisson at that segment's rate, and the next
    segment starts where the previous one's time window ends (not at its
    last arrival), so the *shape* of the trace is deterministic even
    though the arrivals are random.  Segments produce however many
    arrivals land inside their window -- possibly zero.  This is the
    primitive behind :func:`step_schedule` and :func:`ramp_schedule`,
    the traces the autoscaler benchmark drives.
    """
    if not segments:
        raise ValueError("need at least one (rate_rps, duration_s) segment")
    offsets = []
    clock = 0.0
    for rate_rps, duration_s in segments:
        if rate_rps < 0 or duration_s <= 0:
            raise ValueError("segment rates must be >= 0 and durations > 0")
        if rate_rps > 0:
            # Draw with slack, keep what lands inside the window: the
            # expected count is rate * duration, and 4 sigma of headroom
            # makes a short draw (which would silently truncate the
            # segment) astronomically unlikely; top up if it happens.
            expect = rate_rps * duration_s
            size = int(expect + 4.0 * np.sqrt(expect) + 16)
            gaps = rng.exponential(1.0 / rate_rps, size=size)
            arrivals = np.cumsum(gaps)
            while arrivals[-1] < duration_s:  # pragma: no cover - 4-sigma tail
                more = rng.exponential(1.0 / rate_rps, size=size)
                arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(more)])
            offsets.append(clock + arrivals[arrivals < duration_s])
        clock += duration_s
    combined = np.concatenate(offsets) if offsets else np.empty(0)
    if len(combined) == 0:
        raise ValueError("schedule produced no arrivals (all-zero rates?)")
    return combined


def step_schedule(
    base_rps: float,
    peak_rps: float,
    rng: np.random.Generator,
    *,
    base_s: float = 2.0,
    peak_s: float = 4.0,
    tail_s: float = 2.0,
) -> np.ndarray:
    """A step-shaped trace: base load, a sudden sustained peak, base again.

    The canonical autoscaler workload -- the step up should trigger one
    scale-up (not a flap), the tail should let the loop shed the extra
    replicas back down.
    """
    return piecewise_poisson_schedule(
        [(base_rps, base_s), (peak_rps, peak_s), (base_rps, tail_s)], rng
    )


def ramp_schedule(
    start_rps: float,
    end_rps: float,
    duration_s: float,
    rng: np.random.Generator,
    *,
    steps: int = 8,
) -> np.ndarray:
    """A linear ramp from ``start_rps`` to ``end_rps`` over ``duration_s``.

    Discretized into ``steps`` equal-duration Poisson segments whose
    rates interpolate linearly (each segment pinned at its midpoint
    rate, so the trace's total expected arrivals match the continuous
    ramp).  A downward ramp (start > end) exercises gradual scale-down.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    rates = np.linspace(start_rps, end_rps, 2 * steps + 1)[1::2]  # segment midpoints
    return piecewise_poisson_schedule([(float(r), duration_s / steps) for r in rates], rng)


async def run_open_loop(
    submit: SubmitFn,
    payloads: Sequence[np.ndarray],
    rate_rps: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    offsets: Optional[np.ndarray] = None,
) -> LoadResult:
    """Fire ``payloads`` at Poisson arrival times; never wait for answers.

    ``submit`` is the per-request coroutine factory (e.g. ``lambda image:
    server.submit("model", image)``).  Requests are issued in scheduled
    order; when the event loop falls behind the schedule (sub-millisecond
    gaps), all overdue requests fire back-to-back -- the burst is part of
    the offered load, and their latency clocks still started at the
    scheduled instants.

    Arrival times come either from ``rate_rps`` + ``rng`` (a fresh
    constant-rate Poisson draw sized to ``payloads``) or from an explicit
    ``offsets`` array -- e.g. a :func:`step_schedule` /
    :func:`ramp_schedule` trace, in which case ``payloads`` must cover
    its length and the reported ``target_rate`` is the trace's mean rate.
    """
    if offsets is not None:
        if rate_rps is not None or rng is not None:
            raise ValueError("pass either offsets= or (rate_rps, rng), not both")
        offsets = np.asarray(offsets, dtype=float)
        if len(offsets) == 0:
            raise ValueError("offsets must be non-empty")
        if len(payloads) < len(offsets):
            raise ValueError(f"need {len(offsets)} payloads for the trace, got {len(payloads)}")
        rate_rps = len(offsets) / float(offsets[-1]) if offsets[-1] > 0 else float(len(offsets))
    else:
        if rate_rps is None or rng is None:
            raise ValueError("need (rate_rps, rng) when no offsets= trace is given")
        offsets = poisson_schedule(rate_rps, len(payloads), rng)
    loop = asyncio.get_running_loop()
    outcomes: List[asyncio.Task] = []
    start = loop.time()

    async def one(payload: np.ndarray, scheduled: float):
        try:
            await submit(payload)
        except ServerOverloadedError:
            return "rejected", 0.0
        except DeadlineExceededError:
            return "deadline", 0.0
        except Exception:
            return "error", 0.0
        return "ok", (loop.time() - scheduled) * 1000.0

    for payload, offset in zip(payloads, offsets):
        scheduled = start + offset
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        outcomes.append(loop.create_task(one(payload, scheduled)))

    results = await asyncio.gather(*outcomes)
    duration = loop.time() - start
    latencies = np.asarray([ms for status, ms in results if status == "ok"])
    counts = {status: sum(1 for s, _ in results if s == status) for status in ("ok", "rejected", "deadline", "error")}
    return LoadResult(
        target_rate=rate_rps,
        duration_s=duration,
        offered=len(payloads),
        completed=counts["ok"],
        rejected=counts["rejected"],
        deadline_missed=counts["deadline"],
        errors=counts["error"],
        latencies_ms=latencies,
    )
