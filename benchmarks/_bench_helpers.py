"""Plain helpers shared by the experiment benchmarks (no pytest fixtures here)."""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Sequence

from repro import DONNConfig, Trainer
from repro.baselines.regularization import build_baseline_donn, build_regularized_donn
from repro.utils import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def cli_value(flag: str, default: str) -> str:
    """Value of ``--flag N`` from argv (pytest-safe manual parsing).

    The benchmarks double as pytest files, so they cannot own argparse;
    unknown pytest flags are simply never matched.
    """
    if flag in sys.argv:
        position = sys.argv.index(flag)
        if position + 1 < len(sys.argv):
            return sys.argv[position + 1]
    return default


def save_results(name: str, rows: Sequence[Dict], notes: str = "", metadata: Dict = None) -> Path:
    """Persist reproduced rows as JSON and return the path.

    ``metadata`` carries the reproducibility stamp (seed, host core
    counts -- see ``loadgen.run_metadata``) serialized alongside the rows.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    payload = {"experiment": name, "notes": notes, "rows": list(rows)}
    if metadata:
        payload["metadata"] = dict(metadata)
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def report(title: str, rows: Sequence[Dict], notes: str = "") -> None:
    """Print a reproduced table (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    if notes:
        print(notes)
    print(format_table(list(rows)))


def train_donn(
    config: DONNConfig,
    dataset,
    epochs: int = 6,
    learning_rate: float = 0.5,
    batch_size: int = 50,
    regularized: bool = True,
    device_profile=None,
    seed: int = 0,
):
    """Train a DONN on a (train_x, train_y, test_x, test_y) dataset tuple.

    Returns ``(model, TrainingResult)``.
    """
    train_x, train_y, test_x, test_y = dataset
    if regularized:
        model = build_regularized_donn(config, train_x[:8], device_profile=device_profile)
    else:
        model = build_baseline_donn(config, device_profile=device_profile)
    trainer = Trainer(
        model,
        num_classes=config.num_classes,
        learning_rate=learning_rate,
        batch_size=batch_size,
        seed=seed,
    )
    result = trainer.fit(train_x, train_y, epochs=epochs, test_images=test_x, test_labels=test_y)
    return model, result
