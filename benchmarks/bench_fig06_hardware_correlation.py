"""Figure 6: simulation vs "experimental" detector patterns for a trained DONN.

The paper shows that LightRidge's emulated detector patterns match the
patterns measured on the physical 3-layer SLM prototype, class by class.
Here the physical system is the emulated hardware testbench (measured-style
SLM response + fabrication variation + CMOS camera); the benchmark reports
the per-class pattern correlation and the accuracy on both sides.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results
from repro.codesign import slm_profile
from repro.hardware import HardwareTestbench
from repro.layers import binarize_images
from repro.optics.wave import correlation
from repro.train.metrics import accuracy


def test_fig06_hardware_correlation(benchmark, trained_reference_donn, bench_digits):
    model, training_result = trained_reference_donn
    _, _, test_x, test_y = bench_digits
    # The prototype uses binarized inputs to simplify hardware encoding.
    binary_test = binarize_images(test_x, threshold=0.3)
    device = slm_profile(num_levels=256, seed=2)  # the LC2012 covers ~2 pi with 256 levels

    def experiment():
        testbench = HardwareTestbench(model, profile=device, seed=0)
        per_class = []
        for digit in range(10):
            index = np.argmax(test_y == digit)
            sim_pattern = model.detector_pattern(binary_test[index : index + 1]).data[0]
            hw_pattern = testbench.hardware_detector_pattern(binary_test[index : index + 1])[0]
            per_class.append(
                {"digit": digit, "pattern_correlation": correlation(sim_pattern, hw_pattern)}
            )
        sim_logits = model(binary_test).data.real
        hw_logits = testbench.hardware_logits(binary_test)
        return per_class, sim_logits, hw_logits

    per_class, sim_logits, hw_logits = benchmark.pedantic(experiment, rounds=1, iterations=1)
    summary = [
        {"quantity": "mean per-class pattern correlation", "value": float(np.mean([r["pattern_correlation"] for r in per_class]))},
        {"quantity": "simulation accuracy (binarized inputs)", "value": accuracy(sim_logits, test_y)},
        {"quantity": "emulated-hardware accuracy (binarized inputs)", "value": accuracy(hw_logits, test_y)},
        {"quantity": "prediction agreement sim vs hardware", "value": float((sim_logits.argmax(-1) == hw_logits.argmax(-1)).mean())},
    ]
    notes = (
        "Paper: simulated and measured detector patterns match class-for-class with no manual "
        "calibration.  Reproduced: high pattern correlation and matching predictions through a "
        "256-level SLM with fabrication variation and camera noise."
    )
    report("Figure 6: simulation vs emulated-hardware patterns", per_class + summary, notes)
    save_results("fig06_hardware_correlation", per_class + summary, notes)

    assert summary[0]["value"] > 0.85
    assert summary[3]["value"] > 0.7
