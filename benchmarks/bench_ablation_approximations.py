"""Ablation: choice of diffraction approximation (Rayleigh-Sommerfeld / Fresnel / Fraunhofer).

DESIGN.md calls out the approximation choice as a design decision the
framework exposes (Section 3.1.1): Rayleigh-Sommerfeld is the accurate
default, Fresnel is a cheaper near-field approximation that should behave
almost identically at the prototype geometry, and Fraunhofer (far field)
is outside its validity regime there.  The ablation trains the same DONN
with each kernel and also compares raw kernel runtimes.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_helpers import report, save_results, train_donn
from repro.autograd import Tensor
from repro.optics import SpatialGrid, make_propagator

APPROXIMATIONS = ("rayleigh_sommerfeld", "fresnel", "fraunhofer")
EPOCHS = 8


def test_ablation_diffraction_approximations(benchmark, bench_config, bench_digits):
    def experiment():
        results = {}
        for approx in APPROXIMATIONS:
            config = bench_config.with_updates(approx=approx)
            _, result = train_donn(config, bench_digits, epochs=EPOCHS)
            results[approx] = result.final_test_accuracy
        return results

    accuracies = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Kernel runtime comparison at a larger size (forward only).
    rng = np.random.default_rng(0)
    grid = SpatialGrid(size=160, pixel_size=36e-6)
    field = Tensor(rng.normal(size=(4, 160, 160)) + 0j)
    runtimes = {}
    for approx in APPROXIMATIONS:
        propagator = make_propagator(approx, grid, 532e-9, 0.1)
        propagator(field)  # warm-up
        start = time.perf_counter()
        propagator(field)
        runtimes[approx] = time.perf_counter() - start

    rows = [
        {"approximation": approx, "test_accuracy": accuracies[approx], "forward_seconds_160sq": runtimes[approx]}
        for approx in APPROXIMATIONS
    ]
    notes = (
        "Rayleigh-Sommerfeld and Fresnel agree at the prototype geometry (near field, small angles); "
        "Fraunhofer is outside its validity regime at 0.1 m and may train differently.  RS is the "
        "accuracy reference; Fresnel/Fraunhofer trade accuracy guarantees for slightly cheaper kernels."
    )
    report("Ablation: diffraction approximation choice", rows, notes)
    save_results("ablation_approximations", rows, notes)

    assert accuracies["rayleigh_sommerfeld"] > 0.3
    # Fresnel must be competitive with RS at this geometry (within ~20 points).
    assert abs(accuracies["fresnel"] - accuracies["rayleigh_sommerfeld"]) < 0.25
