"""Figure 1: out-of-box deployment accuracy, codesign vs. post-hoc quantisation.

The paper's headline motivation: deploying a conventionally trained DONN
onto real (discrete, imperfect) hardware loses tens of accuracy points
(95.2% -> 63.9% style gap), whereas LightRidge's codesign training keeps
the out-of-box deployment within a few points of simulation.  Here the
"hardware" is the emulated testbench: a coarse (8-level) SLM with
fabrication variation and a noisy CMOS camera.
"""

from __future__ import annotations

import numpy as np

from _bench_helpers import report, save_results, train_donn
from repro.codesign import slm_profile
from repro.hardware import HardwareTestbench


def test_fig01_deployment_gap(benchmark, bench_config, bench_digits):
    # A realistic "difficult" device: few valid levels covering only half the
    # phase circle (analog SLMs rarely reach a full 2 pi, Section 2.2), so
    # post-hoc quantisation of a freely trained model is very lossy while
    # codesign training simply works within the device's constraint.
    device = slm_profile(num_levels=8, coverage=np.pi, seed=1)
    _, _, test_x, test_y = bench_digits
    codesign_config = bench_config.with_updates(codesign_temperature=0.5)

    def experiment():
        # Conventional flow: train a continuous-phase model, quantise afterwards.
        raw_model, raw_result = train_donn(bench_config, bench_digits, epochs=10)
        raw_report = HardwareTestbench(raw_model, profile=device, seed=0).report(test_x, test_y)

        # LightRidge flow: codesign training directly over the device levels.
        codesign_model, codesign_result = train_donn(
            codesign_config, bench_digits, epochs=10, device_profile=device
        )
        codesign_report = HardwareTestbench(codesign_model, profile=device, seed=0).report(test_x, test_y)
        return raw_result, raw_report, codesign_result, codesign_report

    raw_result, raw_report, codesign_result, codesign_report = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    rows = [
        {
            "flow": "post-training quantisation (SOTA baseline)",
            "simulation_accuracy": raw_report.simulation_accuracy,
            "deployed_accuracy": raw_report.hardware_accuracy,
            "deployment_gap": raw_report.accuracy_gap,
        },
        {
            "flow": "LightRidge codesign training",
            "simulation_accuracy": codesign_report.simulation_accuracy,
            "deployed_accuracy": codesign_report.hardware_accuracy,
            "deployment_gap": codesign_report.accuracy_gap,
        },
    ]
    notes = (
        "Paper: baseline deploys at 63.9% vs 95.2% for LightRidge (no manual calibration). "
        "Reproduced shape: codesign deployment gap is much smaller than post-hoc quantisation's."
    )
    report("Figure 1: deployment accuracy gap", rows, notes)
    save_results("fig01_deployment_gap", rows, notes)

    # Qualitative claims that must hold: codesign deploys out of the box at a
    # higher accuracy than the conventional train-then-quantise flow, and its
    # own simulation-to-hardware gap is small (no manual calibration needed).
    assert codesign_report.hardware_accuracy > raw_report.hardware_accuracy
    assert abs(codesign_report.accuracy_gap) < 0.05
