"""Figure 9: end-to-end emulation speedup across system sizes and depths.

The paper sweeps {1,3,5,7,10}-layer DONNs with resolutions from 100^2 to
500^2 and reports LightRidge's speedup over LightPipes on CPU and GPU.
Here the same sweep (scaled to 48^2-160^2, depths 1/3/5) is run against
the LightPipes-style baseline; the speedup should grow with system size,
mirroring the paper's trend.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_helpers import report, save_results
from repro.autograd import Tensor, no_grad
from repro.baselines import LightPipesEmulator
from repro.optics import RayleighSommerfeldPropagator, SpatialGrid

SIZES = (48, 96, 160)
DEPTHS = (1, 5)
BATCH = 4
WAVELENGTH = 532e-9
DISTANCE = 0.1


def _lightridge_emulation(propagator, fields: Tensor, phases) -> None:
    with no_grad():
        current = fields
        for phase in phases:
            current = propagator(current) * Tensor(np.exp(1j * phase))
        propagator(current).abs2()


def _sweep():
    rng = np.random.default_rng(0)
    rows = []
    for size in SIZES:
        grid = SpatialGrid(size=size, pixel_size=36e-6)
        propagator = RayleighSommerfeldPropagator(grid, WAVELENGTH, DISTANCE)
        emulator = LightPipesEmulator(grid, WAVELENGTH, DISTANCE)
        fields = rng.normal(size=(BATCH, size, size)) + 0j
        for depth in DEPTHS:
            phases = [rng.uniform(0, 2 * np.pi, size=(size, size)) for _ in range(depth)]

            tensor_fields = Tensor(fields)
            _lightridge_emulation(propagator, tensor_fields, phases)  # warm-up
            start = time.perf_counter()
            _lightridge_emulation(propagator, tensor_fields, phases)
            lightridge_seconds = time.perf_counter() - start

            start = time.perf_counter()
            emulator.run_donn(list(fields), phases)
            lightpipes_seconds = time.perf_counter() - start

            rows.append(
                {
                    "system_size": size,
                    "depth": depth,
                    "lightridge_seconds": lightridge_seconds,
                    "lightpipes_seconds": lightpipes_seconds,
                    "speedup": lightpipes_seconds / max(lightridge_seconds, 1e-9),
                }
            )
    return rows


def test_fig09_runtime_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    notes = (
        "Paper: up to 6.4x CPU speedup at 500^2 depth 5 and up to 12x GPU speedup; the advantage grows "
        "with system size.  Reproduced: speedup > 1 everywhere and increases from the smallest to the "
        "largest system size."
    )
    report("Figure 9: LightRidge vs LightPipes emulation runtime sweep", rows, notes)
    save_results("fig09_runtime_sweep", rows, notes)

    assert all(row["speedup"] > 1.0 for row in rows)
    smallest = [row["speedup"] for row in rows if row["system_size"] == min(SIZES)]
    largest = [row["speedup"] for row in rows if row["system_size"] == max(SIZES)]
    assert max(largest) > max(smallest)
