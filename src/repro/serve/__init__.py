"""``repro.serve``: async dynamic-batching serving over the inference engine.

The roadmap's "heavy traffic" scenario: put compiled
:class:`~repro.engine.InferenceSession` programs behind an asyncio
front-end that coalesces concurrent single-image requests into fused
batched engine calls, under a pluggable batching policy.

Public surface:

* :class:`InferenceServer` -- multi-tenant façade: register models by
  name, ``async with server:``, ``await server.submit(name, image)``;
  ``stats()`` exposes per-model latency percentiles and counters.
* :class:`DynamicBatcher` -- per-model request queue + coalescing worker
  (bounded ``max_queue``, policy-driven fusion and flushing).
* :class:`BatchingPolicy` and the built-ins -- :class:`FixedWindowPolicy`
  (static ``max_batch``/``max_wait_ms`` window), :class:`SLOAwarePolicy`
  (per-request deadlines + EWMA latency model, sheds hopeless requests),
  :class:`AdaptivePolicy` (AIMD batch sizing from queue depth);
  :func:`make_policy` builds one by name.
* :class:`BatcherStats` / :class:`PercentileWindow` -- sliding-window
  telemetry (p50/p95/p99 latency, queue-wait vs compute breakdown).
* :class:`SessionRegistry` -- name -> session catalogue.
* :class:`ServeError` hierarchy -- explicit overload / closed / unknown
  model / deadline-exceeded errors.

See ``docs/serving.md`` for the policy tuning guide,
``examples/serving_demo.py`` for the workflow, and
``benchmarks/bench_slo_serving.py`` for the open-loop SLO comparison of
the three policies.
"""

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.errors import (
    DeadlineExceededError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownModelError,
)
from repro.serve.metrics import PercentileWindow
from repro.serve.policy import (
    AdaptivePolicy,
    BatchingPolicy,
    FixedWindowPolicy,
    Request,
    SLOAwarePolicy,
    make_policy,
)
from repro.serve.registry import SessionRegistry
from repro.serve.server import InferenceServer

__all__ = [
    "InferenceServer",
    "DynamicBatcher",
    "BatcherStats",
    "PercentileWindow",
    "SessionRegistry",
    "BatchingPolicy",
    "FixedWindowPolicy",
    "SLOAwarePolicy",
    "AdaptivePolicy",
    "Request",
    "make_policy",
    "ServeError",
    "ServerOverloadedError",
    "ServerClosedError",
    "DeadlineExceededError",
    "UnknownModelError",
]
