"""``repro.serve``: async dynamic-batching serving over the inference engine.

The roadmap's "heavy traffic" scenario: put compiled
:class:`~repro.engine.InferenceSession` programs behind an asyncio
front-end that coalesces concurrent single-image requests into fused
batched engine calls.

Public surface:

* :class:`InferenceServer` -- multi-tenant façade: register models by
  name, ``async with server:``, ``await server.submit(name, image)``.
* :class:`DynamicBatcher` -- per-model request queue + coalescing worker
  (``max_batch`` / ``max_wait_ms`` / bounded ``max_queue``).
* :class:`SessionRegistry` -- name -> session catalogue.
* :class:`ServeError` hierarchy -- explicit overload / closed / unknown
  model errors.

See ``examples/serving_demo.py`` and the README's Serving section for the
workflow, and ``benchmarks/bench_serving_throughput.py`` for the
batched-vs-sequential throughput numbers.
"""

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.errors import (
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownModelError,
)
from repro.serve.registry import SessionRegistry
from repro.serve.server import InferenceServer

__all__ = [
    "InferenceServer",
    "DynamicBatcher",
    "BatcherStats",
    "SessionRegistry",
    "ServeError",
    "ServerOverloadedError",
    "ServerClosedError",
    "UnknownModelError",
]
