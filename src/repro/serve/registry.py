"""Multi-tenant session registry: model name -> compiled inference session.

One serving process hosts many models -- a digit classifier, an RGB
multi-channel classifier and a segmentation model can all answer traffic
concurrently, each behind its own dynamic batcher.  The registry is the
name-keyed catalogue the server routes requests with.

``register`` accepts either an already-compiled
:class:`~repro.engine.InferenceSession` (or any session-like object with
``run(batch, batch_size=...)``), a trainable model -- in which case it
is compiled on the spot via :func:`repro.engine.compile` with the given
session options (``dtype="complex64"`` etc.) -- or a *store reference*:
a :class:`~repro.store.StoreRef` (or, on a store-attached registry, a
``"name@version"`` string), compiled from the persisted spec with no
live model object required in this process.

A registry can be capacity-bounded: ``max_models=N`` turns it into an
LRU cache, so a multi-tenant server that registers models on demand
cannot grow without bound.  Eviction only drops the registry's
*in-memory reference* -- a session stays alive as long as anything else
(a live batcher, in-flight requests) still holds it, so traffic already
admitted on an evicted model completes normally.  For store-backed
models eviction is fully reversible: the on-disk version is never
touched, the pinned ref is kept, and the next :meth:`get` quietly
rebuilds the session from the store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.serve.errors import UnknownModelError


def _as_store_ref(obj):
    """``obj`` when it quacks like a :class:`~repro.store.StoreRef`, else ``None``."""
    if callable(getattr(obj, "load_spec", None)) and hasattr(obj, "content_hash"):
        return obj
    return None


class SessionRegistry:
    """Name-keyed catalogue of inference sessions for multi-tenant serving.

    Parameters
    ----------
    max_models:
        Optional capacity bound.  Registering a new name beyond it evicts
        the least-recently-used entries (use = :meth:`get` or
        :meth:`register`); :meth:`register` returns normally and the
        evicted names are observable via :attr:`last_evicted`.  ``None``
        (default) keeps the registry unbounded.
    store:
        Optional :class:`~repro.store.ModelStore` (or a directory path,
        wrapped on the spot).  Lets :meth:`register` take
        ``"name@version"`` strings, and makes LRU eviction of
        store-backed models reversible (see :meth:`get`).

    Raises
    ------
    ValueError
        For ``max_models < 1``; from :meth:`register` for an empty or
        non-string name, a duplicate name without ``replace=True``, or
        session options passed with an already-compiled session.
    TypeError
        From :meth:`register` for objects that are neither session-like
        (``run`` method) nor compilable models nor store references.
    UnknownModelError
        From :meth:`get` / :meth:`unregister` for unregistered names.

    Thread-safety: the registry is a plain ordered dict with no locking.
    :class:`~repro.serve.InferenceServer` mutates it only from the event
    loop (``add_model``), which is the supported pattern; registering
    concurrently from multiple threads is not.  Lookups (:meth:`get`,
    ``in``, ``names``) are safe from any thread, though under
    ``max_models`` a :meth:`get` also refreshes recency (and may rebuild
    an evicted store-backed session).
    """

    def __init__(self, max_models: Optional[int] = None, *, store=None) -> None:
        if max_models is not None and max_models < 1:
            raise ValueError("max_models must be >= 1 (or None for unbounded)")
        if store is not None and not hasattr(store, "ref"):
            from repro.store import ModelStore

            store = ModelStore(store)
        self.max_models = max_models
        self.store = store
        self._sessions: "OrderedDict[str, object]" = OrderedDict()
        #: Store refs pinned per name.  Deliberately *not* dropped on LRU
        #: eviction: the on-disk version outlives the in-memory session,
        #: and :meth:`get` uses the kept ref to rebuild it on demand.
        self._refs: dict = {}
        #: Names dropped by the most recent :meth:`register` call.
        self.last_evicted: Tuple[str, ...] = ()

    def register(self, name: str, model_or_session, *, replace: bool = False, **session_kwargs):
        """Register a session under ``name`` and return it.

        ``model_or_session`` is either a session-like object (used as-is;
        ``session_kwargs`` must then be empty), a model compiled via
        ``repro.engine.compile(model, **session_kwargs)``, a
        :class:`~repro.store.StoreRef` (compiled from the store; options
        are already baked into the stored spec), or -- on a
        store-attached registry -- a ``"name@version"`` string.  Under
        ``max_models``, the least-recently-used entries are evicted to
        make room (never the name being registered).
        """
        if not name or not isinstance(name, str):
            raise ValueError("model name must be a non-empty string")
        if name in self._sessions and not replace:
            raise ValueError(f"model {name!r} is already registered (pass replace=True to swap it)")
        if isinstance(model_or_session, str):
            if self.store is None:
                raise TypeError(
                    f"cannot register the string {model_or_session!r}: string model "
                    "references need a store-attached registry (SessionRegistry(store=...))"
                )
            model_or_session = self.store.ref(model_or_session)
        ref = _as_store_ref(model_or_session)
        if ref is not None:
            if session_kwargs:
                raise ValueError(
                    f"session options {sorted(session_kwargs)} cannot apply to a store "
                    "reference; they were fixed when the spec was published"
                )
            session = ref.build()
        elif callable(getattr(model_or_session, "run", None)):
            if session_kwargs:
                raise ValueError(
                    f"session options {sorted(session_kwargs)} need a model; "
                    f"{type(model_or_session).__name__} is already a session"
                )
            session = model_or_session
        else:
            from repro.engine import compile as engine_compile

            try:
                session = engine_compile(model_or_session, **session_kwargs)
            except TypeError:
                # Compatibility with duck-typed models outside the three
                # compilable families: honour their own export hook.
                if hasattr(model_or_session, "export_session"):
                    session = model_or_session.export_session(**session_kwargs)
                else:
                    raise TypeError(
                        f"cannot register {type(model_or_session).__name__}: expected an "
                        "InferenceSession-like object (run method), a compilable model "
                        "(repro.engine.compile), or a store reference"
                    ) from None
        self.last_evicted = tuple(self._insert(name, session))
        if ref is not None:
            self._refs[name] = ref
        else:
            self._refs.pop(name, None)
        return session

    def _insert(self, name: str, session) -> List[str]:
        """Install ``name`` (LRU-newest), evicting in-memory LRU overflow.

        Only sessions are dropped -- a store-backed victim keeps its ref
        (and its on-disk versions), so the eviction is a demotion to
        cold storage, not a deletion.
        """
        evicted: List[str] = []
        if self.max_models is not None and name not in self._sessions:
            while len(self._sessions) >= self.max_models:
                stale, _ = self._sessions.popitem(last=False)
                evicted.append(stale)
        self._sessions[name] = session
        self._sessions.move_to_end(name)  # registration counts as use
        return evicted

    def unregister(self, name: str) -> None:
        if name not in self._sessions and name not in self._refs:
            raise UnknownModelError(f"no model registered under {name!r}")
        self._sessions.pop(name, None)
        self._refs.pop(name, None)

    def demote(self, name: str) -> None:
        """Move ``name`` to the LRU front: first in line for eviction.

        The autoscaler's idle hook: a model idle past its timeout is
        made the *preferred* victim of the next capacity eviction --
        without dropping it now, while nothing needs its slot.  A later
        :meth:`get` restores its recency like any other use.  Only
        meaningful on a capacity-bounded registry, but harmless without
        ``max_models``.
        """
        if name not in self._sessions:
            raise UnknownModelError(f"no model registered under {name!r}")
        self._sessions.move_to_end(name, last=False)

    def get(self, name: str):
        try:
            session = self._sessions[name]
        except KeyError:
            ref = self._refs.get(name)
            if ref is not None:
                # The session was LRU-evicted but the model still exists
                # on disk: rebuild it from the pinned version.  The
                # rebuild counts as use, so it may evict today's LRU tail
                # in turn (observable via last_evicted, like a register).
                session = ref.build()
                self.last_evicted = tuple(self._insert(name, session))
                return session
            known = ", ".join(sorted(self._sessions)) or "<none>"
            raise UnknownModelError(f"no model registered under {name!r} (registered: {known})") from None
        if self.max_models is not None:
            self._sessions.move_to_end(name)  # lookup refreshes recency
        return session

    def store_ref(self, name: str):
        """The pinned :class:`~repro.store.StoreRef` of ``name``, or ``None``."""
        return self._refs.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._sessions)

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(self._sessions.items())

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = f", max_models={self.max_models}" if self.max_models is not None else ""
        return f"SessionRegistry({sorted(self._sessions)}{bound})"
