"""Multi-tenant session registry: model name -> compiled inference session.

One serving process hosts many models -- a digit classifier, an RGB
multi-channel classifier and a segmentation model can all answer traffic
concurrently, each behind its own dynamic batcher.  The registry is the
name-keyed catalogue the server routes requests with.

``register`` accepts either an already-compiled
:class:`~repro.engine.InferenceSession` (or any session-like object with
``run(batch, batch_size=...)``), or a trainable model exposing
``export_session`` -- in which case it is compiled on the spot with the
given session options (``dtype="complex64"`` etc.).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.serve.errors import UnknownModelError


class SessionRegistry:
    """Name-keyed catalogue of inference sessions for multi-tenant serving.

    Raises
    ------
    ValueError
        From :meth:`register` for an empty/non-string name, a duplicate
        name without ``replace=True``, or session options passed with an
        already-compiled session.
    TypeError
        From :meth:`register` for objects that are neither session-like
        (``run`` method) nor models (``export_session`` method).
    UnknownModelError
        From :meth:`get` / :meth:`unregister` for unregistered names.

    Thread-safety: the registry is a plain dict with no locking.
    :class:`~repro.serve.InferenceServer` mutates it only from the event
    loop (``add_model``), which is the supported pattern; registering
    concurrently from multiple threads is not.  Lookups (:meth:`get`,
    ``in``, ``names``) are safe from any thread.
    """

    def __init__(self) -> None:
        self._sessions: Dict[str, object] = {}

    def register(self, name: str, model_or_session, *, replace: bool = False, **session_kwargs):
        """Register a session under ``name`` and return it.

        ``model_or_session`` is either a session-like object (used as-is;
        ``session_kwargs`` must then be empty) or a model with
        ``export_session(**session_kwargs)``.
        """
        if not name or not isinstance(name, str):
            raise ValueError("model name must be a non-empty string")
        if name in self._sessions and not replace:
            raise ValueError(f"model {name!r} is already registered (pass replace=True to swap it)")
        if hasattr(model_or_session, "export_session"):
            session = model_or_session.export_session(**session_kwargs)
        elif callable(getattr(model_or_session, "run", None)):
            if session_kwargs:
                raise ValueError(
                    f"session options {sorted(session_kwargs)} need a model with export_session; "
                    f"{type(model_or_session).__name__} is already a session"
                )
            session = model_or_session
        else:
            raise TypeError(
                f"cannot register {type(model_or_session).__name__}: expected an InferenceSession-like "
                "object (run method) or a model with export_session()"
            )
        self._sessions[name] = session
        return session

    def unregister(self, name: str) -> None:
        if name not in self._sessions:
            raise UnknownModelError(f"no model registered under {name!r}")
        del self._sessions[name]

    def get(self, name: str):
        try:
            return self._sessions[name]
        except KeyError:
            known = ", ".join(sorted(self._sessions)) or "<none>"
            raise UnknownModelError(f"no model registered under {name!r} (registered: {known})") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._sessions)

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(self._sessions.items())

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionRegistry({sorted(self._sessions)})"
