"""Pluggable batching policies: when to admit, how long to linger, when to flush.

:class:`~repro.serve.DynamicBatcher` owns the *mechanism* of dynamic
batching (queue, worker task, scatter/gather); a :class:`BatchingPolicy`
owns the *decisions*:

* ``batch_limit`` -- how many requests may fuse into the next engine call;
* ``assign_deadline``/``admit`` -- per-request latency deadlines, and
  shedding of requests whose deadline already expired in the queue
  (failed with :class:`~repro.serve.DeadlineExceededError` *before* any
  engine time is spent on them);
* ``flush_deadline``/``linger_timeout`` -- how long the worker may hold a
  forming batch open waiting for more arrivals;
* ``observe`` -- feedback after every fused call (batch size, measured
  compute time, queue depth), which is what lets a policy adapt online.

Three built-in policies cover the throughput/latency trade-off space:

:class:`FixedWindowPolicy`
    The static policy PR 3 shipped inline in the batcher: constant
    ``max_batch``, constant ``max_wait_ms`` linger, ``idle_flush_ms``
    early flush.  Bit-for-bit compatible with the old behavior.
:class:`SLOAwarePolicy`
    Deadline-driven: every request gets ``arrival + slo_ms`` as its
    deadline, an online EWMA model of fused-call latency vs batch size
    predicts how long a batch of B will compute, and the policy sizes and
    flushes batches so predicted completion stays inside the tightest
    deadline in the batch.  Requests that can no longer make their
    deadline are rejected ahead of admission instead of wasting compute.
:class:`AdaptivePolicy`
    AIMD feedback on queue depth: additive-increase the target batch size
    while the queue is backed up (throughput mode), multiplicative-decrease
    when it drains (latency mode).  No deadlines needed.

Policies are stateful and single-batcher: give each
:class:`DynamicBatcher` its own instance (pass a *factory* for
server-wide defaults).  All methods run on the batcher's event loop, so
implementations need no locking but must not block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = [
    "Request",
    "BatchingPolicy",
    "FixedWindowPolicy",
    "SLOAwarePolicy",
    "AdaptivePolicy",
    "make_policy",
]


@dataclass
class Request:
    """One queued inference request, as policies see it.

    ``arrival`` and ``deadline`` are event-loop timestamps
    (``loop.time()`` seconds); ``deadline`` is ``None`` when neither the
    caller nor the policy imposes a latency budget.  ``retried`` marks a
    request already handed to the batcher's one-shot shed-retry hook, so
    a second shed fails it for good.  ``explicit_deadline`` records that
    the *caller* set the budget (``submit(..., slo_ms=...)``) rather than
    the policy: an explicit budget is a hard contract -- expiry resolves
    to :class:`~repro.serve.DeadlineExceededError`, never to a late
    rescued result.
    """

    payload: Any
    future: Any
    arrival: float
    deadline: Optional[float] = None
    retried: bool = False
    explicit_deadline: bool = False
    #: The request's :class:`~repro.obs.Trace` and its open
    #: ``serve.queue`` span when submitted inside a traced context
    #: (:mod:`repro.obs`); both stay ``None`` for untraced traffic.
    trace: Any = None
    span: Any = None


class BatchingPolicy:
    """Decision interface consulted by :class:`~repro.serve.DynamicBatcher`.

    Subclasses override the hooks below; the defaults are permissive
    (no deadlines, flush immediately, no adaptation), so a minimal policy
    only needs ``batch_limit``.
    """

    #: Short name used in stats/benchmark output.
    name = "policy"

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def assign_deadline(self, arrival: float) -> Optional[float]:
        """Absolute deadline for a request submitted at ``arrival``.

        Called by ``submit`` when the caller did not pass an explicit
        per-request budget.  ``None`` means "no deadline".
        """
        return None

    def admit(self, request: Request, now: float) -> bool:
        """Admit ``request`` into the forming batch?

        Returning ``False`` makes the batcher fail the request with
        :class:`~repro.serve.DeadlineExceededError` and count it under
        ``stats().deadline_missed`` -- it never reaches the engine.  The
        default sheds any request whose deadline has already passed.
        """
        return request.deadline is None or now <= request.deadline

    # ------------------------------------------------------------------ #
    # Batch forming
    # ------------------------------------------------------------------ #
    def batch_limit(self, now: float) -> int:
        """Most requests allowed to fuse into the next engine call."""
        raise NotImplementedError

    def flush_deadline(self, first: Request, now: float) -> float:
        """Absolute time by which the batch forming around ``first`` must
        flush, regardless of arrivals.  Computed once per batch (the old
        inline batcher re-derived this every loop tick)."""
        return now

    def linger_timeout(self, batch: List[Request], now: float, flush_at: float) -> float:
        """Seconds to wait for one more arrival; ``<= 0`` flushes now.

        Called whenever the queue drains while the batch is below
        ``batch_limit``.  ``flush_at`` is the value ``flush_deadline``
        returned for this batch.
        """
        return 0.0

    # ------------------------------------------------------------------ #
    # Feedback
    # ------------------------------------------------------------------ #
    def observe(self, *, batch_size: int, compute_s: float, queue_depth: int) -> None:
        """One fused call finished: ``batch_size`` rows took ``compute_s``
        seconds and ``queue_depth`` requests were still waiting."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FixedWindowPolicy(BatchingPolicy):
    """The static window policy (PR 3's inline batcher behavior, exactly).

    Parameters
    ----------
    max_batch:
        Constant fusion cap.
    max_wait_ms:
        Hard cap on the linger after the first request of a batch.
    idle_flush_ms:
        Flush once arrivals pause this long (default ``max_wait_ms / 4``);
        ``0`` flushes the moment the queue drains (continuous batching).

    No deadlines are assigned; explicit per-request budgets passed to
    ``submit(..., slo_ms=...)`` are still honored by the base-class
    ``admit`` shedding.
    """

    name = "fixed"

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        idle_flush_ms: Optional[float] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if idle_flush_ms is not None and idle_flush_ms < 0:
            raise ValueError("idle_flush_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.idle_flush = (
            float(idle_flush_ms) / 1000.0 if idle_flush_ms is not None else self.max_wait / 4.0
        )

    def batch_limit(self, now: float) -> int:
        return self.max_batch

    def flush_deadline(self, first: Request, now: float) -> float:
        return now + self.max_wait

    def linger_timeout(self, batch: List[Request], now: float, flush_at: float) -> float:
        remaining = flush_at - now
        if remaining <= 0:
            return 0.0
        return min(remaining, self.idle_flush) if self.idle_flush > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedWindowPolicy(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait * 1000:g}, idle_flush_ms={self.idle_flush * 1000:g})"
        )


class _EwmaLatencyModel:
    """Online EWMA model of fused-call latency as a function of batch size.

    Engine calls cost roughly ``overhead + per_item * B`` (fixed dispatch
    plus per-row FFT work).  The model keeps exponentially-weighted
    moments of ``(B, cost)`` observations and recovers both coefficients
    by EWMA linear regression; when every observed batch has had the same
    size (zero variance) it falls back to attributing the whole mean cost
    per item, which over-estimates large batches -- the conservative
    direction for SLO decisions.
    """

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.samples = 0
        self._b = 0.0    # E[B]
        self._c = 0.0    # E[cost]
        self._bb = 0.0   # E[B^2]
        self._bc = 0.0   # E[B * cost]

    def observe(self, batch_size: int, compute_s: float) -> None:
        b, c = float(batch_size), float(compute_s)
        if self.samples == 0:
            self._b, self._c, self._bb, self._bc = b, c, b * b, b * c
        else:
            a = self.alpha
            self._b += a * (b - self._b)
            self._c += a * (c - self._c)
            self._bb += a * (b * b - self._bb)
            self._bc += a * (b * c - self._bc)
        self.samples += 1

    @property
    def per_item_s(self) -> float:
        """Estimated marginal seconds per extra row in a batch."""
        variance = self._bb - self._b * self._b
        if variance > 1e-12:
            slope = (self._bc - self._b * self._c) / variance
            if slope > 0:
                return slope
        # Degenerate (constant batch size so far): full mean cost per item.
        return self._c / self._b if self._b > 0 else 0.0

    @property
    def overhead_s(self) -> float:
        """Estimated fixed per-call seconds (dispatch, FFT plan lookup)."""
        return max(0.0, self._c - self.per_item_s * self._b)

    def predict(self, batch_size: int) -> float:
        """Predicted seconds for a fused call over ``batch_size`` rows."""
        if self.samples == 0:
            return 0.0
        return self.overhead_s + self.per_item_s * max(1, batch_size)


class SLOAwarePolicy(BatchingPolicy):
    """Deadline-driven batching against a p99 latency objective.

    Every request is stamped with ``deadline = arrival + slo_ms``.  An
    online :class:`EWMA latency model <_EwmaLatencyModel>` predicts how
    long a fused call over B rows takes; the policy then

    * caps the batch at the largest B whose predicted compute fits inside
      ``compute_fraction`` of the SLO (queueing and linger consume the
      rest of the budget),
    * lingers for more arrivals only while the *tightest* deadline in the
      forming batch still leaves room to grow the batch and compute it
      (plus a ``margin_ms`` safety buffer), and
    * sheds queued requests whose deadline already passed -- they fail
      fast with :class:`~repro.serve.DeadlineExceededError` rather than
      dragging a whole batch (and every later request) past the SLO.

    Under a tight SLO the model forces small batches (low latency, lower
    peak throughput); under a loose one it grows batches toward
    ``max_batch``.  See ``docs/serving.md`` for tuning guidance.
    """

    name = "slo"

    def __init__(
        self,
        slo_ms: float = 50.0,
        *,
        max_batch: int = 64,
        compute_fraction: float = 0.25,
        margin_ms: Optional[float] = None,
        idle_flush_ms: Optional[float] = None,
        ewma_alpha: float = 0.2,
    ):
        if slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if not 0.0 < compute_fraction <= 1.0:
            raise ValueError("compute_fraction must be in (0, 1]")
        self.slo = float(slo_ms) / 1000.0
        self.max_batch = int(max_batch)
        # A request arriving just after a batch was flushed waits out that
        # batch's *whole* compute before its own batch even forms, so
        # worst-case latency is ~2x the per-batch compute plus linger.
        # A small compute_fraction keeps that structural worst case (plus
        # jitter) well inside the SLO; 0.5 would let it consume the
        # entire budget before queueing noise is even counted.  Batched
        # FFT engines saturate at modest batch sizes anyway, so capping
        # compute small costs little throughput.
        self.compute_fraction = float(compute_fraction)
        # Safety buffer between predicted completion and the deadline.
        # Event-loop scheduling jitter does not shrink with the SLO, so
        # the default has an absolute floor alongside the relative term.
        self.margin = (
            (float(margin_ms) / 1000.0) if margin_ms is not None else max(0.003, self.slo * 0.08)
        )
        # Idle linger cap: waiting longer than this for the *next* arrival
        # burns budget with no fusion to show for it.  Deliberately short
        # even under loose SLOs -- lingering toward a far deadline only
        # raises baseline latency; under load, fusion comes for free from
        # requests piling up while the previous batch computes.
        self.idle_flush = (
            float(idle_flush_ms) / 1000.0 if idle_flush_ms is not None else min(0.002, self.slo / 10.0)
        )
        self.model = _EwmaLatencyModel(alpha=ewma_alpha)

    # ------------------------------------------------------------------ #
    def assign_deadline(self, arrival: float) -> Optional[float]:
        return arrival + self.slo

    def batch_limit(self, now: float) -> int:
        if self.model.samples == 0:
            return self.max_batch  # no evidence yet: be optimistic, learn fast
        budget = self.slo * self.compute_fraction - self.model.overhead_s
        per_item = self.model.per_item_s
        if per_item <= 0:
            return self.max_batch
        fit = int(budget / per_item)
        return max(1, min(self.max_batch, fit))

    def flush_deadline(self, first: Request, now: float) -> float:
        """Latest start so the batch's *first* (tightest) deadline holds."""
        deadline = first.deadline if first.deadline is not None else now + self.slo
        return deadline - self.model.predict(self.batch_limit(now)) - self.margin

    def linger_timeout(self, batch: List[Request], now: float, flush_at: float) -> float:
        # The tightest deadline governs.  Arrival order alone does not
        # guarantee it is batch[0]: an explicit per-request ``slo_ms``
        # can make a *later* arrival the most urgent.  Re-predict with
        # the batch one row bigger: if adding the next arrival would push
        # completion past that deadline, stop lingering now.
        deadlines = [request.deadline for request in batch if request.deadline is not None]
        earliest = min(deadlines) if deadlines else now + self.slo
        must_start = earliest - self.model.predict(len(batch) + 1) - self.margin
        remaining = min(must_start, flush_at) - now
        if remaining <= 0:
            return 0.0
        return min(remaining, self.idle_flush) if self.idle_flush > 0 else 0.0

    def observe(self, *, batch_size: int, compute_s: float, queue_depth: int) -> None:
        self.model.observe(batch_size, compute_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SLOAwarePolicy(slo_ms={self.slo * 1000:g}, max_batch={self.max_batch}, "
            f"predicted_per_item_ms={self.model.per_item_s * 1000:.3f})"
        )


class AdaptivePolicy(BatchingPolicy):
    """AIMD batch sizing from observed queue depth (no deadlines needed).

    After every fused call the policy looks at how many requests are
    still queued:

    * queue at or above the current target -> the server is falling
      behind; *additive-increase* the target batch size (more fusion,
      more throughput);
    * queue empty -> traffic is light; *multiplicative-decrease* toward
      ``min_batch`` (smaller batches, lower latency).

    The classic AIMD shape converges near the smallest batch size that
    keeps the queue bounded -- throughput when you need it, latency when
    you don't.  Linger semantics are fixed-window (``max_wait_ms`` /
    ``idle_flush_ms``).
    """

    name = "adaptive"

    def __init__(
        self,
        *,
        min_batch: int = 1,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        idle_flush_ms: Optional[float] = None,
        increase: float = 2.0,
        decrease: float = 0.5,
    ):
        if min_batch < 1 or max_batch < min_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if increase <= 0:
            raise ValueError("increase must be > 0")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self._window = FixedWindowPolicy(
            max_batch=max_batch, max_wait_ms=max_wait_ms, idle_flush_ms=idle_flush_ms
        )
        self._target = float(self.min_batch)

    @property
    def target(self) -> float:
        """Current (fractional) AIMD batch-size target."""
        return self._target

    def batch_limit(self, now: float) -> int:
        return int(math.ceil(self._target))

    def flush_deadline(self, first: Request, now: float) -> float:
        return self._window.flush_deadline(first, now)

    def linger_timeout(self, batch: List[Request], now: float, flush_at: float) -> float:
        return self._window.linger_timeout(batch, now, flush_at)

    def observe(self, *, batch_size: int, compute_s: float, queue_depth: int) -> None:
        if queue_depth >= self._target:
            self._target = min(float(self.max_batch), self._target + self.increase)
        elif queue_depth == 0:
            self._target = max(float(self.min_batch), self._target * self.decrease)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdaptivePolicy(target={self._target:.1f}, max_batch={self.max_batch})"


_POLICIES = {
    "fixed": FixedWindowPolicy,
    "slo": SLOAwarePolicy,
    "adaptive": AdaptivePolicy,
}


def make_policy(name: str, **kwargs) -> BatchingPolicy:
    """Build a policy by name: ``"fixed"``, ``"slo"`` or ``"adaptive"``.

    >>> from repro.serve import make_policy
    >>> make_policy("fixed", max_batch=8).batch_limit(0.0)
    8
    >>> make_policy("slo", slo_ms=25.0).name
    'slo'
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown batching policy {name!r} (known: {known})") from None
    return cls(**kwargs)
