"""Error types of the serving layer.

All serving failures derive from :class:`ServeError` so callers can catch
one base class.  Overload is an explicit, immediate error -- a bounded
queue rejecting work loudly beats an unbounded one deadlocking quietly.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for all ``repro.serve`` errors."""


class ServerOverloadedError(ServeError):
    """The request queue is full; the caller should back off and retry."""


class ServerClosedError(ServeError):
    """The server/batcher has been stopped and accepts no new requests."""


class DeadlineExceededError(ServeError):
    """The request's latency deadline expired before it reached the engine.

    Raised to the *caller's* future by deadline-aware policies (see
    :class:`~repro.serve.SLOAwarePolicy`) when a queued request can no
    longer be answered within its SLO: shedding it ahead of admission
    keeps the batch -- and every request behind it -- inside the budget
    instead of computing an answer nobody can use.  Counted under
    ``stats().deadline_missed``.
    """


class UnknownModelError(ServeError, KeyError):
    """No session is registered under the requested model name."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message readable
        return Exception.__str__(self)
