"""Per-request serving telemetry: sliding-window percentiles + counters.

Throughput alone cannot tell you whether a serving configuration is
*good*: dynamic batching trades per-request latency for fusion, so the
interesting numbers are the latency percentiles (p50/p95/p99), where the
time went (queueing vs compute), and how much work was refused (overload
rejections, deadline misses).  This module holds those numbers.

Two pieces:

* :class:`PercentileWindow` -- a fixed-capacity ring buffer of recent
  observations with percentile/mean queries.  A *sliding* window rather
  than an all-time histogram: serving telemetry should answer "how is the
  server doing *now*", and a long-gone warm-up spike must age out.
* :class:`BatcherStats` -- the per-batcher telemetry object
  (:meth:`DynamicBatcher.stats` returns it; ``InferenceServer.stats()``
  returns one per model).  Plain counters plus three windows: end-to-end
  request latency, queue wait (arrival to batch start) and engine compute
  time.  ``queue_wait + compute`` accounts for essentially the whole
  request latency, so the breakdown tells you whether to tune the policy
  (queue-dominated) or the engine (compute-dominated).

Thread/async-safety: all mutation happens on the batcher's event loop
(single worker task), so no locking is needed; reading a snapshot from
another thread sees a consistent-enough view for monitoring.  The numpy
percentile call happens at *query* time -- recording an observation is
O(1) and allocation-free after warm-up.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.obs.prom import Histogram

#: Default number of recent requests a sliding window remembers.  Big
#: enough that a p99 over it is meaningful (>= several hundred samples),
#: small enough that stale traffic ages out quickly.
DEFAULT_WINDOW = 1024


class PercentileWindow:
    """Sliding window over the last ``capacity`` float observations.

    ``record`` is O(1) (ring-buffer overwrite); ``percentile``/``mean``
    are O(window) at query time.  Percentiles over an empty window return
    ``nan`` rather than raising, so snapshot code never needs guards.

    >>> window = PercentileWindow(capacity=4)
    >>> for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
    ...     window.record(value)
    >>> len(window)            # the 1.0 has aged out
    4
    >>> window.percentile(50)  # median of [2, 3, 4, 100]
    3.5
    """

    def __init__(self, capacity: int = DEFAULT_WINDOW):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer = np.empty(self.capacity, dtype=float)
        self._count = 0  # total observations ever recorded
        self._next = 0   # ring-buffer write cursor

    def record(self, value: float) -> None:
        self._buffer[self._next] = float(value)
        self._next = (self._next + 1) % self.capacity
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_recorded(self) -> int:
        """All-time observation count (window length caps at capacity)."""
        return self._count

    def _values(self) -> np.ndarray:
        return self._buffer[: len(self)]

    def percentile(self, q: float) -> float:
        if len(self) == 0:
            return float("nan")
        return float(np.percentile(self._values(), q))

    def quantiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Several percentiles from **one** sorted snapshot.

        A snapshot-then-sort makes two guarantees a loop of
        :meth:`percentile` calls cannot: the answers are mutually
        consistent (all computed over the *same* observations, even if a
        recording races the query from another thread), and the window
        is sorted once instead of partitioned per quantile.  The
        interpolation matches ``np.percentile``'s default (linear)
        exactly.
        """
        if len(self) == 0:
            return tuple(float("nan") for _ in qs)
        values = np.sort(self._values())  # one copy + one sort: the snapshot
        top = len(values) - 1
        out = []
        for q in qs:
            position = top * (float(q) / 100.0)
            low = int(math.floor(position))
            high = min(low + 1, top)
            fraction = position - low
            out.append(float(values[low] * (1.0 - fraction) + values[high] * fraction))
        return tuple(out)

    def mean(self) -> float:
        if len(self) == 0:
            return float("nan")
        return float(self._values().mean())

    def max(self) -> float:
        if len(self) == 0:
            return float("nan")
        return float(self._values().max())


class BatcherStats:
    """Telemetry for one :class:`~repro.serve.DynamicBatcher`.

    Counters
    --------
    submitted / completed:
        Requests accepted into the queue / resolved with a result.
    rejected:
        Requests refused at :meth:`~repro.serve.DynamicBatcher.submit`
        because the bounded queue was full
        (:class:`~repro.serve.ServerOverloadedError`).
    deadline_missed:
        Requests whose latency deadline expired while they waited in the
        queue; the batcher fails them with
        :class:`~repro.serve.DeadlineExceededError` *before* admission to
        a batch, so no engine time is wasted on answers nobody can use.
    shed_retried / shed_recovered:
        Requests handed to the batcher's one-shot shed-retry hook (the
        cluster layer's rescue-on-an-idle-replica path) instead of being
        failed outright, and how many of those the hook answered.  A
        rescued request counts under neither ``deadline_missed`` nor the
        batch counters -- it bypassed the batch entirely.
    batches / largest_batch / mean_batch_size:
        Fusion quality of the policy.

    ``replicas`` is ``None`` for in-process models; a server running a
    model on a :class:`~repro.cluster.ReplicaGroup` attaches the group's
    per-replica breakdown (in-flight depth, EWMA latency, restarts)
    before returning :meth:`~repro.serve.InferenceServer.stats`.

    Windows (milliseconds)
    ----------------------
    ``latency`` (submit to result), ``queue_wait`` (submit to batch
    start) and ``compute`` (fused engine-call duration, recorded once per
    batch).  Exposed as ``p50_latency_ms`` etc. and via :meth:`as_dict`,
    which is what ``InferenceServer.stats()`` serializes for dashboards.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_missed = 0
        self.shed_retried = 0
        self.shed_recovered = 0
        self.batches = 0
        self.largest_batch = 0
        self.latency = PercentileWindow(window)
        self.queue_wait = PercentileWindow(window)
        self.compute = PercentileWindow(window)
        #: Fixed-bucket histograms for the Prometheus exposition
        #: (``GET /metrics``): cumulative over the batcher's lifetime,
        #: unlike the sliding windows above.  Recording is O(log buckets)
        #: and NaN-safe (:class:`repro.obs.Histogram`).
        self.latency_hist = Histogram()
        self.queue_wait_hist = Histogram()
        self.compute_hist = Histogram()
        #: Per-replica breakdown, attached by the server for cluster models.
        self.replicas = None
        #: Autoscaler snapshot (:meth:`~repro.cluster.Autoscaler.snapshot`),
        #: attached by the server for autoscaled models.
        self.autoscaler = None
        #: Store identity (:meth:`~repro.store.StoreRef.describe`: name,
        #: pinned version, content hash), attached by the server for
        #: store-backed models -- ``swap_model`` flips it atomically.
        self.store = None

    # ------------------------------------------------------------------ #
    # Recording (called from the batcher's worker task)
    # ------------------------------------------------------------------ #
    def record_batch(self, batch_size: int, compute_s: float) -> None:
        """One fused engine call finished."""
        self.batches += 1
        self.completed += batch_size
        self.largest_batch = max(self.largest_batch, batch_size)
        self.compute.record(compute_s * 1000.0)
        self.compute_hist.observe(compute_s * 1000.0)

    def record_request(self, queue_wait_s: float, latency_s: float) -> None:
        """One request resolved (per row of the batch)."""
        self.queue_wait.record(queue_wait_s * 1000.0)
        self.latency.record(latency_s * 1000.0)
        self.queue_wait_hist.observe(queue_wait_s * 1000.0)
        self.latency_hist.observe(latency_s * 1000.0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def p50_latency_ms(self) -> float:
        return self.latency.percentile(50)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency.percentile(95)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.percentile(99)

    def as_dict(self) -> dict:
        """Flat JSON-friendly snapshot (counters + percentile summary).

        Cluster-backed models additionally carry a ``replicas`` list with
        one row per worker process.
        """
        # One sorted pass over one snapshot: the three quantiles are
        # mutually consistent even when a recording races this query.
        p50, p95, p99 = self.latency.quantiles((50, 95, 99))
        snapshot = {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "shed_retried": self.shed_retried,
            "shed_recovered": self.shed_recovered,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
            "p50_latency_ms": p50,
            "p95_latency_ms": p95,
            "p99_latency_ms": p99,
            "mean_queue_wait_ms": self.queue_wait.mean(),
            "mean_compute_ms": self.compute.mean(),
        }
        if self.replicas is not None:
            snapshot["replicas"] = list(self.replicas)
        if self.autoscaler is not None:
            snapshot["autoscaler"] = dict(self.autoscaler)
        if self.store is not None:
            snapshot["store"] = dict(self.store)
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatcherStats(completed={self.completed}, rejected={self.rejected}, "
            f"deadline_missed={self.deadline_missed}, batches={self.batches}, "
            f"mean_batch_size={self.mean_batch_size:.2f})"
        )
