"""Dynamic micro-batch coalescing over one inference session.

The engine's throughput comes from batched FFTs: one fused call over B
images is far cheaper than B single-image calls, because the fixed
per-invocation cost (python dispatch, FFT plan lookup, kernel launches)
amortizes over the batch.  :class:`DynamicBatcher` converts *concurrent
single-image requests* into exactly that shape of work:

* requests enter a bounded queue (overflow raises
  :class:`~repro.serve.errors.ServerOverloadedError` immediately -- no
  silent buffering, no deadlock);
* a worker task collects up to ``max_batch`` requests, waiting at most
  ``max_wait_ms`` after the first one arrives -- and flushing early when
  arrivals pause for ``idle_flush_ms`` (a full linger would tax every
  batch with the worst-case wait even after a convoy has fully arrived);
* the batch runs as **one** engine call (in a thread-pool executor by
  default, so the event loop keeps accepting requests while numpy works);
* each result row is scattered back to its caller's future.

``max_wait_ms`` trades tail latency for fusion: 0 fuses only what is
already queued, a few milliseconds lets closed-loop clients pile up.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import ServerClosedError, ServerOverloadedError

_STOP = object()


@dataclass
class BatcherStats:
    """Counters exposed by :meth:`DynamicBatcher.stats` (and the server)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    batches: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
        }


class DynamicBatcher:
    """Coalesce concurrent requests into fused engine calls.

    Parameters
    ----------
    session:
        Anything with ``run(batch, batch_size=...) -> ndarray`` whose
        result's leading axis indexes the batch -- an
        :class:`~repro.engine.InferenceSession` in production, a fake in
        tests.
    max_batch:
        Upper bound on requests fused into one engine call.
    max_wait_ms:
        Hard cap on how long the worker lingers after the first request
        of a batch for more requests to coalesce.
    idle_flush_ms:
        Flush the forming batch once no new request has arrived for this
        long (default: ``max_wait_ms / 4``).  Closed-loop convoys arrive
        within microseconds of each other, so this keeps the fused batch
        large while shedding almost the entire linger from the latency.
        ``0`` flushes as soon as the queue empties.
    max_queue:
        Bound on queued (not yet running) requests; beyond it
        :meth:`submit` raises :class:`ServerOverloadedError`.
    input_shape:
        When given, each request payload must have exactly this shape
        (malformed requests fail fast instead of poisoning a batch).
    run_in_executor:
        Run engine calls in the default thread-pool executor so the event
        loop stays responsive (numpy/scipy FFTs release the GIL).  Disable
        for fully deterministic unit tests.

    Requests may be submitted before :meth:`start`; they queue up (within
    ``max_queue``) and run once the worker starts.
    """

    def __init__(
        self,
        session,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        idle_flush_ms: Optional[float] = None,
        input_shape: Optional[Sequence[int]] = None,
        run_in_executor: bool = True,
        name: str = "",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if idle_flush_ms is not None and idle_flush_ms < 0:
            raise ValueError("idle_flush_ms must be >= 0")
        if not callable(getattr(session, "run", None)):
            raise TypeError(f"session must expose run(batch, batch_size=...); got {type(session).__name__}")
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.idle_flush = (float(idle_flush_ms) / 1000.0) if idle_flush_ms is not None else self.max_wait / 4.0
        self.max_queue = int(max_queue)
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.run_in_executor = bool(run_in_executor)
        self.name = name or type(session).__name__
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue + 1)  # +1 for the stop sentinel
        self._worker: Optional[asyncio.Task] = None
        self._closed = False
        self._stats = BatcherStats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._worker is not None and not self._worker.done()

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "DynamicBatcher":
        """Spawn the worker task on the running event loop."""
        if self._closed:
            raise ServerClosedError(f"batcher {self.name!r} is closed")
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(
                self._worker_loop(), name=f"repro-serve-{self.name}"
            )
        return self

    async def stop(self) -> None:
        """Stop accepting requests, drain the queue, and join the worker."""
        if self._closed:
            return
        self._closed = True
        if self._worker is None:
            # Never started: fail any queued requests instead of stranding them.
            while not self._queue.empty():
                _, future = self._queue.get_nowait()
                if not future.done():
                    future.set_exception(ServerClosedError(f"batcher {self.name!r} stopped before starting"))
            return
        await self._queue.put(_STOP)
        await self._worker

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def submit(self, payload) -> np.ndarray:
        """Submit one request; resolves to that request's result row.

        Raises :class:`ServerOverloadedError` when the queue is full and
        :class:`ServerClosedError` after :meth:`stop`.
        """
        if self._closed:
            raise ServerClosedError(f"batcher {self.name!r} is closed")
        array = np.asarray(payload, dtype=float)
        if self.input_shape is not None and array.shape != self.input_shape:
            raise ValueError(
                f"{self.name!r} expects input shape {self.input_shape}, got {array.shape}"
            )
        future = asyncio.get_running_loop().create_future()
        if self._queue.qsize() >= self.max_queue:
            self._stats.rejected += 1
            raise ServerOverloadedError(
                f"batcher {self.name!r} is overloaded ({self.max_queue} requests pending)"
            )
        self._queue.put_nowait((array, future))
        self._stats.submitted += 1
        return await future

    def stats(self) -> BatcherStats:
        return self._stats

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch: List[Tuple[np.ndarray, asyncio.Future]] = [item]
            stopping = False
            deadline = loop.time() + self.max_wait
            while not stopping and len(batch) < self.max_batch:
                # Sweep everything already queued -- no timer machinery on
                # this path, so convoys fuse at zero added latency.
                try:
                    while len(batch) < self.max_batch:
                        nxt = self._queue.get_nowait()
                        if nxt is _STOP:
                            stopping = True
                            break
                        batch.append(nxt)
                except asyncio.QueueEmpty:
                    pass
                if stopping or len(batch) >= self.max_batch:
                    break
                # Queue drained: linger for the next arrival, bounded by
                # the idle-flush gap and the overall deadline.
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                timeout = min(remaining, self.idle_flush) if self.idle_flush > 0 else 0.0
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break  # arrivals paused; flush what we have
                if nxt is _STOP:
                    stopping = True
                else:
                    batch.append(nxt)
            await self._execute(batch)
            if stopping:
                return

    async def _execute(self, batch: List[Tuple[np.ndarray, Any]]) -> None:
        payloads = [payload for payload, _ in batch]
        futures = [future for _, future in batch]
        try:
            stacked = np.stack(payloads, axis=0)
            if self.run_in_executor:
                loop = asyncio.get_running_loop()
                results = await loop.run_in_executor(None, self._fused_call, stacked)
            else:
                results = self._fused_call(stacked)
            results = np.asarray(results)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"engine returned {len(results)} rows for a batch of {len(batch)}"
                )
        except Exception as exc:
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self._stats.batches += 1
        self._stats.completed += len(batch)
        self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
        for future, row in zip(futures, results):
            if not future.done():
                future.set_result(row)

    def _fused_call(self, stacked: np.ndarray) -> np.ndarray:
        """One engine call over the whole coalesced batch."""
        return self.session.run(stacked, batch_size=len(stacked))
