"""Dynamic micro-batch coalescing over one inference session.

The engine's throughput comes from batched FFTs: one fused call over B
images is far cheaper than B single-image calls, because the fixed
per-invocation cost (python dispatch, FFT plan lookup, kernel launches)
amortizes over the batch.  :class:`DynamicBatcher` converts *concurrent
single-image requests* into exactly that shape of work:

* requests enter a bounded queue (overflow raises
  :class:`~repro.serve.errors.ServerOverloadedError` immediately -- no
  silent buffering, no deadlock);
* a worker task collects requests into a batch, consulting a pluggable
  :class:`~repro.serve.policy.BatchingPolicy` for every decision: the
  fusion cap, how long to linger for more arrivals, and whether a queued
  request's deadline has already expired (in which case it fails fast
  with :class:`~repro.serve.errors.DeadlineExceededError` *before* any
  engine time is spent on it);
* the batch runs as **one** engine call (in a thread-pool executor by
  default, so the event loop keeps accepting requests while numpy works)
  -- or, when a ``dispatch`` coroutine is installed, it is handed off
  wholesale (this is the seam ``repro.cluster`` plugs replica groups
  into: the fused batch leaves the process instead of running inline);
* each result row is scattered back to its caller's future, and the
  measured queue-wait / compute times feed both the telemetry windows
  (:class:`~repro.serve.metrics.BatcherStats`) and the policy's
  ``observe`` hook -- the feedback loop adaptive policies learn from.

The mechanism lives here; the throughput/latency trade-off lives in the
policy.  The default :class:`~repro.serve.policy.FixedWindowPolicy`
preserves the classic ``max_batch`` / ``max_wait_ms`` window semantics.
"""

from __future__ import annotations

import asyncio
import os
from typing import List, Optional, Sequence

import numpy as np

from repro.obs.trace import (
    Span,
    current_trace,
    reset_dispatch_context,
    set_dispatch_context,
)
from repro.serve.errors import DeadlineExceededError, ServerClosedError, ServerOverloadedError
from repro.serve.metrics import BatcherStats
from repro.serve.policy import BatchingPolicy, FixedWindowPolicy, Request

_STOP = object()


class DynamicBatcher:
    """Coalesce concurrent requests into fused engine calls.

    Parameters
    ----------
    session:
        Anything with ``run(batch, batch_size=...) -> ndarray`` whose
        result's leading axis indexes the batch -- an
        :class:`~repro.engine.InferenceSession` in production, a fake in
        tests.
    policy:
        A :class:`~repro.serve.policy.BatchingPolicy` owning every
        batching decision.  Policies are stateful: give each batcher its
        own instance.  When omitted, a
        :class:`~repro.serve.policy.FixedWindowPolicy` is built from the
        three legacy tuning knobs below.
    max_batch / max_wait_ms / idle_flush_ms:
        Tuning for the default fixed-window policy (upper bound on fused
        requests; hard cap on the post-first-arrival linger; early flush
        once arrivals pause -- see :class:`FixedWindowPolicy`).  Ignored
        when an explicit ``policy`` is passed.
    max_queue:
        Bound on queued (not yet running) requests; beyond it
        :meth:`submit` raises :class:`ServerOverloadedError`.
    input_shape:
        When given, each request payload must have exactly this shape
        (malformed requests fail fast instead of poisoning a batch).
    run_in_executor:
        Run engine calls in the default thread-pool executor so the event
        loop stays responsive (numpy/scipy FFTs release the GIL).  Disable
        for fully deterministic unit tests.
    dispatch:
        Optional coroutine function ``async (stacked_batch) -> results``
        that replaces the inline engine call entirely -- the seam the
        cluster layer uses to route fused batches to replica worker
        processes (``ReplicaGroup.infer``).  ``run_in_executor`` is
        irrelevant when set.  ``session`` is still consulted for
        ``input_shape``/empty-batch semantics.  Unlike the inline path
        (which computes one batch at a time -- a second in-process call
        would just fight the first for the same cores), dispatched
        batches *pipeline*: the worker keeps forming and launching
        batches, up to ``max_concurrent_dispatches`` outstanding, so N
        replicas genuinely compute N batches at once.
    max_concurrent_dispatches:
        Cap on in-flight dispatched batches (cluster mode only); the
        server sets it to the replica count.  When the cap is reached the
        worker blocks -- exactly the backpressure signal that lets the
        queue (and ``ServerOverloadedError``) do their job.  Default 2.
    stats_window:
        Capacity of the telemetry percentile windows
        (:class:`~repro.serve.metrics.BatcherStats`); defaults to the
        monitoring default (1024).  Autoscaled models use a smaller
        window so post-scaling traffic displaces stale samples quickly
        enough for the control loop to see its own effect.
    shed_retry:
        Optional coroutine function ``async (payload) -> result_row``
        giving a request that is about to be shed on deadline one last
        chance elsewhere (``ReplicaGroup.rescue`` dispatches it to an
        idle replica).  One-shot per request; if the hook raises, the
        request fails with the original
        :class:`~repro.serve.errors.DeadlineExceededError`.  Applies only
        to policy-stamped deadlines -- an explicit caller budget
        (``submit(..., slo_ms=...)``) always fails hard on expiry.

    Requests may be submitted before :meth:`start`; they queue up (within
    ``max_queue``) and run once the worker starts.

    Raises
    ------
    ValueError / TypeError
        At construction for invalid tuning or a session without ``run``.
    ServerOverloadedError
        From :meth:`submit` when the bounded queue is full.
    ServerClosedError
        From :meth:`submit` after :meth:`stop`.
    DeadlineExceededError
        To a submitted request's future when its deadline expires in the
        queue (deadline-aware policies, or an explicit ``slo_ms``).

    Thread/async-safety: one batcher belongs to one event loop.  All
    public coroutines must be awaited on that loop; the only work that
    leaves the loop is the engine call itself (executor thread).  Stats
    objects are mutated solely by the worker task.
    """

    def __init__(
        self,
        session,
        *,
        policy: Optional[BatchingPolicy] = None,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        idle_flush_ms: Optional[float] = None,
        input_shape: Optional[Sequence[int]] = None,
        run_in_executor: bool = True,
        dispatch=None,
        shed_retry=None,
        max_concurrent_dispatches: int = 2,
        stats_window: Optional[int] = None,
        name: str = "",
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_concurrent_dispatches < 1:
            raise ValueError("max_concurrent_dispatches must be >= 1")
        if not callable(getattr(session, "run", None)):
            raise TypeError(f"session must expose run(batch, batch_size=...); got {type(session).__name__}")
        if dispatch is not None and not callable(dispatch):
            raise TypeError(f"dispatch must be an async callable, got {type(dispatch).__name__}")
        if shed_retry is not None and not callable(shed_retry):
            raise TypeError(f"shed_retry must be an async callable, got {type(shed_retry).__name__}")
        if policy is None:
            # FixedWindowPolicy validates the legacy knobs and reproduces
            # the pre-policy batcher behavior exactly.
            policy = FixedWindowPolicy(
                max_batch=max_batch, max_wait_ms=max_wait_ms, idle_flush_ms=idle_flush_ms
            )
        elif not isinstance(policy, BatchingPolicy):
            raise TypeError(f"policy must be a BatchingPolicy, got {type(policy).__name__}")
        self.session = session
        self.policy = policy
        self.max_queue = int(max_queue)
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.run_in_executor = bool(run_in_executor)
        self._dispatch = dispatch
        self._shed_retry = shed_retry
        self._max_concurrent_dispatches = int(max_concurrent_dispatches)
        self._dispatch_slots: Optional[asyncio.Semaphore] = None  # created on the worker's loop
        self._dispatch_tasks: set = set()
        self.name = name or type(session).__name__
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue + 1)  # +1 for the stop sentinel
        self._worker: Optional[asyncio.Task] = None
        self._retry_tasks: set = set()
        self._closed = False
        self._stats = BatcherStats(stats_window) if stats_window is not None else BatcherStats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._worker is not None and not self._worker.done()

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "DynamicBatcher":
        """Spawn the worker task on the running event loop."""
        if self._closed:
            raise ServerClosedError(f"batcher {self.name!r} is closed")
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(
                self._worker_loop(), name=f"repro-serve-{self.name}"
            )
        return self

    async def stop(self) -> None:
        """Stop accepting requests, drain the queue, and join the worker."""
        if self._closed:
            return
        self._closed = True
        if self._worker is None:
            # Never started: fail any queued requests instead of stranding them.
            while not self._queue.empty():
                request = self._queue.get_nowait()
                if request is not _STOP and not request.future.done():
                    request.future.set_exception(
                        ServerClosedError(f"batcher {self.name!r} stopped before starting")
                    )
            return
        await self._queue.put(_STOP)
        await self._worker
        if self._dispatch_tasks:
            # Dispatched batches still computing on replicas: part of the
            # drain contract -- every accepted request resolves.
            await asyncio.gather(*list(self._dispatch_tasks), return_exceptions=True)
        if self._retry_tasks:
            # Shed-retry rescues already hold their request's future; let
            # them resolve so stop() never strands a caller.
            await asyncio.gather(*list(self._retry_tasks), return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def submit(self, payload, *, slo_ms: Optional[float] = None) -> np.ndarray:
        """Submit one request; resolves to that request's result row.

        ``slo_ms`` sets an explicit per-request latency budget; when
        omitted, deadline-aware policies stamp their default
        (``policy.assign_deadline``) and window policies leave the request
        deadline-free.

        Raises :class:`ServerOverloadedError` when the queue is full,
        :class:`ServerClosedError` after :meth:`stop`, and resolves to
        :class:`DeadlineExceededError` if the deadline expires in queue.
        """
        if self._closed:
            raise ServerClosedError(f"batcher {self.name!r} is closed")
        array = np.asarray(payload, dtype=float)
        if self.input_shape is not None and array.shape != self.input_shape:
            raise ValueError(
                f"{self.name!r} expects input shape {self.input_shape}, got {array.shape}"
            )
        loop = asyncio.get_running_loop()
        arrival = loop.time()
        explicit = slo_ms is not None
        if explicit:
            if slo_ms <= 0:
                raise ValueError("slo_ms must be > 0")
            deadline = arrival + slo_ms / 1000.0
        else:
            deadline = self.policy.assign_deadline(arrival)
        future = loop.create_future()
        if self._queue.qsize() >= self.max_queue:
            self._stats.rejected += 1
            raise ServerOverloadedError(
                f"batcher {self.name!r} is overloaded ({self.max_queue} requests pending)"
            )
        # Trace propagation: a submit running inside a traced context
        # (the gateway installs it via use_trace) opens the request's
        # queue span here.  Untraced traffic sees None and allocates
        # nothing -- this is the always-on-cheap contract.
        trace = current_trace()
        span = None
        if trace is not None:
            span = trace.span("serve.queue", start_s=arrival).set(model=self.name)
        self._queue.put_nowait(
            Request(
                payload=array,
                future=future,
                arrival=arrival,
                deadline=deadline,
                explicit_deadline=explicit,
                trace=trace,
                span=span,
            )
        )
        self._stats.submitted += 1
        return await future

    def stats(self) -> BatcherStats:
        """Live telemetry: counters plus sliding-window latency percentiles."""
        return self._stats

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    def _shed_if_expired(self, request: Request, now: float) -> bool:
        """Apply the policy's admission check; fail expired requests fast.

        With a ``shed_retry`` hook installed, a request's *first* shed
        hands it to the hook (one last chance on an idle replica) instead
        of failing it; the hook's failure -- or a second shed -- produces
        the :class:`DeadlineExceededError`.  Requests whose budget the
        *caller* set (``submit(..., slo_ms=...)``) are never rescued:
        an explicit budget promises ``DeadlineExceededError`` on expiry,
        and a late result must not masquerade as success.
        """
        if self.policy.admit(request, now):
            return False
        if self._shed_retry is not None and not request.retried and not request.explicit_deadline:
            request.retried = True
            self._stats.shed_retried += 1
            task = asyncio.get_running_loop().create_task(self._rescue(request))
            self._retry_tasks.add(task)
            task.add_done_callback(self._retry_tasks.discard)
            return True
        self._stats.deadline_missed += 1
        if request.span is not None:
            request.span.end(now).set(outcome="shed_deadline")
        if not request.future.done():
            overdue_ms = (now - request.deadline) * 1000.0 if request.deadline is not None else 0.0
            request.future.set_exception(
                DeadlineExceededError(
                    f"request to {self.name!r} missed its deadline by {overdue_ms:.1f} ms "
                    "while queued (shed before admission)"
                )
            )
        return True

    async def _rescue(self, request: Request) -> None:
        """Run the one-shot shed-retry hook and settle the request."""
        try:
            row = await self._shed_retry(request.payload)
        except Exception:
            self._stats.deadline_missed += 1
            if request.span is not None:
                request.span.end().set(outcome="shed_rescue_failed")
            if not request.future.done():
                request.future.set_exception(
                    DeadlineExceededError(
                        f"request to {self.name!r} missed its deadline and the one-shot "
                        "replica rescue could not take it"
                    )
                )
            return
        self._stats.shed_recovered += 1
        if request.span is not None:
            request.span.end().set(outcome="rescued")
        if not request.future.done():
            request.future.set_result(np.asarray(row))

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            now = loop.time()
            if self._shed_if_expired(item, now):
                continue
            batch: List[Request] = [item]
            stopping = False
            # Both the fusion cap and the flush deadline are fixed once per
            # batch, from the policy -- the loop below only asks it how
            # long to linger.
            limit = max(1, self.policy.batch_limit(now))
            flush_at = self.policy.flush_deadline(item, now)
            while not stopping and len(batch) < limit:
                # Sweep everything already queued -- no timer machinery on
                # this path, so convoys fuse at zero added latency.
                try:
                    while len(batch) < limit:
                        nxt = self._queue.get_nowait()
                        if nxt is _STOP:
                            stopping = True
                            break
                        if not self._shed_if_expired(nxt, loop.time()):
                            batch.append(nxt)
                except asyncio.QueueEmpty:
                    pass
                if stopping or len(batch) >= limit:
                    break
                # Queue drained: the policy decides whether (and how long)
                # to hold the batch open for the next arrival.
                timeout = self.policy.linger_timeout(batch, loop.time(), flush_at)
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break  # arrivals paused; flush what we have
                if nxt is _STOP:
                    stopping = True
                elif self._shed_if_expired(nxt, loop.time()):
                    continue
                else:
                    batch.append(nxt)
            if batch:
                if self._dispatch is not None:
                    # Pipeline: launch the dispatch and go straight back to
                    # forming the next batch -- replicas compute in other
                    # processes, so holding the loop here would leave N-1
                    # of them idle.  The semaphore caps outstanding batches
                    # at the replica count (backpressure beyond it).
                    if self._dispatch_slots is None:
                        self._dispatch_slots = asyncio.Semaphore(self._max_concurrent_dispatches)
                    await self._dispatch_slots.acquire()
                    task = loop.create_task(self._execute_released(batch))
                    self._dispatch_tasks.add(task)
                    task.add_done_callback(self._dispatch_tasks.discard)
                else:
                    await self._execute(batch)
            if stopping:
                return

    async def _execute_released(self, batch: List[Request]) -> None:
        try:
            await self._execute(batch)
        finally:
            self._dispatch_slots.release()

    async def _execute(self, batch: List[Request]) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        # Fusion is shared structure, so traced members share ONE batch
        # span object (same span_id in every member trace -- the
        # cross-trace link).  loop.time() and the span clock are both
        # time.monotonic on CPython, so instants mix freely.
        traced = [request for request in batch if request.span is not None]
        batch_span = None
        dispatch_ctx = None
        for request in traced:
            request.span.end(started)
        if traced:
            batch_span = Span("serve.batch", start_s=started).set(
                batch_size=len(batch), traced=len(traced)
            )
            for request in traced:
                request.trace.attach(batch_span)
            if self._dispatch is not None:
                # The replica group fills this in (replica index, wire
                # transport, worker timing); the contextvar carries it
                # through the dispatch seam without widening its
                # signature -- group.infer runs in this same task.
                dispatch_ctx = {"trace_ids": [request.trace.trace_id for request in traced]}
        try:
            stacked = np.stack([request.payload for request in batch], axis=0)
            if self._dispatch is not None:
                token = set_dispatch_context(dispatch_ctx) if dispatch_ctx is not None else None
                try:
                    results = await self._dispatch(stacked)
                finally:
                    if token is not None:
                        reset_dispatch_context(token)
            elif self.run_in_executor:
                results = await loop.run_in_executor(None, self._fused_call, stacked)
            else:
                results = self._fused_call(stacked)
            results = np.asarray(results)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"engine returned {len(results)} rows for a batch of {len(batch)}"
                )
        except Exception as exc:
            if batch_span is not None:
                batch_span.end().set(error=f"{type(exc).__name__}: {exc}")
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        finished = loop.time()
        compute_s = finished - started
        if batch_span is not None:
            batch_span.end(finished)
            self._stitch_spans(traced, batch_span, dispatch_ctx, started, finished)
        self._stats.record_batch(len(batch), compute_s)
        for request, row in zip(batch, results):
            self._stats.record_request(started - request.arrival, finished - request.arrival)
            if not request.future.done():
                request.future.set_result(row)
        # Close the feedback loop: adaptive policies learn from measured
        # compute time and the backlog left behind.
        self.policy.observe(
            batch_size=len(batch), compute_s=compute_s, queue_depth=self._queue.qsize()
        )

    def _stitch_spans(
        self,
        traced: List[Request],
        batch_span: Span,
        dispatch_ctx: Optional[dict],
        started: float,
        finished: float,
    ) -> None:
        """Record per-request dispatch + worker-compute spans after a batch.

        Cross-process clocks do not align, so the worker reports its
        compute *duration* (shipped back with the reply through the
        transport's ``ok`` frame) and the parent anchors the stitched
        ``worker.compute`` span at the end of its own dispatch window.
        The inline (no-cluster) path computes in this very process, so
        its compute span simply covers the execute window.
        """
        ctx = dispatch_ctx or {}
        worker_obs = ctx.get("worker") or {}
        worker_compute_s = ctx.get("compute_s")
        for request in traced:
            dspan = request.trace.span("serve.dispatch", parent=batch_span, start_s=started)
            dspan.end(finished)
            if ctx.get("replica") is not None:
                dspan.set(
                    replica=ctx.get("replica"),
                    transport=ctx.get("transport"),
                    retries=ctx.get("retries", 0),
                )
            if worker_compute_s is not None:
                wspan = Span(
                    "worker.compute",
                    parent_id=dspan.span_id,
                    start_s=max(started, finished - float(worker_compute_s)),
                )
                wspan.end(finished)
                if worker_obs:
                    wspan.set(**worker_obs)
                request.trace.attach(wspan)
            elif self._dispatch is None:
                request.trace.span(
                    "worker.compute", parent=dspan, start_s=started
                ).end(finished).set(inline=True, pid=os.getpid())

    def _fused_call(self, stacked: np.ndarray) -> np.ndarray:
        """One engine call over the whole coalesced batch."""
        return self.session.run(stacked, batch_size=len(stacked))
