"""The asyncio serving front-end: registry + one dynamic batcher per model.

:class:`InferenceServer` is the piece user code talks to::

    server = InferenceServer(max_batch=32, max_wait_ms=2.0)
    server.add_model("digits", donn_model)            # compiles a session
    server.add_model("scenes", seg_session)           # or use one directly
    async with server:
        logits = await server.submit("digits", image)

Each registered model gets its own :class:`DynamicBatcher` (own queue, own
worker task, own stats), so a slow segmentation model cannot head-of-line
block the digit classifier.  Requests to unknown names raise
:class:`UnknownModelError`; a full per-model queue raises
:class:`ServerOverloadedError`; a stopped server raises
:class:`ServerClosedError`.

With ``replicas=N`` (server-wide or per model) the fused batches leave
the process entirely: each such model runs on a
:class:`~repro.cluster.ReplicaGroup` of N spawned worker processes behind
a routing policy (``router="round_robin" | "least_loaded" |
"power_of_two_choices"``), sidestepping the GIL that otherwise
serializes every model's FFT work through one interpreter.  See
``docs/sharding.md``.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, Optional, Sequence

import numpy as np

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.errors import ServerClosedError
from repro.serve.policy import BatchingPolicy
from repro.serve.registry import SessionRegistry
from repro.obs.log import get_logger as _obs_logger

logger = logging.getLogger(__name__)


def _as_replica_group(obj):
    """The object itself when it is a :class:`~repro.cluster.ReplicaGroup`.

    Imported lazily: the serving layer must stay importable (and fully
    functional in-process) without ever touching ``repro.cluster``.
    """
    from repro.cluster import ReplicaGroup

    return obj if isinstance(obj, ReplicaGroup) else None


def _as_store_ref(obj):
    """``obj`` when it quacks like a :class:`~repro.store.StoreRef`, else ``None``."""
    if callable(getattr(obj, "load_spec", None)) and hasattr(obj, "content_hash"):
        return obj
    return None


def _build_group(model_or_session, replicas: int, router, cluster_options: dict, name: str):
    """Spec out ``model_or_session`` and wrap it in an (unstarted) group."""
    from repro.cluster import ReplicaGroup
    from repro.engine.spec import SessionSpec

    session_kwargs = dict(cluster_options.pop("session_kwargs", {}))
    if _as_store_ref(model_or_session) is not None:
        # A pinned store version: the ref itself is the "spec" -- each
        # worker cold-starts by pulling the hash-verified bytes from the
        # store, so no model object (or multi-MB pickle) ever crosses
        # the parent's pipes.
        if session_kwargs:
            raise ValueError(
                f"session options {sorted(session_kwargs)} cannot apply to a store "
                "reference; they were fixed when the spec was published"
            )
        spec = model_or_session
    elif hasattr(model_or_session, "export_session"):
        # A trainable model: snapshot it into a spec (replicas then
        # rebuild their sessions via repro.engine.compile(spec)).
        spec = SessionSpec.from_model(model_or_session, **session_kwargs)
    elif hasattr(model_or_session, "to_spec"):
        if session_kwargs:
            raise ValueError(
                f"session options {sorted(session_kwargs)} need a model; "
                f"{type(model_or_session).__name__} is already a session"
            )
        spec = model_or_session.to_spec()
    else:
        raise TypeError(
            f"cannot shard {type(model_or_session).__name__} across replicas: expected a "
            "compilable model, a session with to_spec(), or a ready ReplicaGroup"
        )
    return ReplicaGroup(spec, replicas=replicas, router=router, name=name, **cluster_options)


def _expected_input_shape(session) -> Optional[Sequence[int]]:
    """Per-request payload shape for shape validation, when the session knows it."""
    shape = getattr(session, "input_shape", None)
    return tuple(shape) if shape is not None else None


def _resolve_policy(spec) -> Optional[BatchingPolicy]:
    """A policy spec is ``None``, a ready instance, or a zero-arg factory.

    Policies are stateful (EWMA latency model, AIMD target), so each
    batcher needs its *own* instance: server-wide defaults must therefore
    be factories, e.g. ``policy=lambda: SLOAwarePolicy(slo_ms=50)``.
    """
    if spec is None or isinstance(spec, BatchingPolicy):
        return spec
    if callable(spec):
        policy = spec()
        if not isinstance(policy, BatchingPolicy):
            raise TypeError(
                f"policy factory returned {type(policy).__name__}, expected a BatchingPolicy"
            )
        return policy
    raise TypeError(
        f"policy must be a BatchingPolicy instance or a zero-arg factory, got {type(spec).__name__}"
    )


class InferenceServer:
    """Serve one or more inference sessions behind dynamic batching.

    Parameters
    ----------
    registry:
        An existing :class:`SessionRegistry` to serve from; by default the
        server owns a fresh one (populate it via :meth:`add_model`).
    policy:
        Default batching policy for every model: a zero-arg factory (each
        model gets a fresh instance) or, for a single-model server, a
        ready :class:`~repro.serve.policy.BatchingPolicy`.  ``None``
        falls back to the fixed-window knobs below.
    max_batch / max_wait_ms / max_queue / run_in_executor:
        Default :class:`DynamicBatcher` tuning for every model; override
        per model through ``add_model``.  The window knobs only apply to
        models without an explicit policy.
    replicas:
        Default worker-process count per model.  ``1`` (default) serves
        in-process; ``>= 2`` runs each model on a
        :class:`~repro.cluster.ReplicaGroup` of spawned workers, fed by
        its batcher through the cluster dispatch seam.  Override per
        model through ``add_model``.
    router:
        Default replica routing policy: a name (each cluster model gets
        a fresh router) or, for a single cluster model, a
        :class:`~repro.cluster.Router` instance -- routers hold state,
        so an instance shared by a second cluster model is refused with
        ``TypeError``.
    cluster_options:
        Extra :class:`~repro.cluster.ReplicaGroup` keyword defaults
        (``max_retries``, ``call_timeout_s``, ``handicaps``, ...).
        ``workers=["host:port", ...]`` attaches already-running
        ``repro-worker`` processes over
        :class:`~repro.cluster.SocketTransport` to every cluster model
        (and permits ``replicas=0`` for a purely remote fleet).
    autoscale:
        Default elastic-fleet policy for cluster models: an
        :class:`~repro.cluster.AutoscaleConfig` or a kwargs dict
        (``{"slo_p99_ms": 50, "max_replicas": 4}``).  Each such model
        gets its own :class:`~repro.cluster.Autoscaler` driven by a
        periodic server task between :meth:`start` and :meth:`stop`,
        growing/shrinking its replica group (drain-before-terminate) to
        hold the p99 budget at minimum process count; decisions appear
        in :meth:`stats` (``.autoscaler``) and ``GET /v1/stats``.
        ``replicas`` is the *initial* fleet size -- an explicit
        ``add_model(..., autoscale=...)`` wraps even a single-replica
        model in a group (a model that cannot be sharded then fails with
        ``TypeError``); in-process models simply ignore the server-wide
        default.
    store:
        Optional :class:`~repro.store.ModelStore` (or a directory path,
        wrapped on the spot).  Lets :meth:`add_model` take
        ``"name@version"`` strings and :class:`~repro.store.StoreRef`
        objects -- replicas then cold-start from the store with no live
        model in this process -- and enables
        :meth:`swap_model(name, version) <swap_model>`, the
        zero-downtime rolling version swap.  A server-owned registry is
        store-attached too, so LRU-evicted store-backed models rebuild
        from disk on their next use.

    Thread/async-safety: the server is bound to the event loop that runs
    :meth:`start`; all coroutines must be awaited on that loop.
    Registration (:meth:`add_model`) is not safe concurrently with
    traffic to the *same* model name, but adding new names while other
    models serve is fine (each model has an independent batcher).
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        policy=None,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        idle_flush_ms: Optional[float] = None,
        run_in_executor: bool = True,
        replicas: int = 1,
        router="round_robin",
        cluster_options: Optional[dict] = None,
        autoscale=None,
        store=None,
    ):
        if replicas < 1 and not (cluster_options or {}).get("workers"):
            raise ValueError("replicas must be >= 1 (or name remote workers in cluster_options)")
        if autoscale is not None:
            from repro.cluster import AutoscaleConfig

            autoscale = AutoscaleConfig.from_options(autoscale)
        if store is not None and not hasattr(store, "ref"):
            from repro.store import ModelStore

            store = ModelStore(store)
        self.store = store
        self.registry = registry if registry is not None else SessionRegistry(store=store)
        self._default_policy = policy
        if policy is not None and not (isinstance(policy, BatchingPolicy) or callable(policy)):
            raise TypeError(
                f"policy must be a BatchingPolicy instance or a zero-arg factory, got {type(policy).__name__}"
            )
        self._defaults = {
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "max_queue": max_queue,
            "idle_flush_ms": idle_flush_ms,
            "run_in_executor": run_in_executor,
        }
        self._default_replicas = int(replicas)
        self._default_router = router
        self._cluster_options = dict(cluster_options or {})
        self._default_autoscale = autoscale
        self._autoscale_cfgs: Dict[str, object] = {}  # name -> AutoscaleConfig
        self._autoscalers: Dict[str, object] = {}  # name -> Autoscaler (while started)
        self._autoscale_tasks: Dict[str, asyncio.Task] = {}
        self._overrides: Dict[str, dict] = {}
        self._policies: Dict[str, object] = {}
        # id(policy/router instance) -> model name, to refuse silently
        # sharing one stateful object across batchers/groups.
        self._policy_owners: Dict[int, str] = {}
        self._router_owners: Dict[int, str] = {}
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._groups: Dict[str, object] = {}  # name -> ReplicaGroup (cluster models)
        self._model_refs: Dict[str, object] = {}  # name -> StoreRef (store-backed models)
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model_or_session,
        *,
        replace: bool = False,
        policy=None,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: Optional[int] = None,
        idle_flush_ms: Optional[float] = None,
        replicas: Optional[int] = None,
        router=None,
        autoscale=None,
        **session_kwargs,
    ):
        """Register a model (compiled on the spot), a session, or a group.

        ``policy`` (an instance or zero-arg factory) and the batcher
        tuning arguments override the server-wide defaults for this model
        only; remaining ``session_kwargs`` (``dtype``, ``backend``, ...)
        go to ``repro.engine.compile`` when a model is given.  Returns
        the registered session.

        ``autoscale`` (an :class:`~repro.cluster.AutoscaleConfig` or
        kwargs dict) overrides the server-wide elastic-fleet policy for
        this model and forces it onto a replica group even at
        ``replicas=1`` (the initial fleet size).

        ``replicas``/``router`` override the server-wide sharding
        defaults: with an effective ``replicas >= 2`` the model is
        wrapped in a :class:`~repro.cluster.ReplicaGroup` (its workers
        spawn on :meth:`start`), and ``session_kwargs`` configure the
        sessions the *workers* build.  A ready ``ReplicaGroup`` may also
        be passed directly as ``model_or_session`` (the server takes
        ownership and closes it on :meth:`stop`).  On an already-started
        server, adding a cluster model spawns its workers *synchronously
        on the event loop* -- every model's traffic stalls for the
        spawn+compile time, so on a latency-sensitive server register
        cluster models before :meth:`start` (or on a fresh server and
        swap traffic over).

        Raises :class:`ServerClosedError` after :meth:`stop`,
        ``ValueError`` for duplicate names without ``replace=True``, and
        ``RuntimeError`` when asked to replace a model that is live on a
        started server (stop first -- a half-applied swap would desync
        batcher and registry).
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        if name in self._batchers and (replace or name not in self.registry):
            # Guard before touching the registry: a half-applied swap would
            # leave the live batcher serving a session the registry no
            # longer reports.  The second clause catches re-registering a
            # name the LRU registry evicted while its batcher stayed live:
            # silently installing a second batcher would leak the first
            # (worker task + pinned session) -- exactly the unbounded
            # growth ``max_models`` exists to prevent.
            raise RuntimeError("stop the server before replacing a live model")
        if isinstance(model_or_session, str):
            resolver = self.store if self.store is not None else getattr(self.registry, "store", None)
            if resolver is None:
                raise TypeError(
                    f"cannot register the string {model_or_session!r}: string model "
                    "references need InferenceServer(store=...)"
                )
            model_or_session = resolver.ref(model_or_session)
        spec = policy if policy is not None else self._default_policy
        if isinstance(spec, BatchingPolicy):
            # Policies are stateful (EWMA latency model, AIMD target): one
            # instance feeding two batchers would average unrelated models'
            # behavior.  An instance may serve exactly one model;
            # server-wide defaults must be factories.  Checked before the
            # registry mutates (and *recorded* only after registration
            # succeeds) so a refused or failed add leaves no trace.
            owner = self._policy_owners.get(id(spec))
            if owner is not None and owner != name:
                raise TypeError(
                    f"policy instance passed for {name!r} is already serving {owner!r}; "
                    "policies are stateful -- pass a factory (e.g. lambda: SLOAwarePolicy(...)) "
                    "or a fresh instance per model"
                )
        explicit_autoscale = None
        if autoscale is not None:
            from repro.cluster import AutoscaleConfig

            explicit_autoscale = AutoscaleConfig.from_options(autoscale)
        group = None
        if hasattr(model_or_session, "infer_sync"):  # quacks like a ReplicaGroup
            group = _as_replica_group(model_or_session)
            if group is not None and session_kwargs:
                raise ValueError(
                    f"session options {sorted(session_kwargs)} cannot apply to a ready ReplicaGroup"
                )
        n_replicas = int(replicas) if replicas is not None else self._default_replicas
        remote_workers = bool(self._cluster_options.get("workers"))
        if n_replicas < 1 and not remote_workers:
            raise ValueError("replicas must be >= 1 (or name remote workers in cluster_options)")
        router_instance = None
        # An autoscaled model must be cluster-backed even at replicas=1:
        # explicit autoscale= makes that a hard requirement, while the
        # server-wide default merely *tries* (an unshardable in-process
        # session falls back to serving without autoscaling).
        must_cluster = n_replicas >= 2 or remote_workers or explicit_autoscale is not None
        if group is None and (must_cluster or self._default_autoscale is not None):
            effective_router = router if router is not None else self._default_router
            if not isinstance(effective_router, str):
                router_instance = effective_router
                # Routers hold per-group state (cursor, RNG) mutated under
                # each group's own lock: one instance feeding two groups
                # would race.  Same contract (check early, record late) as
                # the policy-instance guard.
                owner = self._router_owners.get(id(effective_router))
                if owner is not None and owner != name:
                    raise TypeError(
                        f"router instance passed for {name!r} is already serving {owner!r}; "
                        "routers are stateful -- pass a name (e.g. router=\"power_of_two_choices\") "
                        "or a fresh instance per model"
                    )
            options = dict(self._cluster_options)
            if session_kwargs:
                options["session_kwargs"] = session_kwargs
            try:
                group = _build_group(model_or_session, n_replicas, effective_router, options, name)
            except TypeError:
                if must_cluster:
                    raise
                group = None  # in-process model; the autoscale default doesn't apply
                router_instance = None
        if group is not None:
            session = self.registry.register(name, group, replace=replace)
        else:
            session = self.registry.register(name, model_or_session, replace=replace, **session_kwargs)
        ref = _as_store_ref(model_or_session)
        if ref is not None:
            self._model_refs[name] = ref
        else:
            self._model_refs.pop(name, None)
        # Registration succeeded: only now record instance ownership, so a
        # refused or failed add leaves stateful policies/routers unclaimed.
        if isinstance(spec, BatchingPolicy):
            self._policy_owners[id(spec)] = name
        if router_instance is not None:
            self._router_owners[id(router_instance)] = name
        # Reconcile the group table with what just got registered: a
        # replace can swap a cluster model for an in-process one (or for
        # a different group), and the displaced group's workers must not
        # keep running -- nor keep answering under the old model.
        displaced = self._groups.pop(name, None)
        if displaced is not None and displaced is not group:
            displaced.close()
        if group is not None:
            self._groups[name] = group
        effective_autoscale = explicit_autoscale
        if effective_autoscale is None and group is not None:
            effective_autoscale = self._default_autoscale
        if effective_autoscale is not None:
            self._autoscale_cfgs[name] = effective_autoscale
        else:
            self._autoscale_cfgs.pop(name, None)
            self._autoscalers.pop(name, None)
        # Server-side bookkeeping must honor the registry's LRU bound:
        # names the registration just evicted (and that have no live
        # batcher keeping them serving) are gone for good, including any
        # not-yet-started replica group waiting under them.
        for evicted in self.registry.last_evicted:
            if evicted not in self._batchers:
                self._overrides.pop(evicted, None)
                self._policies.pop(evicted, None)
                self._autoscale_cfgs.pop(evicted, None)
                self._autoscalers.pop(evicted, None)
                # Server bookkeeping only: the *registry* keeps its own
                # pinned ref, so a store-backed eviction stays reversible.
                self._model_refs.pop(evicted, None)
                stale = self._groups.pop(evicted, None)
                if stale is not None:
                    stale.close()
                # Release instance ownership too: a policy/router whose
                # model is fully gone must be reusable by a later add.
                for owners in (self._policy_owners, self._router_owners):
                    for key in [key for key, owner in owners.items() if owner == evicted]:
                        del owners[key]
        overrides = {
            key: value
            for key, value in (
                ("max_batch", max_batch),
                ("max_wait_ms", max_wait_ms),
                ("max_queue", max_queue),
                ("idle_flush_ms", idle_flush_ms),
            )
            if value is not None
        }
        self._overrides[name] = overrides
        self._policies[name] = policy if policy is not None else self._default_policy
        if self._started:
            if group is not None and not group.started:
                group.start()
            self._batchers[name] = self._make_batcher(name).start()
            self._start_autoscaler(name)
        return session

    async def swap_model(self, name: str, version=None) -> dict:
        """Zero-downtime rolling swap of a cluster model to a stored version.

        Resolves ``version`` (``"latest"``, ``"vN"``, an int, or a
        content-hash prefix) in the server's store under the model's
        published name, then rolls the new version through the model's
        :class:`~repro.cluster.ReplicaGroup` spawn-then-publish /
        drain-then-retire (see
        :meth:`~repro.cluster.ReplicaGroup.swap_spec`): capacity never
        dips, no accepted request is dropped, and traffic keeps flowing
        through the swap.  The batcher, its queue, stats and policy all
        survive -- only the worker processes change -- and :meth:`stats`
        /:meth:`describe` report the new version once the roll completes
        (a monotonic flip: old version until done, new version after).

        Returns a summary dict (``model``, ``version``,
        ``content_hash``, ``replicas``).  Raises
        :class:`UnknownModelError` for unknown names, ``ValueError`` for
        in-process models (nothing to roll -- re-register instead) or a
        store-less server, and the store's typed errors for unknown
        versions.  Safe to call before :meth:`start` (the idle fleet is
        retargeted and compiles the new version on start).
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        resolver = self.store if self.store is not None else getattr(self.registry, "store", None)
        if resolver is None:
            raise ValueError("swap_model needs a model store (InferenceServer(store=...))")
        group = self._groups.get(name)
        if group is None:
            self.registry.get(name)  # raises UnknownModelError for unknown names
            raise ValueError(
                f"model {name!r} serves in-process; rolling swaps need a replica group "
                "(add it with replicas >= 2, autoscale=..., or remote workers)"
            )
        previous = self._model_refs.get(name)
        store_name = previous.name if previous is not None else name
        ref = resolver.ref(store_name, version)
        if previous is not None and ref.content_hash == previous.content_hash:
            return {"model": name, **ref.describe(), "replicas": len(group), "changed": False}
        if self._started:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, group.swap_spec, ref)
        else:
            group.swap_spec(ref)
        self._model_refs[name] = ref
        logger.info(
            "model %r: swapped to %s@%s (sha256-%.12s...) across %d replica(s)",
            name,
            ref.name,
            ref.version_tag,
            ref.content_hash,
            len(group),
        )
        _obs_logger().info(
            "serve.model_swapped",
            model=name,
            version=ref.version_tag,
            content_hash=ref.content_hash[:12],
            replicas=len(group),
        )
        return {"model": name, **ref.describe(), "replicas": len(group), "changed": True}

    def _make_batcher(self, name: str) -> DynamicBatcher:
        group = self._groups.get(name)
        # The group outlives a registry LRU eviction (the server owns it);
        # in-process sessions must still be in the registry to serve.
        session = group if group is not None else self.registry.get(name)
        options = {**self._defaults, **self._overrides.get(name, {})}
        policy = _resolve_policy(self._policies.get(name))
        if policy is not None:
            # The policy owns the window knobs; only queue/executor tuning
            # still applies at the batcher level.
            options = {key: options[key] for key in ("max_queue", "run_in_executor")}
        if group is not None:
            options["dispatch"] = group.infer
            options["shed_retry"] = group.rescue
            # One outstanding batch per replica: full fleet utilization,
            # backpressure past that.
            options["max_concurrent_dispatches"] = max(1, len(group))
            autoscale = self._autoscale_cfgs.get(name)
            if autoscale is not None:
                # The dispatch semaphore is fixed at construction, so an
                # elastic fleet sizes it for the cap up front (a fleet
                # below the cap simply backpressures through the replicas
                # themselves); the smaller stats window lets post-scaling
                # traffic displace stale percentile samples fast enough
                # for the control loop to see its own effect.
                options["max_concurrent_dispatches"] = max(
                    1, len(group), autoscale.max_replicas
                )
                options["stats_window"] = autoscale.stats_window
        return DynamicBatcher(
            session,
            policy=policy,
            input_shape=_expected_input_shape(session),
            name=name,
            **options,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "InferenceServer":
        """Spawn a batcher worker per registered model.

        Cluster models spawn their replica worker processes first (in the
        thread-pool executor, concurrently across groups, so the event
        loop stays responsive while sessions compile in the children).
        A startup failure is terminal for the *server*: every group --
        including siblings whose workers did spawn -- is closed before
        the error propagates, so nothing leaks even when ``async with
        server`` never reaches ``__aexit__``.  Build a fresh server to
        retry.
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        if not self._started:
            # Loop until no group is left unstarted: add_model may land a
            # *new* cluster model while a spawn gather is awaited, and it
            # only starts groups itself once self._started is True.  The
            # final no-pending check runs with no await before the flag
            # flips, so nothing can slip between.
            while True:
                pending = [group for group in self._groups.values() if not group.started]
                if not pending:
                    break
                loop = asyncio.get_running_loop()
                outcomes = await asyncio.gather(
                    *(loop.run_in_executor(None, group.start) for group in pending),
                    return_exceptions=True,
                )
                failures = [outcome for outcome in outcomes if isinstance(outcome, BaseException)]
                if failures:
                    self._closed = True
                    await asyncio.gather(
                        *(loop.run_in_executor(None, group.close) for group in self._groups.values()),
                        return_exceptions=True,
                    )
                    self._groups.clear()
                    raise failures[0]
            self._started = True
            names = list(self.registry.names())
            names.extend(name for name in self._groups if name not in names)
            for name in names:
                if name not in self._batchers:
                    self._batchers[name] = self._make_batcher(name).start()
            for name in list(self._autoscale_cfgs):
                self._start_autoscaler(name)
        return self

    def _start_autoscaler(self, name: str) -> None:
        """Build the model's autoscaler and spawn its periodic driver task."""
        config = self._autoscale_cfgs.get(name)
        group = self._groups.get(name)
        batcher = self._batchers.get(name)
        if config is None or group is None or batcher is None or name in self._autoscale_tasks:
            return
        from repro.cluster import Autoscaler

        scaler = Autoscaler(group, batcher.stats(), config, registry=self.registry, model=name)
        self._autoscalers[name] = scaler
        self._autoscale_tasks[name] = asyncio.get_running_loop().create_task(
            self._autoscale_loop(scaler), name=f"repro-autoscale-{name}"
        )

    async def _autoscale_loop(self, scaler) -> None:
        """Drive one autoscaler until :meth:`stop` cancels the task.

        Each tick runs in the thread-pool executor -- membership changes
        block for spawn/drain time, and the event loop must keep serving
        traffic through them (that traffic is what the next decision
        reads).  A failing tick is logged and the loop continues: the
        control loop must outlive one bad evaluation.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(scaler.config.interval_s)
            try:
                await loop.run_in_executor(None, scaler.step)
            except asyncio.CancelledError:
                raise
            except Exception:
                logger.exception("autoscaler %r: step failed; continuing", scaler.model)

    async def stop(self) -> None:
        """Drain every batcher, terminate replica workers, refuse new requests.

        Draining means no accepted request is dropped: everything already
        queued runs (or is settled by its policy/rescue path) before the
        batchers join, and only then are cluster worker processes
        stopped.
        """
        if self._closed:
            return
        self._closed = True
        self._started = False
        # Autoscalers first: a membership change racing the shutdown
        # would spawn workers the close sweep below never sees.  A tick
        # already running in the executor cannot be interrupted, but
        # ReplicaGroup.close() serializes with it on the membership lock.
        tasks = list(self._autoscale_tasks.values())
        self._autoscale_tasks.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        batchers = list(self._batchers.values())
        self._batchers.clear()
        await asyncio.gather(*(batcher.stop() for batcher in batchers))
        groups = list(self._groups.values())
        self._groups.clear()
        if groups:
            loop = asyncio.get_running_loop()
            await asyncio.gather(*(loop.run_in_executor(None, group.close) for group in groups))

    async def close(self) -> None:
        """Graceful shutdown: alias of :meth:`stop` (drain, then terminate)."""
        await self.stop()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def submit(self, name: str, payload, *, slo_ms: Optional[float] = None) -> np.ndarray:
        """Submit one request to model ``name``; returns its result row.

        Classifier sessions resolve to a ``(num_classes,)`` logit vector,
        segmentation sessions to an ``(N, N)`` intensity map.  ``slo_ms``
        attaches an explicit per-request latency budget (deadline-aware
        policies stamp their default when omitted).

        Raises :class:`UnknownModelError` for unregistered names,
        :class:`ServerClosedError` before :meth:`start`/after
        :meth:`stop`, :class:`ServerOverloadedError` on a full queue, and
        :class:`DeadlineExceededError` when the budget expires in queue.
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        try:
            batcher = self._batchers[name]
        except KeyError:
            self.registry.get(name)  # raises UnknownModelError for unknown names
            raise ServerClosedError("server is not started (use `async with server:` or await start())") from None
        return await batcher.submit(payload, slo_ms=slo_ms)

    async def submit_many(self, name: str, payloads) -> np.ndarray:
        """Submit a burst of requests concurrently; returns stacked results."""
        if self._closed:
            raise ServerClosedError("server is stopped")
        results = await asyncio.gather(*(self.submit(name, payload) for payload in payloads))
        if results:
            return np.stack(results, axis=0)
        # Preserve the engine's empty-batch output shape ((0, C) / (0, N, N))
        # when the session can tell us what an empty request batch looks
        # like.  Prefer the live batcher's session: a model the LRU
        # registry evicted keeps serving through its batcher, and an
        # empty burst must not be the one call that raises.
        batcher = self._batchers.get(name)
        session = batcher.session if batcher is not None else self.registry.get(name)
        shape = getattr(session, "input_shape", None)
        if shape is not None:
            return session.run(np.empty((0, *shape)))
        return np.empty((0,))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """Accepting traffic: between :meth:`start` and :meth:`stop`."""
        return self._started and not self._closed

    def describe(self) -> Dict[str, dict]:
        """Static per-model metadata, keyed by model name.

        The discovery counterpart of :meth:`stats` (which carries live
        counters): model kind, expected per-request ``input_shape``,
        backend/dtype, replica count and routing policy.  This is what
        the HTTP gateway serves under ``GET /v1/models``.  Cluster
        models report full metadata only once their workers have
        hand-shaken (i.e. after :meth:`start`).
        """
        names = list(self.registry.names())
        names.extend(name for name in self._groups if name not in names)
        names.extend(name for name in self._batchers if name not in names)
        models: Dict[str, dict] = {}
        for name in sorted(set(names)):
            ref = self._model_refs.get(name)
            version = ref.describe() if ref is not None else None
            group = self._groups.get(name)
            if group is not None:
                meta = group.meta or {}
                shape = meta.get("input_shape")
                models[name] = {
                    "name": name,
                    "kind": meta.get("kind"),
                    "input_shape": list(shape) if shape is not None else None,
                    "backend": meta.get("backend"),
                    "dtype": meta.get("dtype"),
                    "replicas": len(group),
                    "router": group.router_name,
                    "autoscale": name in self._autoscale_cfgs,
                    "store": version,
                }
                continue
            batcher = self._batchers.get(name)
            session = batcher.session if batcher is not None else self.registry.get(name)
            shape = getattr(session, "input_shape", None)
            dtype = getattr(session, "dtype", None)
            models[name] = {
                "name": name,
                "kind": getattr(session, "kind", None),
                "input_shape": list(shape) if shape is not None else None,
                "backend": getattr(session, "backend_name", None),
                "dtype": dtype.name if dtype is not None else None,
                "replicas": 1,
                "router": None,
                "autoscale": False,
                "store": version,
            }
        return models

    def stats(self) -> Dict[str, BatcherStats]:
        """Live per-model telemetry, keyed by model name.

        Each :class:`~repro.serve.metrics.BatcherStats` carries fusion
        counters (``batches``, ``mean_batch_size``), rejection counters
        (``rejected`` for overload, ``deadline_missed`` for SLO sheds,
        ``shed_retried``/``shed_recovered`` for the cluster rescue path)
        and sliding-window latency percentiles with a queue-wait vs
        compute breakdown -- ``.as_dict()`` gives a flat JSON-friendly
        snapshot for dashboards.  Models running on a replica group
        additionally carry the group's per-replica breakdown
        (``.replicas``: in-flight depth, EWMA latency, restarts per
        worker process).
        """
        snapshot: Dict[str, BatcherStats] = {}
        for name, batcher in self._batchers.items():
            stats = batcher.stats()
            group = self._groups.get(name)
            stats.replicas = group.stats() if group is not None else None
            scaler = self._autoscalers.get(name)
            stats.autoscaler = scaler.snapshot() if scaler is not None else None
            ref = self._model_refs.get(name)
            stats.store = ref.describe() if ref is not None else None
            snapshot[name] = stats
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("started" if self._started else "idle")
        return f"InferenceServer(models={sorted(self.registry.names())}, state={state!r})"
