"""The asyncio serving front-end: registry + one dynamic batcher per model.

:class:`InferenceServer` is the piece user code talks to::

    server = InferenceServer(max_batch=32, max_wait_ms=2.0)
    server.add_model("digits", donn_model)            # compiles a session
    server.add_model("scenes", seg_session)           # or use one directly
    async with server:
        logits = await server.submit("digits", image)

Each registered model gets its own :class:`DynamicBatcher` (own queue, own
worker task, own stats), so a slow segmentation model cannot head-of-line
block the digit classifier.  Requests to unknown names raise
:class:`UnknownModelError`; a full per-model queue raises
:class:`ServerOverloadedError`; a stopped server raises
:class:`ServerClosedError`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Sequence

import numpy as np

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.errors import ServerClosedError
from repro.serve.policy import BatchingPolicy
from repro.serve.registry import SessionRegistry


def _expected_input_shape(session) -> Optional[Sequence[int]]:
    """Per-request payload shape for shape validation, when the session knows it."""
    shape = getattr(session, "input_shape", None)
    return tuple(shape) if shape is not None else None


def _resolve_policy(spec) -> Optional[BatchingPolicy]:
    """A policy spec is ``None``, a ready instance, or a zero-arg factory.

    Policies are stateful (EWMA latency model, AIMD target), so each
    batcher needs its *own* instance: server-wide defaults must therefore
    be factories, e.g. ``policy=lambda: SLOAwarePolicy(slo_ms=50)``.
    """
    if spec is None or isinstance(spec, BatchingPolicy):
        return spec
    if callable(spec):
        policy = spec()
        if not isinstance(policy, BatchingPolicy):
            raise TypeError(
                f"policy factory returned {type(policy).__name__}, expected a BatchingPolicy"
            )
        return policy
    raise TypeError(
        f"policy must be a BatchingPolicy instance or a zero-arg factory, got {type(spec).__name__}"
    )


class InferenceServer:
    """Serve one or more inference sessions behind dynamic batching.

    Parameters
    ----------
    registry:
        An existing :class:`SessionRegistry` to serve from; by default the
        server owns a fresh one (populate it via :meth:`add_model`).
    policy:
        Default batching policy for every model: a zero-arg factory (each
        model gets a fresh instance) or, for a single-model server, a
        ready :class:`~repro.serve.policy.BatchingPolicy`.  ``None``
        falls back to the fixed-window knobs below.
    max_batch / max_wait_ms / max_queue / run_in_executor:
        Default :class:`DynamicBatcher` tuning for every model; override
        per model through ``add_model``.  The window knobs only apply to
        models without an explicit policy.

    Thread/async-safety: the server is bound to the event loop that runs
    :meth:`start`; all coroutines must be awaited on that loop.
    Registration (:meth:`add_model`) is not safe concurrently with
    traffic to the *same* model name, but adding new names while other
    models serve is fine (each model has an independent batcher).
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        policy=None,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        idle_flush_ms: Optional[float] = None,
        run_in_executor: bool = True,
    ):
        self.registry = registry if registry is not None else SessionRegistry()
        self._default_policy = policy
        if policy is not None and not (isinstance(policy, BatchingPolicy) or callable(policy)):
            raise TypeError(
                f"policy must be a BatchingPolicy instance or a zero-arg factory, got {type(policy).__name__}"
            )
        self._defaults = {
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "max_queue": max_queue,
            "idle_flush_ms": idle_flush_ms,
            "run_in_executor": run_in_executor,
        }
        self._overrides: Dict[str, dict] = {}
        self._policies: Dict[str, object] = {}
        # id(policy instance) -> model name, to refuse silently sharing
        # one stateful policy object across batchers.
        self._policy_owners: Dict[int, str] = {}
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model_or_session,
        *,
        replace: bool = False,
        policy=None,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: Optional[int] = None,
        idle_flush_ms: Optional[float] = None,
        **session_kwargs,
    ):
        """Register a model (compiled on the spot) or a ready session.

        ``policy`` (an instance or zero-arg factory) and the batcher
        tuning arguments override the server-wide defaults for this model
        only; remaining ``session_kwargs`` (``dtype``, ``backend``, ...)
        go to ``export_session`` when a model is given.  Returns the
        registered session.

        Raises :class:`ServerClosedError` after :meth:`stop`,
        ``ValueError`` for duplicate names without ``replace=True``, and
        ``RuntimeError`` when asked to replace a model that is live on a
        started server (stop first -- a half-applied swap would desync
        batcher and registry).
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        if replace and name in self._batchers:
            # Guard before touching the registry: a half-applied swap would
            # leave the live batcher serving a session the registry no
            # longer reports.
            raise RuntimeError("stop the server before replacing a live model")
        spec = policy if policy is not None else self._default_policy
        if isinstance(spec, BatchingPolicy):
            # Policies are stateful (EWMA latency model, AIMD target): one
            # instance feeding two batchers would average unrelated models'
            # behavior.  An instance may serve exactly one model;
            # server-wide defaults must be factories.  Checked before the
            # registry mutates so a refused add leaves no trace.
            owner = self._policy_owners.setdefault(id(spec), name)
            if owner != name:
                raise TypeError(
                    f"policy instance passed for {name!r} is already serving {owner!r}; "
                    "policies are stateful -- pass a factory (e.g. lambda: SLOAwarePolicy(...)) "
                    "or a fresh instance per model"
                )
        session = self.registry.register(name, model_or_session, replace=replace, **session_kwargs)
        overrides = {
            key: value
            for key, value in (
                ("max_batch", max_batch),
                ("max_wait_ms", max_wait_ms),
                ("max_queue", max_queue),
                ("idle_flush_ms", idle_flush_ms),
            )
            if value is not None
        }
        self._overrides[name] = overrides
        self._policies[name] = policy if policy is not None else self._default_policy
        if self._started:
            self._batchers[name] = self._make_batcher(name).start()
        return session

    def _make_batcher(self, name: str) -> DynamicBatcher:
        session = self.registry.get(name)
        options = {**self._defaults, **self._overrides.get(name, {})}
        policy = _resolve_policy(self._policies.get(name))
        if policy is not None:
            # The policy owns the window knobs; only queue/executor tuning
            # still applies at the batcher level.
            options = {key: options[key] for key in ("max_queue", "run_in_executor")}
        return DynamicBatcher(
            session,
            policy=policy,
            input_shape=_expected_input_shape(session),
            name=name,
            **options,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "InferenceServer":
        """Spawn a batcher worker per registered model."""
        if self._closed:
            raise ServerClosedError("server is stopped")
        if not self._started:
            self._started = True
            for name in self.registry.names():
                if name not in self._batchers:
                    self._batchers[name] = self._make_batcher(name).start()
        return self

    async def stop(self) -> None:
        """Drain every batcher and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        self._started = False
        batchers = list(self._batchers.values())
        self._batchers.clear()
        await asyncio.gather(*(batcher.stop() for batcher in batchers))

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def submit(self, name: str, payload, *, slo_ms: Optional[float] = None) -> np.ndarray:
        """Submit one request to model ``name``; returns its result row.

        Classifier sessions resolve to a ``(num_classes,)`` logit vector,
        segmentation sessions to an ``(N, N)`` intensity map.  ``slo_ms``
        attaches an explicit per-request latency budget (deadline-aware
        policies stamp their default when omitted).

        Raises :class:`UnknownModelError` for unregistered names,
        :class:`ServerClosedError` before :meth:`start`/after
        :meth:`stop`, :class:`ServerOverloadedError` on a full queue, and
        :class:`DeadlineExceededError` when the budget expires in queue.
        """
        if self._closed:
            raise ServerClosedError("server is stopped")
        try:
            batcher = self._batchers[name]
        except KeyError:
            self.registry.get(name)  # raises UnknownModelError for unknown names
            raise ServerClosedError("server is not started (use `async with server:` or await start())") from None
        return await batcher.submit(payload, slo_ms=slo_ms)

    async def submit_many(self, name: str, payloads) -> np.ndarray:
        """Submit a burst of requests concurrently; returns stacked results."""
        if self._closed:
            raise ServerClosedError("server is stopped")
        results = await asyncio.gather(*(self.submit(name, payload) for payload in payloads))
        if results:
            return np.stack(results, axis=0)
        # Preserve the engine's empty-batch output shape ((0, C) / (0, N, N))
        # when the session can tell us what an empty request batch looks like.
        session = self.registry.get(name)
        shape = getattr(session, "input_shape", None)
        if shape is not None:
            return session.run(np.empty((0, *shape)))
        return np.empty((0,))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, BatcherStats]:
        """Live per-model telemetry, keyed by model name.

        Each :class:`~repro.serve.metrics.BatcherStats` carries fusion
        counters (``batches``, ``mean_batch_size``), rejection counters
        (``rejected`` for overload, ``deadline_missed`` for SLO sheds)
        and sliding-window latency percentiles with a queue-wait vs
        compute breakdown -- ``.as_dict()`` gives a flat JSON-friendly
        snapshot for dashboards.
        """
        return {name: batcher.stats() for name, batcher in self._batchers.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("started" if self._started else "idle")
        return f"InferenceServer(models={sorted(self.registry.names())}, state={state!r})"
