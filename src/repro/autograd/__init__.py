"""Reverse-mode, complex-aware automatic differentiation on numpy.

This package is the substrate that replaces PyTorch in the LightRidge
reproduction.  It provides:

* :class:`~repro.autograd.tensor.Tensor` -- an n-dimensional array wrapper
  that records the operations applied to it and can back-propagate a real
  scalar loss through complex-valued computation graphs (Wirtinger
  calculus).
* :mod:`~repro.autograd.ops` -- FFT2/iFFT2, padding, stacking and other
  array-level operators used by the optical physics kernels.
* :mod:`~repro.autograd.functional` -- neural-network style operators
  (softmax, relu, layer norm, conv2d, losses) used by the digital
  baselines and by DONN training.
* :mod:`~repro.autograd.module` -- ``Module``/``Parameter``/``Sequential``
  containers mirroring the ``torch.nn`` idiom the paper's DSL builds upon.
* :mod:`~repro.autograd.optim` -- SGD and Adam optimizers.
* :mod:`~repro.autograd.gradcheck` -- finite-difference gradient checking
  used extensively in the test suite.

Gradient convention
-------------------
For a real scalar loss ``L``:

* real tensors store ``dL/dx`` in ``.grad``;
* complex tensors store ``dL/d(Re x) + j * dL/d(Im x)`` (equivalently
  ``2 * dL/dx*`` in Wirtinger notation), which is the steepest-descent
  direction, so ``x -= lr * x.grad`` always descends.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.autograd import ops
from repro.autograd import functional
from repro.autograd.module import Module, Parameter, Sequential, ModuleList
from repro.autograd.optim import SGD, Adam, Optimizer
from repro.autograd.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "SGD",
    "Adam",
    "Optimizer",
    "numerical_gradient",
    "check_gradients",
]
