"""Core :class:`Tensor` type with reverse-mode complex autodiff.

The implementation follows the classic tape-based design: every operation
creates a new ``Tensor`` holding a closure (``_backward``) that knows how
to push the upstream gradient to the operation's inputs.  Calling
``Tensor.backward()`` topologically sorts the graph and runs the closures
in reverse order.

Complex support uses Wirtinger calculus with the convention described in
:mod:`repro.autograd`: the stored gradient of a complex tensor is
``dL/dRe(x) + j dL/dIm(x)``, which keeps gradients of *real* leaf tensors
exact (no stray factors of two) and makes ``x -= lr * grad`` a proper
steepest-descent step for both real and complex parameters.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, complex, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value)
    if array.dtype == np.float32 or array.dtype == np.float16:
        array = array.astype(np.float64)
    elif array.dtype == np.complex64:
        array = array.astype(np.complex128)
    elif np.issubdtype(array.dtype, np.integer) or array.dtype == bool:
        array = array.astype(np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array that supports reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 1000  # so ndarray.__mul__ defers to Tensor.__rmul__

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._prev: Tuple[Tensor, ...] = tuple(_prev) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> complex:
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, handling dtype/broadcast mismatch."""
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if not np.iscomplexobj(self.data) and np.iscomplexobj(grad):
            grad = grad.real
        if self.grad is None:
            self.grad = np.array(grad, dtype=complex if np.iscomplexobj(self.data) else float)
            self.grad = np.broadcast_to(self.grad, self.data.shape).copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` which requires ``self`` to
            be a scalar (the usual "loss.backward()" use).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad))

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Helpers for constructing result tensors
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(other.data))
            if other.requires_grad:
                other._accumulate(grad * np.conj(self.data))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(1.0 / other.data))
            if other.requires_grad:
                other._accumulate(grad * np.conj(-self.data / other.data**2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            exponent = exponent.data
        exponent = np.asarray(exponent)
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                local = exponent * self.data ** (exponent - 1)
                self._accumulate(grad * np.conj(local))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.conj(np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                g = np.conj(np.swapaxes(self.data, -1, -2)) @ grad
                other._accumulate(_unbroadcast(g, other.data.shape))

        return self._make(data, (self, other), backward)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # Comparison operators return plain numpy boolean arrays (no grad).
    def __gt__(self, other: ArrayLike):
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike):
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike):
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(float)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(data))

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(1.0 / self.data))

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def sin(self) -> "Tensor":
        data = np.sin(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(np.cos(self.data)))

        return self._make(data, (self,), backward)

    def cos(self) -> "Tensor":
        data = np.cos(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(-np.sin(self.data)))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.conj(1.0 - data**2))

        return self._make(data, (self,), backward)

    def conj(self) -> "Tensor":
        data = np.conj(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.conj(grad))

        return self._make(data, (self,), backward)

    # ---- real <-> complex boundary ops (non-holomorphic) -------------- #
    def real(self) -> "Tensor":
        data = self.data.real.copy()

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).real.astype(complex) if self.is_complex else grad)

        return self._make(data, (self,), backward)

    def imag(self) -> "Tensor":
        data = self.data.imag.copy()

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(1j * np.asarray(grad).real)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            safe = np.where(data == 0, 1.0, data)
            if self.is_complex:
                self._accumulate(np.asarray(grad).real * self.data / safe)
            else:
                self._accumulate(grad * np.sign(self.data))

        return self._make(data, (self,), backward)

    def abs2(self) -> "Tensor":
        """Squared magnitude ``|x|**2`` (light intensity for a wavefield)."""
        data = (self.data * np.conj(self.data)).real

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if self.is_complex:
                self._accumulate(2.0 * np.asarray(grad).real * self.data)
            else:
                self._accumulate(2.0 * grad * self.data)

        return self._make(data, (self,), backward)

    def angle(self) -> "Tensor":
        data = np.angle(self.data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            safe = np.where(self.data == 0, 1.0, self.data)
            self._accumulate(np.asarray(grad).real * 1j / np.conj(safe))

        return self._make(data, (self,), backward)

    def to_complex(self) -> "Tensor":
        """Promote a real tensor to complex dtype (identity if already complex)."""
        if self.is_complex:
            return self
        data = self.data.astype(complex)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).real)

        return self._make(data, (self,), backward)

    def clip(self, minimum=None, maximum=None) -> "Tensor":
        data = np.clip(self.data, minimum, maximum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = np.ones_like(self.data)
                if minimum is not None:
                    mask = mask * (self.data >= minimum)
                if maximum is not None:
                    mask = mask * (self.data <= maximum)
                self._accumulate(grad * mask)

        return self._make(data, (self,), backward)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
