"""Module / Parameter containers (a small ``torch.nn`` analogue).

The LightRidge DSL builds DONN systems by stacking layer modules inside a
sequential container (``lr.models``); this mirrors that structure so the
reproduction's public API reads the same way as the paper's listings.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration, train/eval mode and state dicts."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute plumbing ------------------------------------------------ #
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    # -- parameter access -------------------------------------------------- #
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        params: List[Parameter] = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- train / eval mode -------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialisation --------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → array mapping of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            target = own[name]
            value = np.asarray(value)
            if value.shape != target.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {target.data.shape}")
            target.data = value.astype(target.data.dtype)

    # -- call protocol -------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run child modules in order (``lr.models``-style container)."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)
            self.layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        index = len(self.layers)
        setattr(self, f"layer_{index}", layer)
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list of sub-modules registered for parameter collection."""

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        setattr(self, f"item_{index}", module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
