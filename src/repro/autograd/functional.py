"""Neural-network style differentiable operators.

These are the operators used by the digital baselines (Table 4's MLP/CNN),
by the training loss of DONNs (softmax + MSE, Section 2.1) and by the
advanced segmentation architecture (layer normalisation, Section 5.6.2).
All operate on real tensors unless stated otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    x = Tensor._coerce(x)
    mask = x.data > 0
    data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    x = Tensor._coerce(x)
    data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = Tensor._coerce(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            x._accumulate(data * (grad - dot))

    return Tensor._make(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = Tensor._coerce(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            soft = np.exp(data)
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(data, (x,), backward)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, the paper's training loss ``||Softmax(I) - t||^2``."""
    prediction = Tensor._coerce(prediction)
    target = Tensor._coerce(target)
    diff = prediction - target
    return (diff * diff).mean()


def softmax_mse_loss(intensity: Tensor, one_hot_target: Tensor) -> Tensor:
    """The DONN loss of Section 2.1: MSE between Softmax(I) and one-hot labels."""
    return mse_loss(softmax(intensity, axis=-1), one_hot_target)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross entropy with integer class labels (used by digital baselines)."""
    logits = Tensor._coerce(logits)
    labels = np.asarray(labels, dtype=int)
    logp = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), labels]
    return -picked.mean()


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """BCE on probabilities in [0, 1] (segmentation masks)."""
    prediction = Tensor._coerce(prediction).clip(eps, 1.0 - eps)
    target = Tensor._coerce(target)
    loss = -(target * prediction.log() + (1.0 - target) * (1.0 - prediction).log())
    return loss.mean()


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #
def layer_norm(
    x: Tensor,
    axes: Tuple[int, ...] = (-2, -1),
    gain: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    eps: float = 1e-6,
) -> Tensor:
    """Layer normalisation over ``axes`` (used before the detector plane
    during segmentation-DONN training, Section 5.6.2)."""
    x = Tensor._coerce(x)
    mean = x.mean(axis=axes, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=axes, keepdims=True)
    normalised = centred * ((variance + eps) ** -0.5)
    if gain is not None:
        normalised = normalised * gain
    if bias is not None:
        normalised = normalised + bias
    return normalised


# --------------------------------------------------------------------------- #
# Linear / convolution blocks (digital baselines)
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _im2col(data: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    batch, channels, height, width = data.shape
    if padding:
        data = np.pad(data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (data.shape[2] - kernel) // stride + 1
    out_w = (data.shape[3] - kernel) // stride + 1
    strides = data.strides
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        data,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
    )
    columns = view.reshape(batch, channels, out_h * out_w, kernel * kernel)
    columns = columns.transpose(0, 2, 1, 3).reshape(batch, out_h * out_w, channels * kernel * kernel)
    return np.ascontiguousarray(columns), out_h, out_w


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution for real tensors, NCHW layout, square kernels.

    Implemented with im2col + matmul so that only matmul needs a gradient,
    keeping the backward path simple and well-tested.
    """
    x = Tensor._coerce(x)
    weight = Tensor._coerce(weight)
    out_channels, in_channels, kernel, _ = weight.shape
    batch = x.shape[0]

    columns_np, out_h, out_w = _im2col(x.data, kernel, stride, padding)

    def col_backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = grad.reshape(batch, out_h, out_w, in_channels, kernel, kernel)
        padded = np.zeros(
            (batch, in_channels, x.shape[2] + 2 * padding, x.shape[3] + 2 * padding), dtype=float
        )
        for i in range(kernel):
            for j in range(kernel):
                padded[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                    grad_cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                )
        if padding:
            padded = padded[:, :, padding:-padding, padding:-padding]
        x._accumulate(padded)

    columns = Tensor._make(columns_np, (x,), col_backward)
    flat_weight = weight.reshape(out_channels, in_channels * kernel * kernel)
    out = columns @ flat_weight.T  # (batch, out_h*out_w, out_channels)
    if bias is not None:
        out = out + bias
    out = out.transpose(0, 2, 1).reshape(batch, out_channels, out_h, out_w)
    return out


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling for real NCHW tensors."""
    x = Tensor._coerce(x)
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
    )
    data = view.max(axis=(4, 5))

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        full = np.zeros_like(x.data)
        for i in range(kernel):
            for j in range(kernel):
                patch = view[:, :, :, :, i, j]
                mask = patch == data
                full[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += mask * grad
        x._accumulate(full)

    return Tensor._make(data, (x,), backward)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels to a ``(batch, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=int)
    encoded = np.zeros((labels.size, num_classes), dtype=float)
    encoded[np.arange(labels.size), labels.ravel()] = 1.0
    return encoded.reshape(labels.shape + (num_classes,))
