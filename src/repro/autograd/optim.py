"""Optimizers for real- and complex-valued parameters.

The paper trains DONNs with Adam (Section 5.1: lr = 0.5, MSE loss); the
phase parameters are real, but the digital baselines and some codesign
paths keep complex state, so both optimizers accept either dtype.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with complex-parameter support.

    For complex parameters the second moment uses ``|g|^2`` so the adaptive
    scale stays real and positive.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros(p.data.shape, dtype=float) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * np.abs(grad) ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
