"""Array-level differentiable operators used by the optical kernels.

The heavy lifting of DONN emulation is three operators (Section 5.3 of the
paper): complex 2-D FFT, inverse 2-D FFT, and complex element-wise /
matrix multiplication.  The FFTs live here; multiplication is on
:class:`~repro.autograd.tensor.Tensor` directly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def _axes_size(shape: Tuple[int, ...], axes: Tuple[int, int]) -> int:
    return int(np.prod([shape[a] for a in axes]))


def fft2(x: Tensor, axes: Tuple[int, int] = (-2, -1)) -> Tensor:
    """Differentiable 2-D FFT (numpy "backward" normalisation).

    The adjoint of the unnormalised DFT matrix ``F`` is ``N * ifft``, so the
    backward pass multiplies the inverse transform of the upstream gradient
    by the transform size.
    """
    x = Tensor._coerce(x)
    data = np.fft.fft2(x.data, axes=axes)
    n = _axes_size(x.shape, tuple(a % x.ndim for a in axes))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.fft.ifft2(grad, axes=axes) * n)

    return Tensor._make(data, (x,), backward)


def ifft2(x: Tensor, axes: Tuple[int, int] = (-2, -1)) -> Tensor:
    """Differentiable inverse 2-D FFT (numpy "backward" normalisation)."""
    x = Tensor._coerce(x)
    data = np.fft.ifft2(x.data, axes=axes)
    n = _axes_size(x.shape, tuple(a % x.ndim for a in axes))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.fft.fft2(grad, axes=axes) / n)

    return Tensor._make(data, (x,), backward)


def fftshift(x: Tensor, axes: Tuple[int, int] = (-2, -1)) -> Tensor:
    """Differentiable ``np.fft.fftshift`` (a pure permutation)."""
    x = Tensor._coerce(x)
    data = np.fft.fftshift(x.data, axes=axes)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.fft.ifftshift(grad, axes=axes))

    return Tensor._make(data, (x,), backward)


def ifftshift(x: Tensor, axes: Tuple[int, int] = (-2, -1)) -> Tensor:
    """Differentiable ``np.fft.ifftshift``."""
    x = Tensor._coerce(x)
    data = np.fft.ifftshift(x.data, axes=axes)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.fft.fftshift(grad, axes=axes))

    return Tensor._make(data, (x,), backward)


def pad2d(x: Tensor, pad: int, value: float = 0.0) -> Tensor:
    """Zero-pad the last two axes of ``x`` by ``pad`` pixels on every side."""
    x = Tensor._coerce(x)
    if pad == 0:
        return x
    widths = [(0, 0)] * (x.ndim - 2) + [(pad, pad), (pad, pad)]
    data = np.pad(x.data, widths, mode="constant", constant_values=value)
    slices = tuple([slice(None)] * (x.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)])

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[slices])

    return Tensor._make(data, (x,), backward)


def crop2d(x: Tensor, crop: int) -> Tensor:
    """Remove ``crop`` pixels from every side of the last two axes."""
    x = Tensor._coerce(x)
    if crop == 0:
        return x
    slices = tuple([slice(None)] * (x.ndim - 2) + [slice(crop, -crop), slice(crop, -crop)])
    data = x.data[slices]
    widths = [(0, 0)] * (x.ndim - 2) + [(crop, crop), (crop, crop)]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.pad(grad, widths, mode="constant"))

    return Tensor._make(data, (x,), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a non-differentiable condition."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(condition, grad, 0))
        if b.requires_grad:
            b._accumulate(np.where(condition, 0, grad))

    return Tensor._make(data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum of two real tensors."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    return where(a.data >= b.data, a, b)


def roll(x: Tensor, shift, axis) -> Tensor:
    """Differentiable ``np.roll``."""
    x = Tensor._coerce(x)
    data = np.roll(x.data, shift, axis=axis)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            if isinstance(shift, (tuple, list)):
                inverse = tuple(-s for s in shift)
            else:
                inverse = -shift
            x._accumulate(np.roll(grad, inverse, axis=axis))

    return Tensor._make(data, (x,), backward)


def exp_i(phase: Tensor) -> Tensor:
    """Compute ``exp(1j * phase)`` for a real-valued phase tensor.

    This is the phase-modulation primitive of Eq. (9): the trainable phase
    of a diffractive layer enters the field as a unit-magnitude complex
    exponential.
    """
    phase = Tensor._coerce(phase)
    data = np.exp(1j * phase.data)

    def backward(grad: np.ndarray) -> None:
        if phase.requires_grad:
            # d/dphi exp(j phi) = j exp(j phi); for a real input the exact
            # derivative is Re(conj(grad) * j * exp(j phi)) under the
            # stored-gradient convention (see package docstring).
            phase._accumulate((np.conj(grad) * 1j * data).real)

    return Tensor._make(data, (phase,), backward)


def complex_from_amplitude_phase(amplitude: Tensor, phase: Tensor) -> Tensor:
    """Build the complex field ``A * exp(1j * theta)`` from real tensors."""
    return amplitude.to_complex() * exp_i(phase)
