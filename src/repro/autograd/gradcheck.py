"""Finite-difference gradient checking utilities.

Used by the test suite to verify every differentiable operator, and in
particular the complex/real boundary rules that the optical kernels rely
on (intensity read-out, phase modulation, FFT propagation).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs)`` w.r.t. ``inputs[index]``.

    For a complex input the returned array is
    ``dL/dRe(x) + j * dL/dIm(x)`` to match the stored-gradient convention.
    """
    target = inputs[index]
    base = target.data.copy()
    grad = np.zeros_like(base, dtype=complex if np.iscomplexobj(base) else float)

    def evaluate() -> float:
        result = func(*inputs)
        value = result.data
        if value.size != 1:
            raise ValueError("numerical_gradient requires a scalar-valued function")
        return float(value.real)

    iterator = np.nditer(base, flags=["multi_index"])
    while not iterator.finished:
        idx = iterator.multi_index
        original = base[idx]

        target.data[idx] = original + eps
        plus = evaluate()
        target.data[idx] = original - eps
        minus = evaluate()
        real_part = (plus - minus) / (2 * eps)

        if np.iscomplexobj(base):
            target.data[idx] = original + 1j * eps
            plus_imag = evaluate()
            target.data[idx] = original - 1j * eps
            minus_imag = evaluate()
            imag_part = (plus_imag - minus_imag) / (2 * eps)
            grad[idx] = real_part + 1j * imag_part
        else:
            grad[idx] = real_part

        target.data[idx] = original
        iterator.iternext()

    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numeric gradients for every grad-requiring input.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` otherwise so it can be used directly in assertions.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    if output.data.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()

    for position, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        numeric = numerical_gradient(func, inputs, index=position, eps=eps)
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {position} received no gradient")
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {position}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
