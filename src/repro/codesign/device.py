"""Optical device profiles: the discrete responses real hardware can apply.

A physical phase modulator (SLM pixel, 3D-printed mask voxel) offers only a
finite set of *measured* phase/amplitude responses, indexed by the control
value (SLM voltage level, print thickness).  The codesign algorithm of
Section 3.2 consumes exactly this vector of available responses, so the
profile is the boundary object between the emulation and the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """The measured optical response of a reconfigurable/fabricable device.

    Parameters
    ----------
    phases:
        1-D array of the phase modulation (radians) realised by each valid
        control level, in control-level order.
    amplitudes:
        1-D array of the amplitude transmission of each level (defaults to
        unity -- a pure phase modulator).
    name:
        Human-readable device name used in fabrication files.
    control_values:
        The raw control quantity per level (voltage in volts for an SLM,
        thickness in metres for a printed mask); optional but required by
        ``lr.model.to_system`` style exports.
    control_unit:
        Unit string for ``control_values``.
    """

    phases: np.ndarray
    amplitudes: Optional[np.ndarray] = None
    name: str = "device"
    control_values: Optional[np.ndarray] = None
    control_unit: str = ""

    def __post_init__(self) -> None:
        phases = np.asarray(self.phases, dtype=float)
        object.__setattr__(self, "phases", phases)
        if phases.ndim != 1 or phases.size < 2:
            raise ValueError("a device profile needs a 1-D array of at least two phase levels")
        if self.amplitudes is None:
            object.__setattr__(self, "amplitudes", np.ones_like(phases))
        else:
            amplitudes = np.asarray(self.amplitudes, dtype=float)
            if amplitudes.shape != phases.shape:
                raise ValueError("amplitudes must have the same shape as phases")
            if np.any(amplitudes < 0):
                raise ValueError("amplitude transmission cannot be negative")
            object.__setattr__(self, "amplitudes", amplitudes)
        if self.control_values is not None:
            control = np.asarray(self.control_values, dtype=float)
            if control.shape != phases.shape:
                raise ValueError("control_values must have the same shape as phases")
            object.__setattr__(self, "control_values", control)

    @property
    def num_levels(self) -> int:
        return int(self.phases.size)

    @property
    def phase_coverage(self) -> float:
        """Total phase range covered by the device in radians."""
        return float(self.phases.max() - self.phases.min())

    def complex_responses(self) -> np.ndarray:
        """Complex modulation ``A_l * exp(j * phi_l)`` of every level."""
        return self.amplitudes * np.exp(1j * self.phases)

    def nearest_level(self, phase: np.ndarray) -> np.ndarray:
        """Index of the level whose phase is closest (circularly) to ``phase``."""
        phase = np.asarray(phase, dtype=float)[..., None]
        difference = np.angle(np.exp(1j * (phase - self.phases)))
        return np.abs(difference).argmin(axis=-1)

    def control_for_levels(self, indices: np.ndarray) -> np.ndarray:
        """Control values (voltage/thickness) for an array of level indices."""
        if self.control_values is None:
            raise ValueError(f"device {self.name!r} has no control-value calibration")
        return self.control_values[np.asarray(indices, dtype=int)]


def ideal_profile(num_levels: int = 256, coverage: float = 2.0 * np.pi) -> DeviceProfile:
    """An idealised phase modulator with uniformly spaced levels over ``coverage``."""
    phases = np.linspace(0.0, coverage, num_levels, endpoint=False)
    return DeviceProfile(phases=phases, name=f"ideal-{num_levels}")


def slm_profile(
    num_levels: int = 256,
    coverage: float = 2.0 * np.pi,
    nonlinearity: float = 0.15,
    amplitude_coupling: float = 0.05,
    max_voltage: float = 5.0,
    seed: Optional[int] = None,
    name: str = "LC2012-SLM",
) -> DeviceProfile:
    """A twisted-nematic SLM profile in the style of the HOLOEYE LC2012.

    The phase response of a liquid-crystal SLM is a *nonlinear* (roughly
    sigmoidal) function of the applied voltage and couples weakly to the
    amplitude; this synthetic calibration reproduces those qualitative
    features.  ``seed`` adds small per-level measurement jitter so that two
    "measured" profiles are never bit-identical, as in practice.
    """
    voltage = np.linspace(0.0, max_voltage, num_levels)
    normalised = voltage / max_voltage
    # Sigmoid-like phase-vs-voltage curve covering [0, coverage).
    curve = 1.0 / (1.0 + np.exp(-8.0 * (normalised - 0.5)))
    curve = (curve - curve.min()) / (curve.max() - curve.min())
    phases = coverage * ((1.0 - nonlinearity) * normalised + nonlinearity * curve)
    phases = np.clip(phases, 0.0, coverage * (1.0 - 1e-9))
    amplitudes = 1.0 - amplitude_coupling * np.sin(np.pi * normalised) ** 2
    if seed is not None:
        rng = np.random.default_rng(seed)
        phases = phases + rng.normal(scale=coverage / (40.0 * num_levels), size=num_levels)
        phases = np.clip(phases, 0.0, coverage)
    return DeviceProfile(
        phases=phases,
        amplitudes=amplitudes,
        name=name,
        control_values=voltage,
        control_unit="V",
    )


def thz_mask_profile(
    num_levels: int = 16,
    wavelength: float = 400e-6,
    refractive_index: float = 1.7,
    max_thickness: Optional[float] = None,
    name: str = "THz-3D-printed-mask",
) -> DeviceProfile:
    """A 3D-printed THz phase mask: few levels, phase set by material thickness.

    The phase delay of a voxel of thickness ``t`` is
    ``(n - 1) * 2 pi t / lambda``; printable thickness is discretised into
    ``num_levels`` steps covering one full wave.
    """
    if max_thickness is None:
        max_thickness = wavelength / (refractive_index - 1.0)
    thickness = np.linspace(0.0, max_thickness, num_levels, endpoint=False)
    phases = (refractive_index - 1.0) * 2.0 * np.pi * thickness / wavelength
    return DeviceProfile(
        phases=phases,
        name=name,
        control_values=thickness,
        control_unit="m",
    )
