"""Differentiable discrete codesign: Gumbel-Softmax level selection.

Physical devices expose a *finite* set of valid responses (``DeviceProfile``).
Training directly over that set -- instead of training a continuous phase
and quantising afterwards -- is what removes the deployment accuracy cliff
shown in Figure 1.  The categorical choice of level per diffraction unit is
relaxed with the Gumbel-Softmax estimator (Jang et al., 2016), which the
paper adopts from the codesign algorithm of Li et al. (ICCAD 2022).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor, functional


def sample_gumbel(shape, rng: np.random.Generator, eps: float = 1e-12) -> np.ndarray:
    """Draw standard Gumbel(0, 1) noise of the given shape."""
    uniform = rng.uniform(low=eps, high=1.0 - eps, size=shape)
    return -np.log(-np.log(uniform))


def gumbel_softmax_probabilities(
    logits: Tensor,
    temperature: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Relaxed categorical probabilities over device levels.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., L)`` with unnormalised level scores.
    temperature:
        Softmax temperature; lower values approach one-hot selections.
    rng:
        If given, Gumbel noise is added (stochastic, training-time
        behaviour).  If ``None`` the deterministic softmax is returned
        (evaluation-time behaviour).
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    logits = logits if isinstance(logits, Tensor) else Tensor(logits)
    if rng is not None:
        noise = sample_gumbel(logits.shape, rng)
        scores = (logits + Tensor(noise)) * (1.0 / temperature)
    else:
        scores = logits * (1.0 / temperature)
    return functional.softmax(scores, axis=-1)


def hard_assignment(logits: np.ndarray) -> np.ndarray:
    """Arg-max level index per unit (deployment-time hard selection)."""
    return np.asarray(logits).argmax(axis=-1)


def post_training_quantize(phase: np.ndarray, level_phases: np.ndarray) -> np.ndarray:
    """Snap a continuous phase pattern to the nearest device level.

    This is the conventional *post-training* quantisation path that the
    raw-trained model must go through before deployment; the accuracy it
    loses (relative to codesign training) is the Figure 1 deployment gap.
    """
    phase = np.asarray(phase, dtype=float)
    level_phases = np.asarray(level_phases, dtype=float)
    difference = np.angle(np.exp(1j * (phase[..., None] - level_phases)))
    indices = np.abs(difference).argmin(axis=-1)
    return level_phases[indices]


def quantization_error(phase: np.ndarray, level_phases: np.ndarray) -> float:
    """RMS circular phase error introduced by post-training quantisation."""
    quantized = post_training_quantize(phase, level_phases)
    circular = np.angle(np.exp(1j * (np.asarray(phase) - quantized)))
    return float(np.sqrt(np.mean(circular**2)))
