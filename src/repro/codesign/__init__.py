"""Hardware-software codesign algorithms (Section 3.2).

* :mod:`~repro.codesign.device` -- device profiles: the measured, discrete
  optical responses of SLMs / 3D-printed phase masks, including
  fabrication variations.
* :mod:`~repro.codesign.quantization` -- Gumbel-Softmax machinery used by
  :class:`repro.layers.CodesignDiffractiveLayer` for quantisation-aware
  training, plus post-training quantisation (the manual-calibration
  baseline of Figure 1).
* :mod:`~repro.codesign.noise` -- deployment noise models (detector
  intensity noise, per-pixel phase error) used for the robustness study of
  Figure 7 and the hardware-correlation study of Figure 6.
"""

from repro.codesign.device import DeviceProfile, slm_profile, thz_mask_profile, ideal_profile
from repro.codesign.quantization import (
    gumbel_softmax_probabilities,
    hard_assignment,
    post_training_quantize,
    quantization_error,
)
from repro.codesign.noise import DetectorNoiseModel, PhaseNoiseModel, FabricationVariation

__all__ = [
    "DeviceProfile",
    "slm_profile",
    "thz_mask_profile",
    "ideal_profile",
    "gumbel_softmax_probabilities",
    "hard_assignment",
    "post_training_quantize",
    "quantization_error",
    "DetectorNoiseModel",
    "PhaseNoiseModel",
    "FabricationVariation",
]
