"""Deployment noise models.

These close the loop between the numerical emulation and the "physical"
system of this reproduction: fabrication variations perturb the phase a
device actually applies, and the detector adds intensity noise.  They are
used to (a) emulate hardware measurements for the Figure 6 correlation
study, and (b) run the robustness analysis of Figure 7 (uniform intensity
noise of 1%, 3%, 5% at the detector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class DetectorNoiseModel:
    """Additive uniform intensity noise at the detector plane.

    ``level`` is the noise upper bound relative to the maximum intensity of
    the (noise-free) pattern, exactly as in the paper's confidence study
    ("random uniform noise ... with upper bound 1%, 3%, and 5% intensity").
    """

    level: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("noise level cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, intensity: np.ndarray) -> np.ndarray:
        """Return a noisy copy of an intensity pattern (clipped at zero)."""
        intensity = np.asarray(intensity, dtype=float)
        if self.level == 0.0:
            return intensity.copy()
        scale = self.level * intensity.max() if intensity.size else 0.0
        noise = self._rng.uniform(0.0, scale, size=intensity.shape)
        return np.clip(intensity + noise, 0.0, None)


@dataclass
class PhaseNoiseModel:
    """Gaussian phase error applied on top of the programmed phase values.

    Models the non-uniform optical response of analog devices (Section 2.2):
    each pixel realises the requested phase only up to ``sigma`` radians of
    error, with an optional constant ``bias``.
    """

    sigma: float = 0.0
    bias: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, phase: np.ndarray) -> np.ndarray:
        phase = np.asarray(phase, dtype=float)
        if self.sigma == 0.0 and self.bias == 0.0:
            return phase.copy()
        return phase + self.bias + self._rng.normal(scale=self.sigma, size=phase.shape)


@dataclass
class FabricationVariation:
    """Multiplicative amplitude and additive phase variation per pixel.

    Represents pixel-to-pixel fabrication error of SLMs / printed masks;
    drawn once per device (frozen) so repeated inferences see the same
    hardware, as they would in the lab.
    """

    amplitude_sigma: float = 0.0
    phase_sigma: float = 0.0
    seed: Optional[int] = None

    def sample(self, shape) -> np.ndarray:
        """Complex per-pixel error factor ``(1 + dA) * exp(j dphi)``."""
        rng = np.random.default_rng(self.seed)
        amplitude = 1.0 + rng.normal(scale=self.amplitude_sigma, size=shape)
        phase = rng.normal(scale=self.phase_sigma, size=shape)
        return np.clip(amplitude, 0.0, None) * np.exp(1j * phase)
