"""CMOS camera / photon detector model.

The prototype reads the diffraction pattern with a Thorlabs CS165MU1
camera; practically this means shot noise, read noise and ADC
quantisation on top of the ideal intensity pattern.  The camera model is
the second half of the "physical system" used to emulate hardware
measurements (Figure 6) and the power numbers feed Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class CMOSCamera:
    """An intensity detector with noise and quantisation.

    Parameters
    ----------
    bit_depth:
        ADC resolution; patterns are quantised to ``2**bit_depth`` levels
        of the full scale.
    shot_noise_scale:
        Standard deviation of multiplicative (photon) noise relative to
        the signal level.
    read_noise:
        Additive Gaussian noise standard deviation relative to full scale.
    power_watts, max_fps:
        Electrical characteristics used by the energy model (Table 4
        assumes ~1 W at 1000 fps for the 200x200 read-out).
    """

    bit_depth: int = 10
    shot_noise_scale: float = 0.01
    read_noise: float = 0.002
    power_watts: float = 1.0
    max_fps: float = 1000.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bit_depth <= 0:
            raise ValueError("bit_depth must be positive")
        self._rng = np.random.default_rng(self.seed)

    def capture(self, intensity: np.ndarray) -> np.ndarray:
        """Convert an ideal intensity pattern into a digitised camera frame.

        The returned frame is normalised to [0, 1] full scale.
        """
        intensity = np.asarray(intensity, dtype=float)
        peak = intensity.max()
        if peak <= 0:
            return np.zeros_like(intensity)
        signal = intensity / peak
        noisy = signal * (1.0 + self._rng.normal(scale=self.shot_noise_scale, size=signal.shape))
        noisy = noisy + self._rng.normal(scale=self.read_noise, size=signal.shape)
        noisy = np.clip(noisy, 0.0, 1.0)
        levels = 2**self.bit_depth - 1
        return np.round(noisy * levels) / levels
