"""Monolithic on-chip DONN integration (Section 5.5, Figure 11).

The free-space prototype can be shrunk into a 3D monolithic chip: each
diffractive layer becomes a nano-printed thin film whose per-voxel
thickness encodes the trained phase, separated by optical clear adhesive
whose thickness is the (much smaller) diffraction distance, stacked on a
CMOS detector die.  The case study fixes the CMOS pixel pitch (3.45 um)
and wavelength (532 nm) and asks the DSE engine for a distance/resolution
pair; this module does the integration arithmetic (chip dimensions,
validity checks, fabrication spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.models.config import DONNConfig


@dataclass(frozen=True)
class OnChipIntegrationSpec:
    """Physical specification of a monolithic on-chip DONN."""

    config: DONNConfig
    layer_film_thickness: float = 1e-6
    refractive_index: float = 1.56  # optical clear adhesive

    @property
    def chip_side(self) -> float:
        """Flat (transverse) chip dimension in metres."""
        return self.config.sys_size * self.config.pixel_size

    @property
    def adhesive_thickness(self) -> float:
        """Physical spacer thickness realising the design diffraction distance.

        Inside a medium of index ``n`` the free-space design distance maps
        to the same *optical* path, so the spacer is ``distance`` directly
        (the emulation already uses the in-medium wavelength if desired);
        the case study quotes the geometric distance, which we follow.
        """
        return self.config.distance

    @property
    def stack_height(self) -> float:
        """Total chip height: alternating phase films and adhesive spacers."""
        layers = self.config.num_layers
        return layers * self.layer_film_thickness + layers * self.adhesive_thickness

    def dimensions(self) -> Dict[str, float]:
        return {
            "side_m": self.chip_side,
            "height_m": self.stack_height,
            "side_um": self.chip_side * 1e6,
            "height_um": self.stack_height * 1e6,
        }

    def fits_detector(self, detector_side: float) -> bool:
        """Whether the optical stack footprint fits on the detector die."""
        return self.chip_side <= detector_side

    def fabrication_spec(self) -> Dict:
        """A JSON-serialisable fabrication record for the integration flow."""
        dims = self.dimensions()
        return {
            "wavelength_nm": self.config.wavelength * 1e9,
            "pixel_pitch_um": self.config.pixel_size * 1e6,
            "resolution": self.config.sys_size,
            "num_layers": self.config.num_layers,
            "layer_spacing_um": self.adhesive_thickness * 1e6,
            "chip_side_um": dims["side_um"],
            "chip_height_um": dims["height_um"],
            "adhesive_index": self.refractive_index,
        }


def design_onchip_system(
    pixel_size: float,
    wavelength: float,
    num_layers: int = 5,
    candidate_distances: Optional[List[float]] = None,
    candidate_resolutions: Optional[List[int]] = None,
    score_fn=None,
) -> OnChipIntegrationSpec:
    """Pick an on-chip design given the detector-imposed pixel pitch.

    ``score_fn(config) -> float`` scores candidate configurations (higher
    is better); by default a physics prior is used: the diffraction cone
    from one unit should reach a neighbourhood of units on the next layer
    (maximum half-cone angle theory, Section 4), which favours distances
    around ``D ~ s * d^2 / lambda`` for a spread of ``s`` units.
    """
    candidate_distances = candidate_distances or [
        pixel_size**2 / wavelength * spread for spread in (10, 20, 40, 80, 160)
    ]
    candidate_resolutions = candidate_resolutions or [100, 150, 200]

    def default_score(config: DONNConfig) -> float:
        spread = config.distance * config.wavelength / config.pixel_size**2
        # Favour a diffraction spread of ~ tens of units and larger resolution.
        spread_score = -abs(np.log(spread / 40.0))
        return spread_score + 0.001 * config.sys_size

    score_fn = score_fn or default_score
    best_spec: Optional[OnChipIntegrationSpec] = None
    best_score = -np.inf
    for resolution in candidate_resolutions:
        for distance in candidate_distances:
            config = DONNConfig(
                sys_size=resolution,
                pixel_size=pixel_size,
                distance=distance,
                wavelength=wavelength,
                num_layers=num_layers,
            )
            score = float(score_fn(config))
            if score > best_score:
                best_score = score
                best_spec = OnChipIntegrationSpec(config=config)
    assert best_spec is not None
    return best_spec
