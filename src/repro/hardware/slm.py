"""Spatial light modulator (SLM) model.

The physical prototype (Section 5.1) realises each diffractive layer with
a HOLOEYE LC2012 twisted-nematic SLM: the trained phase per pixel is
translated to a control voltage through the measured response curve, and
the device applies that phase only approximately (discrete levels,
per-pixel fabrication variation, weak amplitude coupling).  This module
provides both directions: *programming* (phase -> voltage) and *emulating*
(what modulation the programmed device actually applies), which is what
lets the reproduction stage the simulation-vs-experiment comparison of
Figure 6 without a lab.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codesign.device import DeviceProfile, slm_profile
from repro.codesign.noise import FabricationVariation
from repro.optics.grid import SpatialGrid


@dataclass
class SLMConfiguration:
    """The programming of one SLM: per-pixel level indices and voltages."""

    name: str
    level_indices: np.ndarray
    voltages: np.ndarray
    phases: np.ndarray

    @property
    def shape(self):
        return self.level_indices.shape


class SLM:
    """A reconfigurable phase modulator with a measured discrete response.

    Parameters
    ----------
    grid:
        Pixel grid of the panel.
    profile:
        Measured device profile (defaults to a synthetic LC2012-style
        calibration with 256 levels covering ~2 pi).
    variation:
        Frozen per-pixel fabrication variation; ``None`` for an ideal panel.
    """

    def __init__(
        self,
        grid: SpatialGrid,
        profile: Optional[DeviceProfile] = None,
        variation: Optional[FabricationVariation] = None,
        name: str = "SLM",
    ):
        self.grid = grid
        self.profile = profile or slm_profile()
        self.name = name
        if variation is None:
            self._pixel_error = np.ones(grid.shape, dtype=complex)
        else:
            self._pixel_error = variation.sample(grid.shape)

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def program_phase(self, phase: np.ndarray) -> SLMConfiguration:
        """Quantise a target phase pattern to device levels and voltages."""
        phase = np.asarray(phase, dtype=float)
        if phase.shape != self.grid.shape:
            raise ValueError(f"phase shape {phase.shape} does not match SLM grid {self.grid.shape}")
        indices = self.profile.nearest_level(phase)
        voltages = self.profile.control_for_levels(indices)
        applied = self.profile.phases[indices]
        return SLMConfiguration(name=self.name, level_indices=indices, voltages=voltages, phases=applied)

    def program_levels(self, level_indices: np.ndarray) -> SLMConfiguration:
        """Program explicit level indices (codesign-trained layers)."""
        indices = np.asarray(level_indices, dtype=int)
        if indices.shape != self.grid.shape:
            raise ValueError(f"level shape {indices.shape} does not match SLM grid {self.grid.shape}")
        if indices.min() < 0 or indices.max() >= self.profile.num_levels:
            raise ValueError("level indices out of range for this device profile")
        voltages = self.profile.control_for_levels(indices)
        applied = self.profile.phases[indices]
        return SLMConfiguration(name=self.name, level_indices=indices, voltages=voltages, phases=applied)

    # ------------------------------------------------------------------ #
    # Emulated physical behaviour
    # ------------------------------------------------------------------ #
    def applied_modulation(self, configuration: SLMConfiguration) -> np.ndarray:
        """Complex modulation the physical panel applies for a programming.

        Includes the level's amplitude transmission and the frozen
        per-pixel fabrication error.
        """
        responses = self.profile.complex_responses()[configuration.level_indices]
        return responses * self._pixel_error

    def modulate(self, field: np.ndarray, configuration: SLMConfiguration) -> np.ndarray:
        """Apply the panel to an incident complex field (plain numpy)."""
        return np.asarray(field) * self.applied_modulation(configuration)
