"""Hardware deployment backend (Table 2, "Hardware deployment").

* :mod:`~repro.hardware.slm` -- spatial-light-modulator model: maps trained
  phases to control voltages and emulates the physical modulation
  (including fabrication variation), i.e. the "experiment" side of the
  Figure 6 correlation study.
* :mod:`~repro.hardware.camera` -- CMOS detector model with shot/read
  noise and ADC quantisation.
* :mod:`~repro.hardware.deploy` -- ``to_system``-style exporters that dump
  fabrication/configuration files for SLM and 3D-printed-mask systems, and
  a :class:`HardwareTestbench` that runs a trained DONN on the emulated
  hardware.
* :mod:`~repro.hardware.onchip` -- monolithic on-chip integration
  specification (Section 5.5 case study).
* :mod:`~repro.hardware.energy` -- analytical energy/throughput model for
  Table 4 (fps/Watt of DONN vs. digital platforms).
"""

from repro.hardware.slm import SLM, SLMConfiguration
from repro.hardware.camera import CMOSCamera
from repro.hardware.deploy import (
    HardwareTestbench,
    deployment_report,
    dump_slm_configuration,
    dump_mask_thickness,
    to_system,
)
from repro.hardware.onchip import OnChipIntegrationSpec, design_onchip_system
from repro.hardware.energy import PlatformPowerModel, DONNPowerModel, energy_efficiency_table, DIGITAL_PLATFORMS

__all__ = [
    "SLM",
    "SLMConfiguration",
    "CMOSCamera",
    "HardwareTestbench",
    "deployment_report",
    "dump_slm_configuration",
    "dump_mask_thickness",
    "to_system",
    "OnChipIntegrationSpec",
    "design_onchip_system",
    "PlatformPowerModel",
    "DONNPowerModel",
    "energy_efficiency_table",
    "DIGITAL_PLATFORMS",
]
