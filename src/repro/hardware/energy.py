"""Analytical energy-efficiency model (Table 4).

The paper compares frames-per-second-per-Watt of the DONN prototype
against digital platforms running the MLP/CNN baselines.  On the DONN side
the only powered components are the laser (~5 mW) and the CMOS detector
(~1 W at 1000 fps); the diffractive layers are passive.  On the digital
side the paper measures fps and board power; here both are modelled
analytically from operation counts and published platform constants, so
the *relative ordering and rough factors* (DONN ~2 orders of magnitude
above CPU/GPU, ~1 above edge TPUs) are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional



@dataclass(frozen=True)
class PlatformPowerModel:
    """A digital compute platform characterised by throughput, power and overhead.

    ``effective_ops_per_second`` is the sustained (not peak) op rate for
    small-batch inference, ``power_watts`` the board power while doing so,
    and ``overhead_seconds`` the fixed per-inference cost (kernel launch,
    host transfer, USB round trip for the EdgeTPU) that dominates batch-1
    latency for small models -- which is exactly why the paper's measured
    fps/W numbers are far below the platforms' peak throughput.
    """

    name: str
    effective_ops_per_second: float
    power_watts: float
    overhead_seconds: float = 1e-3

    def frames_per_second(self, ops_per_frame: float) -> float:
        """Throughput for a model needing ``ops_per_frame`` MACs per frame."""
        if ops_per_frame <= 0:
            raise ValueError("ops_per_frame must be positive")
        compute_time = ops_per_frame / self.effective_ops_per_second
        return 1.0 / (compute_time + self.overhead_seconds)

    def fps_per_watt(self, ops_per_frame: float) -> float:
        return self.frames_per_second(ops_per_frame) / self.power_watts


#: Batch-1 throughput / power / overhead estimates for the Table 4 platforms.
DIGITAL_PLATFORMS: Dict[str, PlatformPowerModel] = {
    "GPU 2080 Ti": PlatformPowerModel("GPU 2080 Ti", 2.0e11, power_watts=250.0, overhead_seconds=1e-3),
    "GPU 3090 Ti": PlatformPowerModel("GPU 3090 Ti", 2.5e11, power_watts=450.0, overhead_seconds=1e-3),
    "CPU Xeon": PlatformPowerModel("CPU Xeon", 4.0e10, power_watts=125.0, overhead_seconds=5e-3),
    "XPU (EdgeTPU)": PlatformPowerModel("XPU (EdgeTPU)", 2.0e10, power_watts=2.0, overhead_seconds=2e-2),
}


@dataclass(frozen=True)
class DONNPowerModel:
    """Powered components of an optical DONN inference system."""

    laser_power_watts: float = 5e-3
    detector_power_watts: float = 1.0
    detector_fps: float = 1000.0

    @property
    def total_power_watts(self) -> float:
        return self.laser_power_watts + self.detector_power_watts

    def fps_per_watt(self) -> float:
        """All-optical inference throughput per Watt (diffraction is free)."""
        return self.detector_fps / self.total_power_watts


def mlp_ops(input_size: int, hidden: int = 128, classes: int = 10) -> float:
    """MAC count of the paper's MLP baseline (input -> 128 -> classes)."""
    return float(input_size * hidden + hidden * classes)


def cnn_ops(image_side: int, channels=(32, 64), kernel: int = 5, classes: int = 10, hidden: int = 128) -> float:
    """Approximate MAC count of the paper's CNN baseline."""
    side = image_side
    ops = 0.0
    in_channels = 1
    for out_channels in channels:
        side = side // 2  # stride-2 convolution
        ops += side * side * out_channels * in_channels * kernel * kernel
        side = (side - 3) // 2 + 1  # 3x3 max pool stride 2 (no MACs)
        in_channels = out_channels
    flat = side * side * in_channels
    ops += flat * hidden + hidden * classes
    return float(ops)


def energy_efficiency_table(
    system_size: int = 200,
    donn: Optional[DONNPowerModel] = None,
) -> List[Dict[str, float]]:
    """Build the rows of Table 4: fps/Watt for MLP and CNN per platform + DONN.

    Returns a list of dictionaries with keys ``platform``, ``mlp_fps_per_watt``,
    ``cnn_fps_per_watt``, and (for the DONN row) ``fps_per_watt``.
    """
    donn = donn or DONNPowerModel()
    input_size = system_size * system_size
    rows: List[Dict[str, float]] = []
    donn_efficiency = donn.fps_per_watt()
    for platform in DIGITAL_PLATFORMS.values():
        mlp_eff = platform.fps_per_watt(mlp_ops(input_size))
        cnn_eff = platform.fps_per_watt(cnn_ops(system_size))
        rows.append(
            {
                "platform": platform.name,
                "mlp_fps_per_watt": mlp_eff,
                "cnn_fps_per_watt": cnn_eff,
                "donn_advantage_mlp": donn_efficiency / mlp_eff,
                "donn_advantage_cnn": donn_efficiency / cnn_eff,
            }
        )
    rows.append(
        {
            "platform": "DONN prototype",
            "fps_per_watt": donn_efficiency,
        }
    )
    return rows
