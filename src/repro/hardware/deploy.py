"""Deployment backend: ``to_system``-style exports and a hardware testbench.

``lr.model.to_system`` in the paper produces device-specific parameters
from a trained model: control-voltage arrays for SLM systems, thickness
arrays for 3D-printed THz masks.  :class:`HardwareTestbench` then runs a
trained DONN *through the emulated hardware* (SLM quantisation +
fabrication variation + camera noise) so the out-of-box deployment
accuracy and the simulation/experiment correlation (Figures 1 and 6) can
be measured without physical optics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.codesign.device import DeviceProfile
from repro.codesign.noise import FabricationVariation
from repro.hardware.camera import CMOSCamera
from repro.hardware.slm import SLM, SLMConfiguration
from repro.layers.diffractive import CodesignDiffractiveLayer
from repro.models.donn import DONN
from repro.optics.wave import correlation
from repro.train.metrics import accuracy, prediction_confidence


# --------------------------------------------------------------------------- #
# Fabrication / configuration exports
# --------------------------------------------------------------------------- #
def to_system(model: DONN, profile: DeviceProfile) -> List[Dict]:
    """Produce device-specific per-layer deployment records.

    Each record carries the level index map and the control values
    (voltage or thickness) for one diffractive layer -- what would be
    loaded on an SLM or sent to the printer.
    """
    records = []
    for index, layer in enumerate(model.diffractive_layers):
        if isinstance(layer, CodesignDiffractiveLayer):
            indices = layer.hard_level_indices()
        else:
            indices = profile.nearest_level(layer.phase_values())
        record = {
            "layer": index,
            "device": profile.name,
            "level_indices": indices,
            "control_values": profile.control_for_levels(indices) if profile.control_values is not None else None,
            "control_unit": profile.control_unit,
            "phases": profile.phases[indices],
        }
        records.append(record)
    return records


def dump_slm_configuration(records: Sequence[Dict], directory: Union[str, Path]) -> List[Path]:
    """Write voltage maps (one ``.npy`` + ``.json`` metadata per layer)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for record in records:
        stem = directory / f"layer_{record['layer']:02d}_slm"
        np.save(stem.with_suffix(".npy"), record["control_values"])
        metadata = {
            "layer": record["layer"],
            "device": record["device"],
            "control_unit": record["control_unit"],
            "shape": list(np.asarray(record["control_values"]).shape),
        }
        stem.with_suffix(".json").write_text(json.dumps(metadata, indent=2))
        written.extend([stem.with_suffix(".npy"), stem.with_suffix(".json")])
    return written


def dump_mask_thickness(records: Sequence[Dict], directory: Union[str, Path]) -> List[Path]:
    """Write 3D-print thickness maps for THz mask fabrication."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for record in records:
        if record["control_unit"] != "m":
            raise ValueError("mask thickness dump requires a thickness-calibrated device profile")
        stem = directory / f"layer_{record['layer']:02d}_thickness"
        np.save(stem.with_suffix(".npy"), record["control_values"])
        written.append(stem.with_suffix(".npy"))
    return written


# --------------------------------------------------------------------------- #
# Emulated-hardware testbench
# --------------------------------------------------------------------------- #
@dataclass
class DeploymentReport:
    """Summary of running a trained model on the emulated hardware."""

    simulation_accuracy: float
    hardware_accuracy: float
    pattern_correlation: float
    confidence: float

    @property
    def accuracy_gap(self) -> float:
        return self.simulation_accuracy - self.hardware_accuracy


class HardwareTestbench:
    """Run a trained DONN on emulated physical hardware.

    The testbench replaces each trained layer's ideal modulation with the
    modulation an SLM programmed from that layer would really apply
    (nearest-level quantisation unless the layer was codesign-trained,
    plus frozen fabrication variation), propagates with the same physics
    kernels, and reads the detector through a noisy CMOS camera.
    """

    def __init__(
        self,
        model: DONN,
        profile: Optional[DeviceProfile] = None,
        variation: Optional[FabricationVariation] = None,
        camera: Optional[CMOSCamera] = None,
        seed: int = 0,
    ):
        self.model = model
        self.profile = profile or model.device_profile
        if self.profile is None:
            raise ValueError("a device profile is required to deploy the model")
        self.variation = variation or FabricationVariation(amplitude_sigma=0.02, phase_sigma=0.05, seed=seed)
        self.camera = camera or CMOSCamera(seed=seed)
        grid = model.config.grid
        self.slms = [
            SLM(grid, profile=self.profile, variation=self.variation, name=f"SLM-{i}")
            for i in range(model.num_layers)
        ]
        self._configurations = self._program_layers()

    def _program_layers(self) -> List[SLMConfiguration]:
        configurations = []
        for slm, layer in zip(self.slms, self.model.diffractive_layers):
            if isinstance(layer, CodesignDiffractiveLayer):
                configurations.append(slm.program_levels(layer.hard_level_indices()))
            else:
                configurations.append(slm.program_phase(layer.phase_values()))
        return configurations

    # ------------------------------------------------------------------ #
    def hardware_detector_pattern(self, images: np.ndarray) -> np.ndarray:
        """Camera frame(s) produced by the emulated physical system."""
        with no_grad():
            field = self.model.encode(images)
            for layer, slm, configuration in zip(self.model.diffractive_layers, self.slms, self._configurations):
                diffracted = layer.propagator(field)
                modulation = slm.applied_modulation(configuration) * self.model.config.amplitude_factor
                field = diffracted * Tensor(modulation)
            field = self.model.final_propagator(field)
            pattern = field.abs2().data.real
        batched = pattern if pattern.ndim == 3 else pattern[None]
        frames = np.stack([self.camera.capture(frame) for frame in batched])
        return frames if pattern.ndim == 3 else frames[0]

    def hardware_logits(self, images: np.ndarray) -> np.ndarray:
        """Per-class collected intensities measured by the emulated hardware."""
        frames = self.hardware_detector_pattern(images)
        frames = frames if frames.ndim == 3 else frames[None]
        with no_grad():
            logits = self.model.detector.read(Tensor(frames))
        return np.asarray(logits.data.real)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.hardware_logits(images).argmax(axis=-1)

    # ------------------------------------------------------------------ #
    def report(self, images: np.ndarray, labels: np.ndarray) -> DeploymentReport:
        """Compare in-simulation and on-hardware behaviour (Figures 1, 6)."""
        with no_grad():
            sim_logits = np.asarray(self.model(images).data.real)
            sim_pattern = np.asarray(self.model.detector_pattern(images[:1]).data.real)[0]
        hw_logits = self.hardware_logits(images)
        hw_pattern = self.hardware_detector_pattern(images[:1])[0]
        return DeploymentReport(
            simulation_accuracy=accuracy(sim_logits, labels),
            hardware_accuracy=accuracy(hw_logits, labels),
            pattern_correlation=correlation(sim_pattern, hw_pattern),
            confidence=prediction_confidence(hw_logits),
        )


def deployment_report(
    model: DONN,
    images: np.ndarray,
    labels: np.ndarray,
    profile: Optional[DeviceProfile] = None,
    seed: int = 0,
) -> DeploymentReport:
    """Convenience wrapper: build a testbench and produce a report."""
    testbench = HardwareTestbench(model, profile=profile, seed=seed)
    return testbench.report(images, labels)
