"""Training loops for DONN classifiers, segmenters and digital baselines.

The paper trains DONNs with Adam on the MSE-over-softmax loss (Section
5.1); the same :class:`Trainer` also drives the MLP/CNN baselines of
Table 4 (with cross-entropy) so runtime and accuracy comparisons share one
code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autograd import Adam, Module, Optimizer, Tensor, functional, no_grad
from repro.codesign.noise import DetectorNoiseModel
from repro.train.metrics import accuracy, intersection_over_union, prediction_confidence


@dataclass
class TrainingResult:
    """Per-epoch history plus final evaluation produced by a trainer."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracies[-1] if self.test_accuracies else float("nan")

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))


def _iterate_batches(inputs: np.ndarray, labels: np.ndarray, batch_size: int, rng: np.random.Generator):
    order = rng.permutation(len(inputs))
    for start in range(0, len(inputs), batch_size):
        chosen = order[start : start + batch_size]
        yield inputs[chosen], labels[chosen]


class Trainer:
    """Classifier trainer (DONNs and digital baselines).

    Parameters
    ----------
    model:
        Any module mapping an image batch to per-class scores.
    learning_rate, batch_size:
        Defaults follow the paper's setup (lr = 0.5 works for DONN phase
        parameters because the loss surface over phases is smooth; the
        digital baselines pass a smaller value).
    loss:
        ``"softmax_mse"`` (paper's DONN loss) or ``"cross_entropy"``.
    """

    def __init__(
        self,
        model: Module,
        num_classes: int,
        learning_rate: float = 0.5,
        batch_size: int = 32,
        loss: str = "softmax_mse",
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ):
        if loss not in ("softmax_mse", "cross_entropy"):
            raise ValueError("loss must be 'softmax_mse' or 'cross_entropy'")
        self.model = model
        self.num_classes = num_classes
        self.batch_size = int(batch_size)
        self.loss_name = loss
        self.optimizer = optimizer or Adam(model.parameters(), lr=learning_rate)
        self.rng = np.random.default_rng(seed)

    def _loss(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        if self.loss_name == "softmax_mse":
            one_hot = functional.one_hot(labels, self.num_classes)
            return functional.softmax_mse_loss(logits, Tensor(one_hot))
        return functional.cross_entropy(logits, labels)

    def train_epoch(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One pass over the training set; returns the mean batch loss."""
        self.model.train()
        losses = []
        for batch_images, batch_labels in _iterate_batches(images, labels, self.batch_size, self.rng):
            self.optimizer.zero_grad()
            logits = self.model(batch_images)
            loss = self._loss(logits, batch_labels)
            loss.backward()
            self.optimizer.step()
            losses.append(float(loss.data.real))
        return float(np.mean(losses))

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        epochs: int = 5,
        test_images: Optional[np.ndarray] = None,
        test_labels: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainingResult:
        result = TrainingResult()
        for epoch in range(epochs):
            start = time.perf_counter()
            mean_loss = self.train_epoch(train_images, train_labels)
            elapsed = time.perf_counter() - start
            result.losses.append(mean_loss)
            result.epoch_seconds.append(elapsed)
            result.train_accuracies.append(evaluate_classifier(self.model, train_images, train_labels))
            if test_images is not None and test_labels is not None:
                result.test_accuracies.append(evaluate_classifier(self.model, test_images, test_labels))
            if verbose:  # pragma: no cover - console output
                test_msg = f", test acc {result.test_accuracies[-1]:.3f}" if result.test_accuracies else ""
                print(f"epoch {epoch + 1}/{epochs}: loss {mean_loss:.4f}{test_msg} ({elapsed:.1f}s)")
        return result


def _export_session(model, batch_size: int):
    """Compile ``model`` into an :class:`~repro.engine.InferenceSession`."""
    from repro.engine import compile as engine_compile

    try:
        return engine_compile(model, batch_size=batch_size)
    except TypeError:
        # Duck-typed models outside the compilable families: honour
        # their own export hook.
        if hasattr(model, "export_session"):
            return model.export_session(batch_size=batch_size)
        raise


def evaluate_classifier(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
    use_engine: bool = False,
) -> float:
    """Accuracy of a classifier model over a dataset (no gradient recording).

    With ``use_engine=True`` the model is compiled once into an
    autograd-free :class:`~repro.engine.InferenceSession` and the dataset
    is streamed through it -- the fast path for large evaluation sets.
    """
    labels = np.asarray(labels)
    if use_engine:
        session = _export_session(model, batch_size)
        predictions = session.predict(images, batch_size=batch_size)
        return float((predictions == labels).sum() / len(labels))
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            batch_labels = labels[start : start + batch_size]
            logits = model(batch)
            predictions = np.asarray(logits.data.real).argmax(axis=-1)
            correct += int((predictions == batch_labels).sum())
    model.train(was_training)
    return correct / len(images)


def evaluate_with_detector_noise(
    model,
    images: np.ndarray,
    labels: np.ndarray,
    noise_level: float,
    seed: int = 0,
    batch_size: int = 32,
    use_engine: bool = False,
) -> Dict[str, float]:
    """Accuracy and confidence of a DONN under detector intensity noise.

    Reproduces the Figure 7 robustness protocol: uniform noise with upper
    bound ``noise_level`` (relative to the pattern maximum) is added to the
    detector intensity pattern *before* region integration.  With
    ``use_engine=True`` the detector patterns come from the compiled
    inference engine; batching (and therefore the noise sequence) is
    identical to the graph path.
    """
    noise = DetectorNoiseModel(level=noise_level, seed=seed)
    all_logits = []
    if use_engine:
        session = _export_session(model, batch_size)
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            pattern = session.intensity_patterns(batch, batch_size=batch_size)
            noisy = noise.apply(pattern)
            all_logits.append(np.asarray(session.read_detector(noisy)))
    else:
        was_training = model.training
        model.eval()
        with no_grad():
            for start in range(0, len(images), batch_size):
                batch = images[start : start + batch_size]
                pattern = model.detector_pattern(batch)
                noisy = noise.apply(np.asarray(pattern.data.real))
                logits = model.detector.read(Tensor(noisy))
                all_logits.append(np.asarray(logits.data.real))
        model.train(was_training)
    stacked = np.concatenate(all_logits, axis=0)
    return {
        "accuracy": accuracy(stacked, labels),
        "confidence": prediction_confidence(stacked),
        "noise_level": float(noise_level),
    }


class SegmentationTrainer:
    """Trainer for image-to-image DONNs (Figure 13).

    The loss is the MSE between the (layer-normalised) output intensity
    map and the normalised target mask.
    """

    def __init__(
        self,
        model: Module,
        learning_rate: float = 0.1,
        batch_size: int = 8,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ):
        self.model = model
        self.batch_size = int(batch_size)
        self.optimizer = optimizer or Adam(model.parameters(), lr=learning_rate)
        self.rng = np.random.default_rng(seed)

    @staticmethod
    def _normalise_target(masks: np.ndarray) -> np.ndarray:
        masks = np.asarray(masks, dtype=float)
        centred = masks - masks.mean(axis=(-2, -1), keepdims=True)
        scale = centred.std(axis=(-2, -1), keepdims=True)
        return centred / np.maximum(scale, 1e-6)

    def train_epoch(self, images: np.ndarray, masks: np.ndarray) -> float:
        self.model.train()
        losses = []
        use_norm = getattr(self.model, "use_layer_norm", True)
        targets = self._normalise_target(masks) if use_norm else np.asarray(masks, dtype=float)
        for batch_images, batch_masks in _iterate_batches(images, targets, self.batch_size, self.rng):
            self.optimizer.zero_grad()
            output = self.model(batch_images)
            loss = functional.mse_loss(output, Tensor(batch_masks))
            loss.backward()
            self.optimizer.step()
            losses.append(float(loss.data.real))
        return float(np.mean(losses))

    def fit(self, images: np.ndarray, masks: np.ndarray, epochs: int = 5, verbose: bool = False) -> List[float]:
        history = []
        for epoch in range(epochs):
            mean_loss = self.train_epoch(images, masks)
            history.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch + 1}/{epochs}: loss {mean_loss:.4f}")
        return history

    def evaluate(self, images: np.ndarray, masks: np.ndarray) -> float:
        """Mean IoU of the predicted masks against the targets."""
        predicted = self.model.predict_mask(images)
        return intersection_over_union(predicted, masks)
