"""Training support (``lr.train`` in the paper's DSL).

* :mod:`~repro.train.metrics` -- accuracy, top-k accuracy, confusion
  matrix, IoU for segmentation, prediction-confidence statistics.
* :mod:`~repro.train.loop` -- :class:`Trainer` for classifier DONNs /
  digital baselines and :class:`SegmentationTrainer` for image-to-image
  DONNs, plus noise-robustness evaluation (Figure 7).
"""

from repro.train.loop import Trainer, SegmentationTrainer, TrainingResult, evaluate_classifier, evaluate_with_detector_noise
from repro.train.metrics import accuracy, top_k_accuracy, confusion_matrix, intersection_over_union, prediction_confidence

__all__ = [
    "Trainer",
    "SegmentationTrainer",
    "TrainingResult",
    "evaluate_classifier",
    "evaluate_with_detector_noise",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "intersection_over_union",
    "prediction_confidence",
]
