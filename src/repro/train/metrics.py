"""Evaluation metrics for DONN classifiers and segmenters."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Tensor

ArrayOrTensor = Union[np.ndarray, Tensor]


def _as_array(values: ArrayOrTensor) -> np.ndarray:
    return values.data.real if isinstance(values, Tensor) else np.asarray(values)


def accuracy(logits: ArrayOrTensor, labels: np.ndarray) -> float:
    """Top-1 classification accuracy from per-class scores."""
    scores = _as_array(logits)
    labels = np.asarray(labels, dtype=int)
    predictions = scores.argmax(axis=-1)
    return float((predictions == labels).mean())


def top_k_accuracy(logits: ArrayOrTensor, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy (Table 5 reports top-1/3/5 on the scene dataset)."""
    scores = _as_array(logits)
    labels = np.asarray(labels, dtype=int)
    k = min(k, scores.shape[-1])
    top_k = np.argsort(scores, axis=-1)[..., ::-1][..., :k]
    hits = (top_k == labels[..., None]).any(axis=-1)
    return float(hits.mean())


def confusion_matrix(logits: ArrayOrTensor, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Row = true class, column = predicted class, counts."""
    scores = _as_array(logits)
    labels = np.asarray(labels, dtype=int)
    predictions = scores.argmax(axis=-1)
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def intersection_over_union(predicted_mask: ArrayOrTensor, target_mask: ArrayOrTensor) -> float:
    """Mean IoU of binary masks over a batch (segmentation quality, Figure 13)."""
    predicted = _as_array(predicted_mask) > 0.5
    target = _as_array(target_mask) > 0.5
    if predicted.ndim == 2:
        predicted = predicted[None]
        target = target[None]
    axes = (-2, -1)
    intersection = np.logical_and(predicted, target).sum(axis=axes)
    union = np.logical_or(predicted, target).sum(axis=axes)
    iou = np.where(union > 0, intersection / np.maximum(union, 1), 1.0)
    return float(iou.mean())


def pixel_accuracy(predicted_mask: ArrayOrTensor, target_mask: ArrayOrTensor) -> float:
    """Fraction of pixels whose binary label matches."""
    predicted = _as_array(predicted_mask) > 0.5
    target = _as_array(target_mask) > 0.5
    return float((predicted == target).mean())


def prediction_confidence(logits: ArrayOrTensor) -> float:
    """Mean softmax probability assigned to the predicted class.

    The paper's Figure 7 studies this "confidence" as DONN depth grows:
    deeper stacks concentrate more light in the winning detector region,
    which makes predictions robust to detector noise.
    """
    scores = _as_array(logits).astype(float)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probabilities = np.exp(scores)
    probabilities /= probabilities.sum(axis=-1, keepdims=True)
    return float(probabilities.max(axis=-1).mean())
