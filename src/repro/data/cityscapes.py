"""Synthetic street-scene segmentation dataset (CityScapes stand-in).

The paper's segmentation case study converts CityScapes frames to
grey-scale, resizes them to 350x350 and uses *binary* building/background
masks.  This generator composes a sky gradient, a road band and a skyline
of textured building blocks; the ground-truth mask marks building pixels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from repro.data._optional import require_ndimage


def render_street_scene(size: int = 64, rng: np.random.Generator | None = None) -> Tuple[np.ndarray, np.ndarray]:
    """Render one grey-scale scene and its binary building mask."""
    rng = rng or np.random.default_rng(0)
    image = np.zeros((size, size), dtype=float)
    mask = np.zeros((size, size), dtype=float)

    # Sky gradient and road band.
    image += 0.55 * np.linspace(1.0, 0.35, size)[:, None]
    road_top = int(rng.uniform(0.75, 0.85) * size)
    image[road_top:, :] = rng.uniform(0.2, 0.3)

    # Buildings: textured rectangles rising from the road line.
    num_buildings = int(rng.integers(3, 7))
    cursor = 0
    while cursor < size and num_buildings > 0:
        width = int(rng.uniform(0.1, 0.25) * size)
        height = int(rng.uniform(0.25, 0.65) * size)
        gap = int(rng.uniform(0.0, 0.08) * size)
        left = cursor + gap
        right = min(size, left + width)
        if left >= size:
            break
        top = road_top - height
        brightness = rng.uniform(0.45, 0.8)
        image[top:road_top, left:right] = brightness
        # window texture
        image[top:road_top:4, left:right:3] *= 0.6
        mask[top:road_top, left:right] = 1.0
        cursor = right
        num_buildings -= 1

    image = require_ndimage().gaussian_filter(image, sigma=0.6)
    image = image + rng.normal(scale=0.02, size=image.shape)
    return np.clip(image, 0.0, 1.0), mask


def load_segmentation_scenes(
    num_samples: int = 64,
    size: int = 64,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, masks)`` with shapes ``(count, size, size)``."""
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, size, size), dtype=float)
    masks = np.zeros((num_samples, size, size), dtype=float)
    for index in range(num_samples):
        images[index], masks[index] = render_street_scene(size=size, rng=rng)
    return images, masks
