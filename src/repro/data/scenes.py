"""Synthetic RGB scene dataset (Places365 stand-in, Figure 12 / Table 5).

Each class is a "type of environment" with a characteristic colour layout
and structure: the generator composes sky/ground/water gradients, building
blocks, vegetation blobs and light sources with class-specific statistics,
so the three colour channels carry complementary information -- exactly
the property the multi-channel RGB DONN exploits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from repro.data._optional import require_ndimage

SCENE_CLASSES = (
    "forest",
    "beach",
    "city_street",
    "desert",
    "snow_field",
    "night_sky",
)


def _vertical_gradient(size: int, top: float, bottom: float) -> np.ndarray:
    return np.linspace(top, bottom, size)[:, None] * np.ones((1, size))


def _blobs(size: int, count: int, radius: float, rng: np.random.Generator) -> np.ndarray:
    canvas = np.zeros((size, size), dtype=float)
    for _ in range(count):
        cy, cx = rng.uniform(0.2, 0.95, size=2) * size
        y, x = np.ogrid[:size, :size]
        canvas += np.exp(-(((y - cy) ** 2 + (x - cx) ** 2) / (2.0 * (radius * size) ** 2)))
    return np.clip(canvas, 0.0, 1.0)


def _buildings(size: int, count: int, rng: np.random.Generator) -> np.ndarray:
    canvas = np.zeros((size, size), dtype=float)
    for _ in range(count):
        width = int(rng.uniform(0.08, 0.2) * size)
        height = int(rng.uniform(0.3, 0.7) * size)
        left = rng.integers(0, max(1, size - width))
        canvas[size - height :, left : left + width] = rng.uniform(0.5, 1.0)
    return canvas


def render_scene(class_index: int, size: int = 64, rng: np.random.Generator | None = None) -> np.ndarray:
    """Render one RGB scene image of shape ``(3, size, size)`` in [0, 1]."""
    if not 0 <= class_index < len(SCENE_CLASSES):
        raise ValueError(f"class_index must be in [0, {len(SCENE_CLASSES)}), got {class_index}")
    rng = rng or np.random.default_rng(0)
    name = SCENE_CLASSES[class_index]
    red = np.zeros((size, size))
    green = np.zeros((size, size))
    blue = np.zeros((size, size))

    if name == "forest":
        green = 0.4 + 0.5 * _blobs(size, 14, 0.09, rng)
        red = 0.15 + 0.2 * _blobs(size, 6, 0.05, rng)
        blue = 0.1 + 0.3 * _vertical_gradient(size, 1.0, 0.0)
    elif name == "beach":
        blue = 0.5 * _vertical_gradient(size, 1.0, 0.2) + 0.3
        sand = _vertical_gradient(size, 0.0, 1.0)
        red = 0.5 * sand + 0.2
        green = 0.45 * sand + 0.25
    elif name == "city_street":
        structure = _buildings(size, rng.integers(4, 8), rng)
        red = 0.3 * structure + 0.2
        green = 0.3 * structure + 0.2
        blue = 0.35 * structure + 0.25 * _vertical_gradient(size, 1.0, 0.0)
    elif name == "desert":
        dunes = 0.5 + 0.3 * np.sin(np.linspace(0, 6 * np.pi, size))[None, :] * _vertical_gradient(size, 0.0, 1.0)
        red = dunes
        green = 0.75 * dunes
        blue = 0.3 * _vertical_gradient(size, 1.0, 0.2)
    elif name == "snow_field":
        base = 0.8 + 0.1 * rng.normal(size=(size, size))
        red = base
        green = base
        blue = np.clip(base + 0.1, 0, 1)
    elif name == "night_sky":
        stars = (rng.random((size, size)) > 0.985).astype(float)
        blue = 0.25 * _vertical_gradient(size, 1.0, 0.3) + stars
        red = 0.08 + 0.6 * stars
        green = 0.08 + 0.6 * stars

    image = np.stack([red, green, blue])
    jitter = rng.normal(scale=0.03, size=image.shape)
    image = require_ndimage().gaussian_filter(image, sigma=(0, 0.5, 0.5)) + jitter
    return np.clip(image, 0.0, 1.0)


def load_scenes(
    num_train: int = 240,
    num_test: int = 60,
    size: int = 64,
    num_classes: int = len(SCENE_CLASSES),
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a balanced RGB scene dataset ``(count, 3, size, size)``."""
    if not 1 <= num_classes <= len(SCENE_CLASSES):
        raise ValueError(f"num_classes must be in [1, {len(SCENE_CLASSES)}]")
    rng = np.random.default_rng(seed)
    total = num_train + num_test
    labels = np.tile(np.arange(num_classes), total // num_classes + 1)[:total]
    rng.shuffle(labels)
    images = np.stack([render_scene(int(label), size=size, rng=rng) for label in labels])
    return (
        images[:num_train],
        labels[:num_train].astype(int),
        images[num_train:],
        labels[num_train:].astype(int),
    )
