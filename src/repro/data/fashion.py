"""Synthetic garment-silhouette dataset (FashionMNIST stand-in).

Ten classes of filled silhouettes (t-shirt, trouser, pullover, dress,
coat, sandal, shirt, sneaker, bag, ankle boot) built from geometric
primitives with per-sample jitter and texture noise.  Several class pairs
(t-shirt/shirt/pullover/coat, sneaker/ankle-boot) intentionally share
silhouette structure so the dataset is harder than the digits, mirroring
the MNIST vs. FashionMNIST accuracy gap in the paper (0.98 vs 0.89).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np
from repro.data._optional import require_ndimage

GARMENT_CLASSES = (
    "t-shirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
)


def _blank(size: int) -> np.ndarray:
    return np.zeros((size, size), dtype=float)


def _torso(canvas: np.ndarray, top: float, bottom: float, half_width: float, sleeves: float) -> None:
    size = canvas.shape[0]
    rows = slice(int(top * size), int(bottom * size))
    centre = size // 2
    width = int(half_width * size)
    canvas[rows, centre - width : centre + width] = 1.0
    if sleeves > 0:
        sleeve_rows = slice(int(top * size), int((top + 0.18) * size))
        sleeve_width = int(sleeves * size)
        canvas[sleeve_rows, centre - width - sleeve_width : centre + width + sleeve_width] = 1.0


def _tshirt(size: int) -> np.ndarray:
    canvas = _blank(size)
    _torso(canvas, 0.2, 0.75, 0.22, 0.12)
    return canvas


def _trouser(size: int) -> np.ndarray:
    canvas = _blank(size)
    centre = size // 2
    leg_width = int(0.12 * size)
    gap = int(0.05 * size)
    canvas[int(0.15 * size) : int(0.9 * size), centre - gap - leg_width : centre - gap] = 1.0
    canvas[int(0.15 * size) : int(0.9 * size), centre + gap : centre + gap + leg_width] = 1.0
    canvas[int(0.15 * size) : int(0.3 * size), centre - gap - leg_width : centre + gap + leg_width] = 1.0
    return canvas


def _pullover(size: int) -> np.ndarray:
    canvas = _blank(size)
    _torso(canvas, 0.18, 0.8, 0.24, 0.2)
    return canvas


def _dress(size: int) -> np.ndarray:
    canvas = _blank(size)
    centre = size // 2
    for row in range(int(0.15 * size), int(0.9 * size)):
        progress = (row - 0.15 * size) / (0.75 * size)
        width = int((0.1 + 0.2 * progress) * size)
        canvas[row, centre - width : centre + width] = 1.0
    return canvas


def _coat(size: int) -> np.ndarray:
    canvas = _blank(size)
    _torso(canvas, 0.15, 0.9, 0.26, 0.18)
    centre = size // 2
    canvas[int(0.15 * size) : int(0.9 * size), centre - 1 : centre + 1] = 0.3  # opening
    return canvas


def _sandal(size: int) -> np.ndarray:
    canvas = _blank(size)
    rows = slice(int(0.6 * size), int(0.72 * size))
    canvas[rows, int(0.15 * size) : int(0.85 * size)] = 1.0
    for col in range(int(0.2 * size), int(0.8 * size), max(2, size // 9)):
        canvas[int(0.45 * size) : int(0.6 * size), col : col + 2] = 1.0
    return canvas


def _shirt(size: int) -> np.ndarray:
    canvas = _tshirt(size)
    centre = size // 2
    canvas[int(0.2 * size) : int(0.75 * size), centre - 1 : centre + 1] = 0.4  # button line
    return canvas


def _sneaker(size: int) -> np.ndarray:
    canvas = _blank(size)
    canvas[int(0.55 * size) : int(0.75 * size), int(0.1 * size) : int(0.85 * size)] = 1.0
    canvas[int(0.45 * size) : int(0.55 * size), int(0.45 * size) : int(0.85 * size)] = 1.0
    return canvas


def _bag(size: int) -> np.ndarray:
    canvas = _blank(size)
    canvas[int(0.4 * size) : int(0.85 * size), int(0.2 * size) : int(0.8 * size)] = 1.0
    # handle
    canvas[int(0.25 * size) : int(0.4 * size), int(0.35 * size) : int(0.4 * size)] = 1.0
    canvas[int(0.25 * size) : int(0.4 * size), int(0.6 * size) : int(0.65 * size)] = 1.0
    canvas[int(0.25 * size) : int(0.28 * size), int(0.35 * size) : int(0.65 * size)] = 1.0
    return canvas


def _ankle_boot(size: int) -> np.ndarray:
    canvas = _blank(size)
    canvas[int(0.55 * size) : int(0.78 * size), int(0.1 * size) : int(0.85 * size)] = 1.0
    canvas[int(0.25 * size) : int(0.55 * size), int(0.55 * size) : int(0.85 * size)] = 1.0
    return canvas


_RENDERERS: Dict[int, Callable[[int], np.ndarray]] = {
    0: _tshirt,
    1: _trouser,
    2: _pullover,
    3: _dress,
    4: _coat,
    5: _sandal,
    6: _shirt,
    7: _sneaker,
    8: _bag,
    9: _ankle_boot,
}


def render_garment(class_index: int, size: int = 28, rng: np.random.Generator | None = None) -> np.ndarray:
    """Render one garment silhouette, optionally with per-sample jitter."""
    if class_index not in _RENDERERS:
        raise ValueError(f"class_index must be 0-9, got {class_index}")
    canvas = _RENDERERS[class_index](size)
    if rng is None:
        return canvas
    canvas = require_ndimage().gaussian_filter(canvas, sigma=rng.uniform(0.3, 0.9))
    canvas = require_ndimage().shift(canvas, rng.uniform(-1.5, 1.5, size=2), order=1, mode="constant")
    texture = rng.normal(scale=0.08, size=canvas.shape)
    canvas = canvas * (1.0 + texture) + rng.normal(scale=0.04, size=canvas.shape)
    maximum = canvas.max()
    if maximum > 0:
        canvas = canvas / maximum
    return np.clip(canvas, 0.0, 1.0)


def load_fashion(
    num_train: int = 512,
    num_test: int = 128,
    size: int = 28,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a balanced synthetic garment dataset (images in [0, 1])."""
    rng = np.random.default_rng(seed)
    total = num_train + num_test
    labels = np.tile(np.arange(10), total // 10 + 1)[:total]
    rng.shuffle(labels)
    images = np.stack([render_garment(int(label), size=size, rng=rng) for label in labels])
    return (
        images[:num_train],
        labels[:num_train].astype(int),
        images[num_train:],
        labels[num_train:].astype(int),
    )
