"""Synthetic handwritten-digit stand-in (MNIST replacement).

Each digit class is rendered from a seven-segment-style stroke skeleton on
a 28x28 canvas, then randomly perturbed per sample: sub-pixel translation,
stroke-thickness variation, mild shear and additive noise.  The classes
are visually distinct but overlap enough that a linear model does not
reach 100%, which preserves the relative-accuracy structure the paper's
experiments rely on (deeper DONNs and regularised training help).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from repro.data._optional import require_ndimage

# Seven-segment layout:   _       Segments: 0 top, 1 top-left, 2 top-right,
#                        |_|                 3 middle, 4 bottom-left,
#                        |_|                 5 bottom-right, 6 bottom
_SEGMENTS: Dict[int, Tuple[int, ...]] = {
    0: (0, 1, 2, 4, 5, 6),
    1: (2, 5),
    2: (0, 2, 3, 4, 6),
    3: (0, 2, 3, 5, 6),
    4: (1, 2, 3, 5),
    5: (0, 1, 3, 5, 6),
    6: (0, 1, 3, 4, 5, 6),
    7: (0, 2, 5),
    8: (0, 1, 2, 3, 4, 5, 6),
    9: (0, 1, 2, 3, 5, 6),
}


def _segment_coordinates(canvas: int) -> Dict[int, Tuple[slice, slice]]:
    """Pixel spans of the seven segments on a square canvas."""
    margin = canvas // 6
    left = margin
    right = canvas - margin
    top = margin
    bottom = canvas - margin
    middle = canvas // 2
    thickness = max(2, canvas // 12)
    def horizontal(row):
        return (slice(row, row + thickness), slice(left, right))

    def vertical(col, row0, row1):
        return (slice(row0, row1), slice(col, col + thickness))

    return {
        0: horizontal(top),
        1: vertical(left, top, middle),
        2: vertical(right - thickness, top, middle),
        3: horizontal(middle - thickness // 2),
        4: vertical(left, middle, bottom),
        5: vertical(right - thickness, middle, bottom),
        6: horizontal(bottom - thickness),
    }


def render_digit(digit: int, size: int = 28, rng: np.random.Generator | None = None) -> np.ndarray:
    """Render one (optionally randomly perturbed) digit image in [0, 1]."""
    if digit not in _SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    canvas = np.zeros((size, size), dtype=float)
    for segment in _SEGMENTS[digit]:
        rows, cols = _segment_coordinates(size)[segment]
        canvas[rows, cols] = 1.0
    if rng is None:
        return canvas
    # Per-sample perturbations: blur (stroke thickness), shift, shear, noise.
    sigma = rng.uniform(0.4, 1.1)
    canvas = require_ndimage().gaussian_filter(canvas, sigma=sigma)
    shift = rng.uniform(-2.0, 2.0, size=2)
    canvas = require_ndimage().shift(canvas, shift, order=1, mode="constant")
    shear = rng.uniform(-0.15, 0.15)
    matrix = np.array([[1.0, shear], [0.0, 1.0]])
    offset = np.array([-shear * size / 2.0, 0.0])
    canvas = require_ndimage().affine_transform(canvas, matrix, offset=offset, order=1, mode="constant")
    canvas = canvas + rng.normal(scale=0.03, size=canvas.shape)
    maximum = canvas.max()
    if maximum > 0:
        canvas = canvas / maximum
    return np.clip(canvas, 0.0, 1.0)


def load_digits(
    num_train: int = 512,
    num_test: int = 128,
    size: int = 28,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a balanced synthetic digit dataset.

    Returns ``(train_images, train_labels, test_images, test_labels)`` with
    images of shape ``(count, size, size)`` in [0, 1].
    """
    rng = np.random.default_rng(seed)
    total = num_train + num_test
    labels = np.tile(np.arange(10), total // 10 + 1)[:total]
    rng.shuffle(labels)
    images = np.stack([render_digit(int(label), size=size, rng=rng) for label in labels])
    return (
        images[:num_train],
        labels[:num_train].astype(int),
        images[num_train:],
        labels[num_train:].astype(int),
    )
