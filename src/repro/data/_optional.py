"""Shared optional-scipy guard for the synthetic dataset generators.

The core package (models, optics, autograd, inference engine) runs on
numpy alone; only the dataset synthesis below ``repro.data`` leans on
``scipy.ndimage`` for blurs, shifts and affine warps.  Importing those
modules therefore must not require scipy -- the requirement surfaces,
with an actionable message, only when a generator is actually called.
"""

from __future__ import annotations

try:
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover - exercised in scipy-free installs
    _ndimage = None


def require_ndimage():
    """Return ``scipy.ndimage`` or raise a clear install hint."""
    if _ndimage is None:
        raise ImportError(
            "scipy is required to generate this synthetic dataset "
            "(install with `pip install scipy` or the `fast` extra)"
        )
    return _ndimage
