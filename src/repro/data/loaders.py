"""Dataset split and batching helpers (``lr.utils`` data loaders)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class DataSplit:
    """A train/test split of (inputs, labels) arrays."""

    train_inputs: np.ndarray
    train_labels: np.ndarray
    test_inputs: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(np.max(self.train_labels)) + 1

    def __post_init__(self) -> None:
        if len(self.train_inputs) != len(self.train_labels):
            raise ValueError("train inputs and labels disagree in length")
        if len(self.test_inputs) != len(self.test_labels):
            raise ValueError("test inputs and labels disagree in length")


def train_test_split(
    inputs: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> DataSplit:
    """Shuffle and split a dataset into train/test portions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(inputs) != len(labels):
        raise ValueError("inputs and labels disagree in length")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(inputs))
    inputs = np.asarray(inputs)[order]
    labels = np.asarray(labels)[order]
    cut = int(round(len(inputs) * (1.0 - test_fraction)))
    cut = min(max(cut, 1), len(inputs) - 1)
    return DataSplit(inputs[:cut], labels[:cut], inputs[cut:], labels[cut:])


def batch_iterator(
    inputs: np.ndarray,
    labels: Optional[np.ndarray] = None,
    batch_size: int = 32,
    shuffle: bool = True,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield mini-batches, optionally shuffled, as (inputs, labels) pairs."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    count = len(inputs)
    order = np.random.default_rng(seed).permutation(count) if shuffle else np.arange(count)
    for start in range(0, count, batch_size):
        chosen = order[start : start + batch_size]
        if labels is None:
            yield inputs[chosen], None
        else:
            yield inputs[chosen], labels[chosen]
