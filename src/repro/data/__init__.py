"""Synthetic, procedurally generated datasets.

The paper evaluates on MNIST, FashionMNIST, Places365 and CityScapes.
None of those can be downloaded in this offline environment, so this
package generates deterministic synthetic stand-ins with the same
interface and the same *role* in each experiment:

* :func:`~repro.data.digits.load_digits` -- ten classes of stroke-based
  digit glyphs (MNIST stand-in).
* :func:`~repro.data.fashion.load_fashion` -- ten classes of garment-like
  silhouettes with texture (FashionMNIST stand-in; noticeably harder than
  the digits, as in the paper).
* :func:`~repro.data.scenes.load_scenes` -- RGB scene-type composites
  (Places365 stand-in for the multi-channel classifier).
* :func:`~repro.data.cityscapes.load_segmentation_scenes` -- grey-scale
  street-like scenes with building/background masks (CityScapes stand-in).

All generators take a seed and return numpy arrays in [0, 1]; they are
fully deterministic for a given (seed, size, count).
"""

from repro.data.digits import load_digits, render_digit
from repro.data.fashion import load_fashion, render_garment
from repro.data.scenes import load_scenes, SCENE_CLASSES
from repro.data.cityscapes import load_segmentation_scenes
from repro.data.loaders import DataSplit, train_test_split, batch_iterator

__all__ = [
    "load_digits",
    "render_digit",
    "load_fashion",
    "render_garment",
    "load_scenes",
    "SCENE_CLASSES",
    "load_segmentation_scenes",
    "DataSplit",
    "train_test_split",
    "batch_iterator",
]
