"""Multi-channel RGB DONN for colour image classification (Figure 12).

The input RGB image is split into three grey-scale channel images; a beam
splitter and mirrors route the laser into three parallel optical channels,
each a full diffractive stack; the three output beams are projected onto
one shared detector where their intensities add.  All channels are trained
against the same shared loss.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Module, ModuleList, Tensor
from repro.layers.detector import Detector
from repro.layers.diffractive import DiffractiveLayer
from repro.layers.encoding import data_to_cplex
from repro.layers.nonlinearity import make_nonlinearity
from repro.models.config import DONNConfig
from repro.optics.propagation import make_propagator


class MultiChannelDONN(Module):
    """Three parallel diffractive stacks whose detector intensities sum.

    Parameters
    ----------
    config:
        Per-channel architecture (the paper uses the Section 5.1 system
        with 5 layers per channel).
    num_channels:
        Number of optical channels (3 for R/G/B).
    nonlinearity:
        Optional all-optical activation inserted after every diffractive
        layer in every channel (instance or ``"saturable"`` / ``"kerr"``).
    """

    def __init__(
        self,
        config: DONNConfig,
        num_channels: int = 3,
        detector: Optional[Detector] = None,
        nonlinearity=None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.config = config
        self.num_channels = num_channels
        self.nonlinearity = make_nonlinearity(nonlinearity) if nonlinearity is not None else None
        rng = rng or np.random.default_rng(config.seed)
        grid = config.grid

        channels: List[ModuleList] = []
        for _ in range(num_channels):
            layers = ModuleList(
                [
                    DiffractiveLayer(
                        grid=grid,
                        wavelength=config.wavelength,
                        distance=config.distance,
                        approx=config.approx,
                        amplitude_factor=config.amplitude_factor,
                        pad_factor=config.pad_factor,
                        rng=rng,
                    )
                    for _ in range(config.num_layers)
                ]
            )
            channels.append(layers)
        self.channels = ModuleList(channels)
        self.final_propagator = make_propagator(
            config.approx,
            grid=grid,
            wavelength=config.wavelength,
            distance=config.distance,
            pad_factor=config.pad_factor,
        )
        self.detector = detector or Detector(grid, num_classes=config.num_classes, det_size=config.det_size)
        # The beam splitter halves the power per channel twice (split + merge);
        # channel fields are scaled so total collected power is comparable to
        # a single-channel system.
        self._channel_scale = 1.0 / np.sqrt(num_channels)

    def encode_channel(self, channel_images) -> Tensor:
        return data_to_cplex(
            channel_images, grid=self.config.grid, amplitude_factor=self.config.amplitude_factor
        )

    def propagate_channel(self, index: int, field: Tensor) -> Tensor:
        for layer in self.channels[index]:
            field = layer(field)
            if self.nonlinearity is not None:
                field = self.nonlinearity(field)
        return self.final_propagator(field)

    def forward(self, rgb_images) -> Tensor:
        """RGB batch ``(B, C, H, W)`` -> per-class collected intensities.

        Channel intensities add incoherently at the shared detector (the
        three beams originate from different optical paths, so their
        interference averages out over the camera integration time).
        """
        rgb = rgb_images.data if isinstance(rgb_images, Tensor) else np.asarray(rgb_images, dtype=float)
        if rgb.ndim == 3:
            rgb = rgb[None]
        if rgb.shape[1] != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {rgb.shape[1]}")
        logits: Optional[Tensor] = None
        for index in range(self.num_channels):
            field = self.encode_channel(rgb[:, index]) * self._channel_scale
            field = self.propagate_channel(index, field)
            channel_logits = self.detector(field)
            logits = channel_logits if logits is None else logits + channel_logits
        return logits

    def predict(self, rgb_images) -> np.ndarray:
        return np.asarray(self.forward(rgb_images).data.real).argmax(axis=-1)

    def export_session(
        self, batch_size: int = 64, backend: str = "auto", workers: Optional[int] = None, dtype="complex128"
    ):
        """Deprecated: use :func:`repro.engine.compile` instead."""
        import warnings

        from repro.engine import compile as engine_compile

        warnings.warn(
            "model.export_session(...) is deprecated; use repro.engine.compile(model, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return engine_compile(self, batch_size=batch_size, backend=backend, workers=workers, dtype=dtype)

    def phase_patterns(self) -> List[List[np.ndarray]]:
        """Per-channel list of per-layer trained phase patterns."""
        return [[layer.phase_values() for layer in channel] for channel in self.channels]
