"""The DONN hyper-parameter record shared across the framework.

``DONNConfig`` is the single place where the architectural parameters that
the paper's DSE engine explores (Section 4) are written down: system size,
diffraction unit size, diffraction distance, wavelength, depth, device
precision and the training regularization factor.  The DSL, the DSE
engine, the deployment backend and the benchmarks all exchange this
object.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict, replace
from typing import Dict, Optional

from repro.optics.grid import SpatialGrid
from repro.optics.laser import VISIBLE_GREEN_532NM


@dataclass(frozen=True)
class DONNConfig:
    """Architectural and training hyper-parameters of a DONN system.

    Defaults follow the paper's prototype (Section 5.1): 532 nm laser,
    200x200 system, 36 um diffraction units, 0.3 m diffraction distance,
    although most tests and benches use scaled-down sizes.
    """

    sys_size: int = 200
    pixel_size: float = 36e-6
    distance: float = 0.3
    wavelength: float = VISIBLE_GREEN_532NM
    num_layers: int = 5
    num_classes: int = 10
    approx: str = "rayleigh_sommerfeld"
    amplitude_factor: float = 1.0
    det_size: Optional[int] = None
    device_levels: int = 256
    codesign_temperature: float = 1.0
    pad_factor: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sys_size <= 0:
            raise ValueError("sys_size must be positive")
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.distance <= 0:
            raise ValueError("distance must be positive")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.pixel_size <= 0:
            raise ValueError("pixel_size must be positive")
        if self.codesign_temperature <= 0:
            raise ValueError("codesign_temperature must be positive")

    @property
    def grid(self) -> SpatialGrid:
        return SpatialGrid(size=self.sys_size, pixel_size=self.pixel_size)

    @property
    def unit_size_in_wavelengths(self) -> float:
        """Diffraction-unit size expressed in wavelengths (the DSE axis of Fig. 5)."""
        return self.pixel_size / self.wavelength

    def with_updates(self, **kwargs) -> "DONNConfig":
        """Return a copy with some fields replaced (used by DSE sweeps)."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, values: Dict) -> "DONNConfig":
        return cls(**values)
