"""DONN system containers (``lr.models``).

* :class:`~repro.models.donn.DONN` -- the standard sequentially stacked
  diffractive classifier of Figure 2.
* :class:`~repro.models.multichannel.MultiChannelDONN` -- the RGB
  three-channel architecture of Figure 12.
* :class:`~repro.models.segmentation.SegmentationDONN` -- the all-optical
  image-segmentation architecture of Figure 13 (optical skip connection +
  training-time layer norm).
* :class:`~repro.models.config.DONNConfig` -- the hyper-parameter record
  shared by the DSL, the DSE engine and the deployment backend.
"""

from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.models.multichannel import MultiChannelDONN
from repro.models.segmentation import SegmentationDONN

__all__ = ["DONNConfig", "DONN", "MultiChannelDONN", "SegmentationDONN"]
