"""The sequentially stacked diffractive optical neural network (Figure 2a).

``DONN`` composes an input encoder, ``num_layers`` diffractive layers, a
final free-space hop to the detector plane, and a :class:`Detector` that
integrates intensity in per-class regions.  Construction mirrors the
paper's DSL: either pass a :class:`DONNConfig` or use the lower-level
constructor with explicit layer modules.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Module, ModuleList, Tensor
from repro.codesign.device import DeviceProfile
from repro.layers.detector import Detector
from repro.layers.diffractive import CodesignDiffractiveLayer, DiffractiveLayer
from repro.layers.encoding import data_to_cplex
from repro.layers.nonlinearity import make_nonlinearity
from repro.models.config import DONNConfig
from repro.optics.propagation import make_propagator


class DONN(Module):
    """A stack of diffractive layers followed by a detector plane.

    Parameters
    ----------
    config:
        Architectural hyper-parameters.
    device_profile:
        If given, layers are built as :class:`CodesignDiffractiveLayer`
        trained over this device's discrete levels (the ``diffractlayer``
        path); otherwise continuous-phase raw layers are used
        (``diffractlayer_raw``).
    detector:
        Custom detector; by default ``config.num_classes`` regions are laid
        out automatically.
    nonlinearity:
        Optional all-optical activation inserted after every diffractive
        layer: a :class:`~repro.layers.nonlinearity.NonlinearLayer`
        instance or a name (``"saturable"`` / ``"kerr"``).  Supported by
        both the autograd path and the compiled inference engine.
    """

    def __init__(
        self,
        config: DONNConfig,
        device_profile: Optional[DeviceProfile] = None,
        detector: Optional[Detector] = None,
        nonlinearity=None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.config = config
        self.device_profile = device_profile
        self.nonlinearity = make_nonlinearity(nonlinearity) if nonlinearity is not None else None
        rng = rng or np.random.default_rng(config.seed)
        grid = config.grid

        layers: List[Module] = []
        for _ in range(config.num_layers):
            if device_profile is None:
                layers.append(
                    DiffractiveLayer(
                        grid=grid,
                        wavelength=config.wavelength,
                        distance=config.distance,
                        approx=config.approx,
                        amplitude_factor=config.amplitude_factor,
                        pad_factor=config.pad_factor,
                        rng=rng,
                    )
                )
            else:
                layers.append(
                    CodesignDiffractiveLayer(
                        grid=grid,
                        wavelength=config.wavelength,
                        distance=config.distance,
                        device_profile=device_profile,
                        approx=config.approx,
                        amplitude_factor=config.amplitude_factor,
                        temperature=config.codesign_temperature,
                        pad_factor=config.pad_factor,
                        rng=rng,
                    )
                )
        self.diffractive_layers = ModuleList(layers)
        # Final free-space hop from the last layer to the detector plane.
        self.final_propagator = make_propagator(
            config.approx,
            grid=grid,
            wavelength=config.wavelength,
            distance=config.distance,
            pad_factor=config.pad_factor,
        )
        self.detector = detector or Detector(grid, num_classes=config.num_classes, det_size=config.det_size)

    # ------------------------------------------------------------------ #
    # Forward paths
    # ------------------------------------------------------------------ #
    def encode(self, images) -> Tensor:
        """Encode a batch of intensity images as input wavefields."""
        return data_to_cplex(images, grid=self.config.grid, amplitude_factor=self.config.amplitude_factor)

    def propagate(self, field: Tensor) -> Tensor:
        """Run the optical stack: all diffractive layers + final hop."""
        for layer in self.diffractive_layers:
            field = layer(field)
            if self.nonlinearity is not None:
                field = self.nonlinearity(field)
        return self.final_propagator(field)

    def forward(self, images) -> Tensor:
        """Images -> per-class collected intensities (the DONN "logits")."""
        field = images if isinstance(images, Tensor) and images.is_complex else self.encode(images)
        field = self.propagate(field)
        return self.detector(field)

    def detector_pattern(self, images) -> Tensor:
        """Intensity image on the detector plane (Figure 6's read-out)."""
        field = images if isinstance(images, Tensor) and images.is_complex else self.encode(images)
        field = self.propagate(field)
        return self.detector.intensity_pattern(field)

    def intermediate_fields(self, images) -> List[Tensor]:
        """Complex field after each diffractive layer (for visualisation)."""
        field = images if isinstance(images, Tensor) and images.is_complex else self.encode(images)
        fields = []
        for layer in self.diffractive_layers:
            field = layer(field)
            if self.nonlinearity is not None:
                field = self.nonlinearity(field)
            fields.append(field)
        fields.append(self.final_propagator(field))
        return fields

    def predict(self, images) -> np.ndarray:
        """Arg-max class prediction for a batch of images."""
        logits = self.forward(images)
        return np.asarray(logits.data.real).argmax(axis=-1)

    def export_session(
        self, batch_size: int = 64, backend: str = "auto", workers: Optional[int] = None, dtype="complex128"
    ):
        """Deprecated: use :func:`repro.engine.compile` instead.

        Compiles this model into an autograd-free
        :class:`~repro.engine.InferenceSession` via the same pipeline as
        ``repro.engine.compile(model, ...)``.
        """
        import warnings

        from repro.engine import compile as engine_compile

        warnings.warn(
            "model.export_session(...) is deprecated; use repro.engine.compile(model, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return engine_compile(self, batch_size=batch_size, backend=backend, workers=workers, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Introspection used by deployment & visualisation
    # ------------------------------------------------------------------ #
    def phase_patterns(self) -> List[np.ndarray]:
        """Trained phase pattern of each layer (``lr.layers.view()``)."""
        return [layer.phase_values() for layer in self.diffractive_layers]

    @property
    def num_layers(self) -> int:
        return len(self.diffractive_layers)
