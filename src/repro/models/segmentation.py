"""All-optical image segmentation DONN (Figure 13).

Unlike the classifier, the *entire* detector plane is the output: the
intensity image captured by the camera is the predicted segmentation map.
Two architectural additions from Section 5.6.2:

* an **optical skip connection** around the inner diffractive layers,
  which re-injects a less-diffracted copy of the input so fine detail
  survives; and
* **layer normalisation** of the output intensity *during training only*,
  which stabilises gradients (the physical system outputs raw intensity).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Module, ModuleList, Tensor
from repro.layers.diffractive import DiffractiveLayer
from repro.layers.encoding import data_to_cplex
from repro.layers.nonlinearity import make_nonlinearity
from repro.layers.normalization import PlaneNorm
from repro.layers.skip import OpticalSkipConnection
from repro.models.config import DONNConfig
from repro.optics.propagation import make_propagator


class SegmentationDONN(Module):
    """Image-to-image DONN with optical skip connection and plane norm.

    Parameters
    ----------
    config:
        Architecture; ``num_layers`` counts all diffractive layers (the
        paper uses 5: one before, three inside the skip, one after).
    use_skip:
        Disable to obtain the paper's baseline architecture.
    use_layer_norm:
        Disable to obtain the paper's baseline training method.
    nonlinearity:
        Optional all-optical activation inserted after every diffractive
        layer (instance or ``"saturable"`` / ``"kerr"``).  Inside the
        optical skip connection only the processing arm is nonlinear; the
        bypass arm stays a linear copy.
    """

    def __init__(
        self,
        config: DONNConfig,
        use_skip: bool = True,
        use_layer_norm: bool = True,
        skip_weight: float = 0.5,
        nonlinearity=None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if config.num_layers < 3:
            raise ValueError("segmentation DONN needs at least 3 diffractive layers")
        self.config = config
        self.use_skip = use_skip
        self.use_layer_norm = use_layer_norm
        self.nonlinearity = make_nonlinearity(nonlinearity) if nonlinearity is not None else None
        rng = rng or np.random.default_rng(config.seed)
        grid = config.grid

        def new_layer() -> DiffractiveLayer:
            return DiffractiveLayer(
                grid=grid,
                wavelength=config.wavelength,
                distance=config.distance,
                approx=config.approx,
                amplitude_factor=config.amplitude_factor,
                pad_factor=config.pad_factor,
                rng=rng,
            )

        inner_count = config.num_layers - 2
        self.entry_layer = new_layer()
        inner_layers = [new_layer() for _ in range(inner_count)]
        if use_skip:
            self.inner = OpticalSkipConnection(
                inner_layers, skip_weight=skip_weight, nonlinearity=self.nonlinearity
            )
        else:
            self.inner = ModuleList(inner_layers)
        self.exit_layer = new_layer()
        self.final_propagator = make_propagator(
            config.approx,
            grid=grid,
            wavelength=config.wavelength,
            distance=config.distance,
            pad_factor=config.pad_factor,
        )
        self.plane_norm = PlaneNorm(training_only=True)

    def encode(self, images) -> Tensor:
        return data_to_cplex(images, grid=self.config.grid, amplitude_factor=self.config.amplitude_factor)

    def propagate(self, field: Tensor) -> Tensor:
        field = self.entry_layer(field)
        if self.nonlinearity is not None:
            field = self.nonlinearity(field)
        if self.use_skip:
            field = self.inner(field)
        else:
            for layer in self.inner:
                field = layer(field)
                if self.nonlinearity is not None:
                    field = self.nonlinearity(field)
        field = self.exit_layer(field)
        if self.nonlinearity is not None:
            field = self.nonlinearity(field)
        return self.final_propagator(field)

    def forward(self, images) -> Tensor:
        """Images -> output intensity map ``(B, N, N)``.

        In training mode the map is layer-normalised (if enabled); in eval
        mode the raw intensity is returned, matching the physical system.
        """
        field = images if isinstance(images, Tensor) and images.is_complex else self.encode(images)
        field = self.propagate(field)
        pattern = field.abs2()
        if self.use_layer_norm:
            pattern = self.plane_norm(pattern)
        return pattern

    def predict_mask(self, images, threshold: Optional[float] = None) -> np.ndarray:
        """Binary segmentation mask from the output intensity map.

        With no explicit threshold the per-image median intensity is used,
        which is how the binary building/background masks are extracted.
        """
        was_training = self.training
        self.eval()
        pattern = np.asarray(self.forward(images).data.real)
        if was_training:
            self.train()
        if threshold is not None:
            return (pattern >= threshold).astype(float)
        medians = np.median(pattern, axis=(-2, -1), keepdims=True)
        return (pattern >= medians).astype(float)

    def export_session(
        self, batch_size: int = 64, backend: str = "auto", workers: Optional[int] = None, dtype="complex128"
    ):
        """Deprecated: use :func:`repro.engine.compile` instead."""
        import warnings

        from repro.engine import compile as engine_compile

        warnings.warn(
            "model.export_session(...) is deprecated; use repro.engine.compile(model, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return engine_compile(self, batch_size=batch_size, backend=backend, workers=workers, dtype=dtype)

    def phase_patterns(self) -> List[np.ndarray]:
        patterns = [self.entry_layer.phase_values()]
        inner_layers = self.inner.body if self.use_skip else self.inner
        patterns.extend(layer.phase_values() for layer in inner_layers)
        patterns.append(self.exit_layer.phase_values())
        return patterns
