"""FFT backend dispatch for the inference engine.

The engine's hot loop is batched 2-D FFTs over the trailing axes.  Two
backends are supported:

* **scipy** -- ``scipy.fft`` (pocketfft with a C++ kernel set that is
  measurably faster than numpy's, plus a ``workers=N`` thread pool that
  parallelises over the batch axis).  Selected automatically when scipy is
  importable.
* **numpy** -- ``np.fft``, always available; the fallback when scipy is
  absent so the engine has no hard dependency beyond numpy.

Both backends use numpy's "backward" normalisation so engine outputs match
the autograd kernels (:func:`repro.autograd.ops.fft2`) bit-for-bit in
practice and to ``1e-10`` by contract.

Both backends also preserve ``complex64`` inputs for the engine's
reduced-precision mode: ``scipy.fft`` computes single-precision
transforms natively, while ``np.fft`` always promotes to ``complex128``,
so the numpy backend casts its results back to the input dtype.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_AXES = (-2, -1)


def _match_input_precision(out: np.ndarray, field: np.ndarray) -> np.ndarray:
    """Cast an np.fft result back to complex64 when the input was complex64."""
    if field.dtype == np.complex64:
        return out.astype(np.complex64, copy=False)
    return out


def _import_scipy_fft():
    """Return ``scipy.fft`` or ``None``; patchable seam for fallback tests."""
    try:
        import scipy.fft as scipy_fft
    except ImportError:  # pragma: no cover - exercised via monkeypatch
        return None
    return scipy_fft


class NumpyFFTBackend:
    """Plain ``np.fft`` transforms over the trailing two axes."""

    name = "numpy"

    def __init__(self, workers: Optional[int] = None):
        # numpy's pocketfft is single threaded; ``workers`` is accepted for
        # interface compatibility and ignored.
        self.workers = workers

    def fft2(self, field: np.ndarray) -> np.ndarray:
        return _match_input_precision(np.fft.fft2(field, axes=_AXES), field)

    def ifft2(self, spectrum: np.ndarray) -> np.ndarray:
        return _match_input_precision(np.fft.ifft2(spectrum, axes=_AXES), spectrum)


class ScipyFFTBackend:
    """``scipy.fft`` transforms with optional multi-threaded batching.

    ``overwrite_x=True`` is safe here because the engine only ever hands
    these methods freshly allocated intermediates.
    """

    name = "scipy"

    def __init__(self, module, workers: Optional[int] = None):
        self._fft = module
        self.workers = int(workers) if workers else None

    def fft2(self, field: np.ndarray) -> np.ndarray:
        return self._fft.fft2(field, axes=_AXES, workers=self.workers, overwrite_x=True)

    def ifft2(self, spectrum: np.ndarray) -> np.ndarray:
        return self._fft.ifft2(spectrum, axes=_AXES, workers=self.workers, overwrite_x=True)


def available_backends() -> tuple:
    """Names of the FFT backends importable in this environment."""
    names = ["numpy"]
    if _import_scipy_fft() is not None:
        names.insert(0, "scipy")
    return tuple(names)


def get_fft_backend(name: str = "auto", workers: Optional[int] = None):
    """Resolve a backend by name.

    Parameters
    ----------
    name:
        ``"auto"`` (scipy when installed, else numpy), ``"scipy"`` or
        ``"numpy"``.
    workers:
        Thread count forwarded to ``scipy.fft``; ignored by numpy.
    """
    key = name.lower()
    if key == "auto":
        module = _import_scipy_fft()
        if module is not None:
            return ScipyFFTBackend(module, workers=workers)
        return NumpyFFTBackend(workers=workers)
    if key == "scipy":
        module = _import_scipy_fft()
        if module is None:
            raise RuntimeError("scipy backend requested but scipy is not installed")
        return ScipyFFTBackend(module, workers=workers)
    if key == "numpy":
        return NumpyFFTBackend(workers=workers)
    raise ValueError(f"unknown FFT backend {name!r}; choose from 'auto', 'scipy', 'numpy'")
