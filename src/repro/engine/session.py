"""Autograd-free batched inference for trained DONN systems.

Training needs the tape-based :class:`~repro.autograd.tensor.Tensor`
machinery; serving does not.  :class:`InferenceSession` compiles a trained
model once into a flat numerical program:

* every propagator's diffraction transfer function (and the Fraunhofer
  prefactor) is captured as a plain complex ndarray;
* every layer's phase modulation is snapshotted in eval mode (continuous
  phases for ``DiffractiveLayer``, the deterministic softmax expectation
  over device levels for ``CodesignDiffractiveLayer``);
* every :class:`~repro.layers.nonlinearity.NonlinearLayer` is baked in as
  its point-wise ndarray map (``apply_numpy``);
* the detector's region masks are flattened into one read-out matrix.

The forward pass is then raw batched FFTs and in-place elementwise
products -- no ``Tensor`` wrapping, no graph bookkeeping -- streamed over
arbitrarily large inputs in configurable batch chunks.  At the default
``dtype="complex128"`` outputs match the autograd eval path to
``atol=1e-10``; the opt-in ``dtype="complex64"`` mode halves the memory
footprint of every cached kernel and intermediate, trading exactness for
a documented accuracy budget of :data:`COMPLEX64_LOGIT_ATOL` on detector
logits (see ``tests/test_engine.py``).
"""

from __future__ import annotations

import pickle
from typing import Callable, List, Optional

import numpy as np

from repro.autograd import no_grad
from repro.engine.backends import get_fft_backend
from repro.layers.encoding import data_to_cplex
from repro.layers.nonlinearity import NonlinearLayer
from repro.models.donn import DONN
from repro.models.multichannel import MultiChannelDONN
from repro.models.segmentation import SegmentationDONN
from repro.optics.propagation import FraunhoferPropagator, Propagator

FieldFn = Callable[[np.ndarray], np.ndarray]

#: Accuracy budget of the reduced-precision engine: with
#: ``dtype="complex64"`` the detector logits (and segmentation intensity
#: maps) of unit-scale inputs agree with the ``complex128`` engine within
#: this absolute tolerance across all three model families.
COMPLEX64_LOGIT_ATOL = 1e-4


def _resolve_complex_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.complex64), np.dtype(np.complex128)):
        raise ValueError(f"dtype must be complex64 or complex128, got {dtype!r}")
    return resolved


def _compile_propagator(propagator: Propagator, fft, cdtype: np.dtype) -> FieldFn:
    """Bake one propagator into a closure over cached kernel arrays."""
    if isinstance(propagator, FraunhoferPropagator):
        prefactor = np.ascontiguousarray(propagator._prefactor_tensor().data).astype(cdtype, copy=False)

        def apply_fraunhofer(field: np.ndarray) -> np.ndarray:
            shifted = np.fft.ifftshift(field, axes=(-2, -1))
            spectrum = np.fft.fftshift(fft.fft2(shifted), axes=(-2, -1))
            spectrum *= prefactor
            return spectrum

        return apply_fraunhofer

    transfer = np.ascontiguousarray(propagator.transfer_function).astype(cdtype, copy=False)
    pad = (propagator._work_grid.size - propagator.grid.size) // 2

    def apply(field: np.ndarray) -> np.ndarray:
        if pad:
            widths = [(0, 0)] * (field.ndim - 2) + [(pad, pad), (pad, pad)]
            field = np.pad(field, widths, mode="constant")
        spectrum = fft.fft2(field)
        spectrum *= transfer
        out = fft.ifft2(spectrum)
        if pad:
            out = out[..., pad:-pad, pad:-pad]
        return out

    return apply


def _snapshot_modulation(layer, cdtype: np.dtype) -> np.ndarray:
    """Eval-mode complex modulation of a diffractive layer as an ndarray."""
    with no_grad():
        return np.ascontiguousarray(layer.modulation().data).astype(cdtype, copy=False)


def _compile_layer(layer, fft, cdtype: np.dtype) -> FieldFn:
    propagate = _compile_propagator(layer.propagator, fft, cdtype)
    modulation = _snapshot_modulation(layer, cdtype)

    def step(field: np.ndarray) -> np.ndarray:
        field = propagate(field)
        field *= modulation
        return field

    return step


def _compile_nonlinearity(nonlinearity) -> FieldFn:
    if isinstance(nonlinearity, NonlinearLayer) or hasattr(nonlinearity, "apply_numpy"):
        return nonlinearity.apply_numpy
    raise TypeError(
        f"cannot compile nonlinearity {type(nonlinearity).__name__}: "
        "engine compilation needs a NonlinearLayer (or any module exposing apply_numpy)"
    )


def _compile_stack(layers, fft, cdtype: np.dtype, nonlinearity=None) -> List[FieldFn]:
    """Diffractive layers (+ optional interleaved nonlinearity) as a step list."""
    nonlinear_step = _compile_nonlinearity(nonlinearity) if nonlinearity is not None else None
    steps: List[FieldFn] = []
    for layer in layers:
        steps.append(_compile_layer(layer, fft, cdtype))
        if nonlinear_step is not None:
            steps.append(nonlinear_step)
    return steps


def _apply_stack(field: np.ndarray, steps: List[FieldFn]) -> np.ndarray:
    for step in steps:
        field = step(field)
    return field


def _intensity(field: np.ndarray) -> np.ndarray:
    return (field * np.conj(field)).real


def _read_intensity(intensity: np.ndarray, read_matrix: np.ndarray) -> np.ndarray:
    """Flattened intensity -> per-class logits via the detector read matrix."""
    pixels = intensity.shape[-2] * intensity.shape[-1]
    flat = intensity.reshape(intensity.shape[:-2] + (pixels,))
    return flat @ read_matrix


class _DONNProgram:
    """Compiled single-stack classifier (mirrors :class:`DONN.forward`)."""

    kind = "classifier"

    def __init__(self, model: DONN, fft, cdtype: np.dtype):
        config = model.config
        self.grid = config.grid
        self.cdtype = cdtype
        self.rdtype = np.dtype(np.float32 if cdtype == np.complex64 else np.float64)
        self.amplitude_factor = config.amplitude_factor
        self.steps = _compile_stack(model.diffractive_layers, fft, cdtype, model.nonlinearity)
        self.final = _compile_propagator(model.final_propagator, fft, cdtype)
        self.num_outputs = model.detector.num_classes
        # (N*N, C): logits = intensity_flat @ read_matrix.
        self.read_matrix = np.ascontiguousarray(model.detector.read_matrix()).astype(self.rdtype, copy=False)

    def encode(self, images: np.ndarray) -> np.ndarray:
        field = np.asarray(
            data_to_cplex(images, grid=self.grid, amplitude_factor=self.amplitude_factor).data
        )
        return field.astype(self.cdtype, copy=False)

    def detector_field(self, images: np.ndarray) -> np.ndarray:
        field = _apply_stack(self.encode(images), self.steps)
        return self.final(field)

    def intensity(self, images: np.ndarray) -> np.ndarray:
        return _intensity(self.detector_field(images))

    def read(self, intensity: np.ndarray) -> np.ndarray:
        return _read_intensity(intensity, self.read_matrix)

    def run(self, images: np.ndarray) -> np.ndarray:
        return self.read(self.intensity(images))


class _MultiChannelProgram:
    """Compiled multi-channel classifier (incoherent detector sum)."""

    kind = "classifier"

    def __init__(self, model: MultiChannelDONN, fft, cdtype: np.dtype):
        config = model.config
        self.grid = config.grid
        self.cdtype = cdtype
        self.rdtype = np.dtype(np.float32 if cdtype == np.complex64 else np.float64)
        self.amplitude_factor = config.amplitude_factor
        self.num_channels = model.num_channels
        self.channel_scale = model._channel_scale
        self.channels = [
            _compile_stack(channel, fft, cdtype, model.nonlinearity) for channel in model.channels
        ]
        self.final = _compile_propagator(model.final_propagator, fft, cdtype)
        self.num_outputs = model.detector.num_classes
        self.read_matrix = np.ascontiguousarray(model.detector.read_matrix()).astype(self.rdtype, copy=False)

    def intensity(self, rgb: np.ndarray) -> np.ndarray:
        if rgb.shape[-3] != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {rgb.shape[-3]}")
        total: Optional[np.ndarray] = None
        for index, steps in enumerate(self.channels):
            field = np.asarray(
                data_to_cplex(
                    rgb[..., index, :, :], grid=self.grid, amplitude_factor=self.amplitude_factor
                ).data
            ).astype(self.cdtype, copy=False)
            field *= self.channel_scale
            field = self.final(_apply_stack(field, steps))
            channel_intensity = _intensity(field)
            total = channel_intensity if total is None else total + channel_intensity
        return total

    def read(self, intensity: np.ndarray) -> np.ndarray:
        return _read_intensity(intensity, self.read_matrix)

    def run(self, rgb: np.ndarray) -> np.ndarray:
        return self.read(self.intensity(rgb))


class _SegmentationProgram:
    """Compiled image-to-image DONN (eval mode: raw output intensity)."""

    kind = "segmentation"

    def __init__(self, model: SegmentationDONN, fft, cdtype: np.dtype):
        config = model.config
        self.grid = config.grid
        self.cdtype = cdtype
        self.amplitude_factor = config.amplitude_factor
        nonlinearity = model.nonlinearity
        self.entry = _compile_stack([model.entry_layer], fft, cdtype, nonlinearity)
        inner_layers = model.inner.body if model.use_skip else model.inner
        self.inner = _compile_stack(inner_layers, fft, cdtype, nonlinearity)
        self.exit = _compile_stack([model.exit_layer], fft, cdtype, nonlinearity)
        self.final = _compile_propagator(model.final_propagator, fft, cdtype)
        self.use_skip = model.use_skip
        if model.use_skip:
            skip_weight = model.inner.skip_weight
            self.through_amplitude = float(np.sqrt(1.0 - skip_weight))
            self.bypass_amplitude = float(np.sqrt(skip_weight))

    def intensity(self, images: np.ndarray) -> np.ndarray:
        field = np.asarray(
            data_to_cplex(images, grid=self.grid, amplitude_factor=self.amplitude_factor).data
        ).astype(self.cdtype, copy=False)
        field = _apply_stack(field, self.entry)
        if self.use_skip:
            processed = _apply_stack((field * self.through_amplitude).astype(self.cdtype, copy=False), self.inner)
            field = processed + (field * self.bypass_amplitude).astype(self.cdtype, copy=False)
        else:
            field = _apply_stack(field, self.inner)
        field = _apply_stack(field, self.exit)
        return _intensity(self.final(field))

    def run(self, images: np.ndarray) -> np.ndarray:
        return self.intensity(images)


def _compile(model, fft, cdtype: np.dtype):
    if isinstance(model, SegmentationDONN):
        return _SegmentationProgram(model, fft, cdtype)
    if isinstance(model, MultiChannelDONN):
        return _MultiChannelProgram(model, fft, cdtype)
    if isinstance(model, DONN):
        return _DONNProgram(model, fft, cdtype)
    raise TypeError(
        f"cannot compile {type(model).__name__}; expected DONN, MultiChannelDONN or SegmentationDONN"
    )


class InferenceSession:
    """A trained DONN compiled for batched, autograd-free serving.

    Parameters
    ----------
    model:
        A (trained) :class:`DONN`, :class:`MultiChannelDONN` or
        :class:`SegmentationDONN`.  The model is snapshotted in eval mode
        at construction; its train/eval mode is restored afterwards and
        later parameter updates do **not** propagate into the session
        (rebuild or call :meth:`refresh` to pick them up).
    batch_size:
        Default chunk size used by :meth:`run`/:meth:`predict` when
        streaming large inputs.
    backend:
        FFT backend: ``"auto"`` (scipy when installed, numpy otherwise),
        ``"scipy"`` or ``"numpy"``.
    workers:
        Thread count for the scipy backend's batched FFTs.
    dtype:
        ``"complex128"`` (default, matches autograd to ``1e-10``) or
        ``"complex64"``: reduced-precision mode that halves cached-kernel
        and intermediate memory for memory-bound sizes, accurate to
        :data:`COMPLEX64_LOGIT_ATOL` on detector logits.

    Raises
    ------
    ValueError
        For ``batch_size < 1``, an unknown ``dtype``, or an unknown
        ``backend`` name.
    TypeError
        When ``model`` is not one of the three compilable families, or a
        configured nonlinearity does not expose ``apply_numpy``.
    RuntimeError
        From :meth:`predict` / :meth:`predict_mask` / :meth:`read_detector`
        when called on the wrong session kind.

    Thread-safety: a compiled session is **immutable between**
    :meth:`refresh` calls -- ``run``/``predict`` only read the cached
    kernel arrays, so concurrent calls from multiple threads are safe
    (this is what lets ``repro.serve`` run engine calls in a thread-pool
    executor).  :meth:`refresh` swaps the compiled program in a single
    attribute assignment; in-flight calls finish on the snapshot they
    started with.  The scipy FFT backend additionally parallelizes
    *within* one call via ``workers``.
    """

    def __init__(
        self,
        model,
        batch_size: int = 64,
        backend: str = "auto",
        workers: Optional[int] = None,
        dtype="complex128",
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.dtype = _resolve_complex_dtype(dtype)
        self.fft = get_fft_backend(backend, workers=workers)
        self._model = model
        self._program = self._snapshot(model)

    def _snapshot(self, model):
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                program = _compile(model, self.fft, self.dtype)
                # Captured *here*, not in to_spec(): the spec must rebuild
                # the parameters this program compiled, and the model may
                # train on after the snapshot (that is why refresh()
                # exists).  Pickling at snapshot time keeps spec and
                # program in lock-step.
                try:
                    self._model_blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    self._model_blob = None  # unpicklable model: to_spec() will refuse
                return program
        finally:
            model.train(was_training)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"classifier"`` or ``"segmentation"``."""
        return self._program.kind

    @property
    def backend_name(self) -> str:
        return self.fft.name

    @property
    def input_shape(self):
        """Expected per-request input shape (used by ``repro.serve``)."""
        shape = self._program.grid.shape
        if isinstance(self._program, _MultiChannelProgram):
            return (self._program.num_channels,) + shape
        return shape

    def refresh(self) -> "InferenceSession":
        """Re-snapshot the model's current parameters into the session."""
        self._program = self._snapshot(self._model)
        return self

    def to_spec(self):
        """Picklable :class:`~repro.engine.SessionSpec` rebuilding this session.

        A compiled session cannot cross a process boundary (its program is
        closures over cached arrays); the spec carries the pickled model
        plus the session options instead, and ``spec.build()`` on the
        other side compiles an identical session.  The model parameters
        in the spec are the ones captured at the last snapshot
        (construction or :meth:`refresh`) -- training steps taken since
        do **not** leak in, so replicas built from the spec match *this*
        session's outputs even when the live model has moved on.  The
        *resolved* backend name is recorded (not ``"auto"``), so the
        rebuilt session uses the same FFT implementation as this one.

        Raises ``TypeError`` when the snapshotted model could not be
        pickled.
        """
        from repro.engine.spec import SessionSpec

        if self._model_blob is None:
            raise TypeError(
                f"cannot build a SessionSpec: {type(self._model).__name__} failed to pickle at snapshot time"
            )
        return SessionSpec(
            model_blob=self._model_blob,
            model_type=type(self._model).__name__,
            batch_size=self.batch_size,
            backend=self.backend_name,
            workers=self.fft.workers,
            dtype=self.dtype.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceSession(kind={self.kind!r}, backend={self.backend_name!r}, "
            f"batch_size={self.batch_size}, dtype={self.dtype.name!r})"
        )

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def _batched(self, images, compute: Callable[[np.ndarray], np.ndarray], batch_size: Optional[int]):
        array = np.asarray(images, dtype=float)
        # Single-sample semantics mirror the models': MultiChannelDONN
        # promotes (C, H, W) to a batch of one, DONN/SegmentationDONN run
        # an (H, W) sample unbatched.
        if isinstance(self._program, _MultiChannelProgram):
            if array.ndim == 3:
                array = array[None]
        elif array.ndim == 2:
            return compute(array)
        size = int(batch_size or self.batch_size)
        total = len(array)
        if total <= size:
            # One chunk covers everything (chunk_size >= batch, a batch of
            # one, or an empty query batch): hand the whole array to the
            # program and return its output as-is -- no scratch buffer.
            return compute(array)
        # Stream into a preallocated output so peak extra memory is one
        # chunk, not a list of every chunk plus a concatenate copy.
        first = compute(array[:size])
        out = np.empty((total,) + first.shape[1:], dtype=first.dtype)
        out[:size] = first
        for start in range(size, total, size):
            out[start : start + size] = compute(array[start : start + size])
        return out

    def run(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Forward a dataset in chunks.

        Returns per-class collected intensities ``(B, C)`` for classifiers
        or output intensity maps ``(B, N, N)`` for segmentation models.
        A single unbatched sample (``(N, N)``, or ``(C, N, N)`` for
        multi-channel models) is forwarded unbatched / as a batch of one,
        mirroring the autograd models' semantics.
        """
        return self._batched(images, self._program.run, batch_size)

    def predict(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Arg-max class predictions (classifier sessions only)."""
        if self.kind != "classifier":
            raise RuntimeError("predict() requires a classifier session; use predict_mask()")
        return self.run(images, batch_size=batch_size).argmax(axis=-1)

    def predict_mask(self, images, threshold: Optional[float] = None, batch_size: Optional[int] = None) -> np.ndarray:
        """Binary masks via per-image median threshold (segmentation only)."""
        if self.kind != "segmentation":
            raise RuntimeError("predict_mask() requires a segmentation session; use predict()")
        pattern = self.run(images, batch_size=batch_size)
        if threshold is not None:
            return (pattern >= threshold).astype(float)
        medians = np.median(pattern, axis=(-2, -1), keepdims=True)
        return (pattern >= medians).astype(float)

    def intensity_patterns(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Detector-plane intensity images (what the CMOS camera records)."""
        return self._batched(images, self._program.intensity, batch_size)

    def read_detector(self, intensity: np.ndarray) -> np.ndarray:
        """Integrate intensity patterns over the per-class detector regions."""
        if self.kind != "classifier":
            raise RuntimeError("read_detector() requires a classifier session")
        return self._program.read(np.asarray(intensity, dtype=self._program.rdtype))


def compile_model(
    model,
    batch_size: int = 64,
    backend: str = "auto",
    workers: Optional[int] = None,
    dtype="complex128",
) -> InferenceSession:
    """Functional alias for :class:`InferenceSession` construction."""
    return InferenceSession(model, batch_size=batch_size, backend=backend, workers=workers, dtype=dtype)
