"""Autograd-free batched inference for trained DONN systems.

Training needs the tape-based :class:`~repro.autograd.tensor.Tensor`
machinery; serving does not.  :func:`compile` — the engine's one front
door — runs a trained model through an explicit three-stage pipeline:

1. **lower** (:mod:`repro.engine.plan`): snapshot the model in eval mode
   into a :class:`~repro.engine.plan.Plan` of typed ops — every
   diffraction transfer function, phase modulation, Fraunhofer
   prefactor and detector read-out matrix captured as plain ndarrays;
2. **optimize** (:mod:`repro.engine.passes`): fuse adjacent multiplies,
   cancel inverse/forward FFT pairs, drop all-ones kernels, and — for
   nonlinearity-free classifiers — collapse the whole cascade into one
   precomputed input→detector operator pair;
3. **emit**: close the optimized ops over the FFT backend into the flat
   numpy program an :class:`InferenceSession` streams batches through.

The session itself is a thin executor: batching, chunk streaming, and
introspection (:meth:`InferenceSession.plan_summary` reports op counts
before/after the passes).  At the default ``dtype="complex128"`` outputs
match the autograd eval path to ``atol=1e-10``; the opt-in
``dtype="complex64"`` mode halves the memory footprint of every cached
kernel and intermediate, trading exactness for a documented accuracy
budget of :data:`COMPLEX64_LOGIT_ATOL` on detector logits (see
``tests/test_engine.py``).

Constructing ``InferenceSession(model, ...)`` directly still works but
is deprecated; it is the same pipeline with a ``DeprecationWarning`` on
the way in.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Callable, Optional

import numpy as np

from repro.engine.backends import get_fft_backend
from repro.engine.plan import Plan, emit, lower
from repro.engine.passes import OPTIMIZE_LEVELS, optimize_plan

#: Accuracy budget of the reduced-precision engine: with
#: ``dtype="complex64"`` the detector logits (and segmentation intensity
#: maps) of unit-scale inputs agree with the ``complex128`` engine within
#: this absolute tolerance across all three model families.
COMPLEX64_LOGIT_ATOL = 1e-4


def _resolve_complex_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.complex64), np.dtype(np.complex128)):
        raise ValueError(f"dtype must be complex64 or complex128, got {dtype!r}")
    return resolved


class InferenceSession:
    """A trained DONN compiled for batched, autograd-free serving.

    Build sessions with :func:`repro.engine.compile`; the direct
    ``InferenceSession(model, ...)`` constructor is deprecated (it still
    works, running the identical pipeline, but warns).

    Parameters
    ----------
    model:
        A (trained) :class:`DONN`, :class:`MultiChannelDONN` or
        :class:`SegmentationDONN`.  The model is snapshotted in eval mode
        at compile time; its train/eval mode is restored afterwards and
        later parameter updates do **not** propagate into the session
        (rebuild or call :meth:`refresh` to pick them up).
    batch_size:
        Default chunk size used by :meth:`run`/:meth:`predict` when
        streaming large inputs.
    backend:
        FFT backend: ``"auto"`` (scipy when installed, numpy otherwise),
        ``"scipy"`` or ``"numpy"``.
    workers:
        Thread count for the scipy backend's batched FFTs.
    dtype:
        ``"complex128"`` (default, matches autograd to ``1e-10``) or
        ``"complex64"``: reduced-precision mode that halves cached-kernel
        and intermediate memory for memory-bound sizes, accurate to
        :data:`COMPLEX64_LOGIT_ATOL` on detector logits.
    optimize:
        Pass level: ``"full"`` (default; local rewrites plus cascade
        collapse), ``"fuse"`` (local rewrites only) or ``"none"``
        (emit the lowered plan verbatim).

    Raises
    ------
    ValueError
        For ``batch_size < 1``, an unknown ``dtype``, an unknown
        ``backend`` name, or an unknown ``optimize`` level.
    TypeError
        When ``model`` is not one of the three compilable families, or a
        configured nonlinearity does not expose ``apply_numpy``.
    RuntimeError
        From :meth:`predict` / :meth:`predict_mask` / :meth:`read_detector`
        when called on the wrong session kind.

    Thread-safety: a compiled session is **immutable between**
    :meth:`refresh` calls -- ``run``/``predict`` only read the cached
    kernel arrays, so concurrent calls from multiple threads are safe
    (this is what lets ``repro.serve`` run engine calls in a thread-pool
    executor).  :meth:`refresh` swaps the compiled program in a single
    attribute assignment; in-flight calls finish on the snapshot they
    started with.  The scipy FFT backend additionally parallelizes
    *within* one call via ``workers``.
    """

    def __init__(
        self,
        model,
        batch_size: int = 64,
        backend: str = "auto",
        workers: Optional[int] = None,
        dtype="complex128",
        optimize: str = "full",
    ):
        warnings.warn(
            "direct InferenceSession(model, ...) construction is deprecated; "
            "use repro.engine.compile(model, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(
            model,
            batch_size=batch_size,
            backend=backend,
            workers=workers,
            dtype=dtype,
            optimize=optimize,
            max_operator_bytes=None,
        )

    # ------------------------------------------------------------------ #
    # The compile pipeline (shared by compile(), the deprecated
    # constructor, spec.build() and refresh())
    # ------------------------------------------------------------------ #
    def _init(
        self,
        model,
        *,
        batch_size: int,
        backend: str,
        workers: Optional[int],
        dtype,
        optimize: str,
        max_operator_bytes: Optional[int],
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if optimize not in OPTIMIZE_LEVELS:
            raise ValueError(f"optimize must be one of {OPTIMIZE_LEVELS}, got {optimize!r}")
        self.batch_size = int(batch_size)
        self.dtype = _resolve_complex_dtype(dtype)
        self.optimize = optimize
        self.fft = get_fft_backend(backend, workers=workers)
        self._max_operator_bytes = max_operator_bytes
        self._model = model
        self._recompile()

    def _recompile(self) -> None:
        """Lower → optimize → emit from the model's *current* parameters.

        This is the one code path for cold start and :meth:`refresh`:
        both snapshot the live model into a fresh plan, re-run the
        passes, and swap the emitted program in.
        """
        model = self._model
        if not hasattr(model, "training"):
            lower(model, self.dtype)  # raises the canonical TypeError for non-compilable objects
        was_training = model.training
        model.eval()
        try:
            raw_plan = lower(model, self.dtype)
            # Captured *here*, not in to_spec(): the spec must rebuild
            # the parameters this program compiled, and the model may
            # train on after the snapshot (that is why refresh()
            # exists).  Pickling at snapshot time keeps spec and
            # program in lock-step.
            try:
                self._model_blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._model_blob = None  # unpicklable model: to_spec() will refuse
        finally:
            model.train(was_training)
        plan, report = optimize_plan(
            raw_plan, self.optimize, fft=self.fft, max_operator_bytes=self._max_operator_bytes
        )
        self._raw_plan = raw_plan
        self._plan = plan
        self._pass_report = report
        self._reference_program = None  # lazy full-plane program for collapsed plans
        self._program = emit(plan, self.fft)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"classifier"`` or ``"segmentation"``."""
        return self._program.kind

    @property
    def backend_name(self) -> str:
        return self.fft.name

    @property
    def plan(self) -> Plan:
        """The optimized plan the session's program was emitted from."""
        return self._plan

    @property
    def unoptimized_plan(self) -> Plan:
        """The plan as lowered from the model, before any passes."""
        return self._raw_plan

    def plan_summary(self) -> dict:
        """Op counts and pass report: what the optimizer did to the plan.

        Returns a dict with ``ops_before``/``ops_after`` (op counts by
        type), ``fft_ops_before``/``fft_ops_after`` (FFT+IFFT totals),
        ``passes`` (which rewrites fired), ``collapsed`` (whether the
        cascade folded to a precomputed operator) and ``optimize`` (the
        requested level).
        """
        report = self._pass_report
        return {
            "optimize": report["optimize"],
            "ops_before": dict(report["ops_before"]),
            "ops_after": dict(report["ops_after"]),
            "fft_ops_before": report["fft_ops_before"],
            "fft_ops_after": report["fft_ops_after"],
            "passes": list(report["passes"]),
            "collapsed": report["collapsed"],
        }

    @property
    def input_shape(self):
        """Expected per-request input shape (used by ``repro.serve``)."""
        shape = self._program.grid.shape
        if self._program.expects_channels:
            return (self._program.num_channels,) + shape
        return shape

    def refresh(self) -> "InferenceSession":
        """Re-compile from the model's current parameters.

        Runs the identical lower→optimize→emit pipeline as cold start
        (:func:`compile`), so refreshed sessions and freshly compiled
        ones are the same artifact.
        """
        self._recompile()
        return self

    def to_spec(self):
        """Picklable :class:`~repro.engine.SessionSpec` rebuilding this session.

        A compiled session cannot cross a process boundary (its program is
        closures over cached arrays); the spec carries the pickled model
        plus the session options instead, and ``spec.build()`` on the
        other side compiles an identical session.  The model parameters
        in the spec are the ones captured at the last snapshot
        (compilation or :meth:`refresh`) -- training steps taken since
        do **not** leak in, so replicas built from the spec match *this*
        session's outputs even when the live model has moved on.  The
        *resolved* backend name is recorded (not ``"auto"``), so the
        rebuilt session uses the same FFT implementation as this one.

        Raises ``TypeError`` when the snapshotted model could not be
        pickled.
        """
        from repro.engine.spec import SessionSpec

        if self._model_blob is None:
            raise TypeError(
                f"cannot build a SessionSpec: {type(self._model).__name__} failed to pickle at snapshot time"
            )
        return SessionSpec(
            model_blob=self._model_blob,
            model_type=type(self._model).__name__,
            batch_size=self.batch_size,
            backend=self.backend_name,
            workers=self.fft.workers,
            dtype=self.dtype.name,
            optimize=self.optimize,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceSession(kind={self.kind!r}, backend={self.backend_name!r}, "
            f"batch_size={self.batch_size}, dtype={self.dtype.name!r}, optimize={self.optimize!r})"
        )

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def _batched(self, images, compute: Callable[[np.ndarray], np.ndarray], batch_size: Optional[int]):
        array = np.asarray(images, dtype=float)
        # Single-sample semantics mirror the models': MultiChannelDONN
        # promotes (C, H, W) to a batch of one, DONN/SegmentationDONN run
        # an (H, W) sample unbatched.
        if self._program.expects_channels:
            if array.ndim == 3:
                array = array[None]
        elif array.ndim == 2:
            return compute(array)
        size = int(batch_size or self.batch_size)
        total = len(array)
        if total <= size:
            # One chunk covers everything (chunk_size >= batch, a batch of
            # one, or an empty query batch): hand the whole array to the
            # program and return its output as-is -- no scratch buffer.
            return compute(array)
        # Stream into a preallocated output so peak extra memory is one
        # chunk, not a list of every chunk plus a concatenate copy.
        first = compute(array[:size])
        out = np.empty((total,) + first.shape[1:], dtype=first.dtype)
        out[:size] = first
        for start in range(size, total, size):
            out[start : start + size] = compute(array[start : start + size])
        return out

    def run(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Forward a dataset in chunks.

        Returns per-class collected intensities ``(B, C)`` for classifiers
        or output intensity maps ``(B, N, N)`` for segmentation models.
        A single unbatched sample (``(N, N)``, or ``(C, N, N)`` for
        multi-channel models) is forwarded unbatched / as a batch of one,
        mirroring the autograd models' semantics.
        """
        return self._batched(images, self._program.run, batch_size)

    def predict(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Arg-max class predictions (classifier sessions only)."""
        if self.kind != "classifier":
            raise RuntimeError("predict() requires a classifier session; use predict_mask()")
        return self.run(images, batch_size=batch_size).argmax(axis=-1)

    def predict_mask(self, images, threshold: Optional[float] = None, batch_size: Optional[int] = None) -> np.ndarray:
        """Binary masks via per-image median threshold (segmentation only)."""
        if self.kind != "segmentation":
            raise RuntimeError("predict_mask() requires a segmentation session; use predict()")
        pattern = self.run(images, batch_size=batch_size)
        if threshold is not None:
            return (pattern >= threshold).astype(float)
        medians = np.median(pattern, axis=(-2, -1), keepdims=True)
        return (pattern >= medians).astype(float)

    def _full_plane_intensity(self) -> Callable[[np.ndarray], np.ndarray]:
        """Intensity fn over the whole detector plane.

        A collapsed program computes only the read-out pixels, so camera
        views come from a reference program emitted (lazily, once) from
        the unoptimized plan — same arrays, full plane.
        """
        if self._program.intensity is not None:
            return self._program.intensity
        if self._reference_program is None:
            self._reference_program = emit(self._raw_plan, self.fft)
        return self._reference_program.intensity

    def intensity_patterns(self, images, batch_size: Optional[int] = None) -> np.ndarray:
        """Detector-plane intensity images (what the CMOS camera records)."""
        return self._batched(images, self._full_plane_intensity(), batch_size)

    def read_detector(self, intensity: np.ndarray) -> np.ndarray:
        """Integrate intensity patterns over the per-class detector regions."""
        if self.kind != "classifier":
            raise RuntimeError("read_detector() requires a classifier session")
        return self._program.read(np.asarray(intensity, dtype=self._program.rdtype))


def compile(
    model_or_spec,
    *,
    optimize: Optional[str] = None,
    batch_size: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    dtype=None,
    max_operator_bytes: Optional[int] = None,
) -> InferenceSession:
    """Compile a trained model (or a :class:`SessionSpec`) for inference.

    The engine's front door: lowers the model to a plan, runs the
    optimization passes at the requested level, and emits an
    :class:`InferenceSession`.

    Parameters
    ----------
    model_or_spec:
        A :class:`DONN` / :class:`MultiChannelDONN` /
        :class:`SegmentationDONN`, or a picklable
        :class:`~repro.engine.SessionSpec` (whose recorded options become
        the defaults).
    optimize:
        ``"full"`` (default), ``"fuse"`` or ``"none"``; see
        :func:`repro.engine.passes.optimize_plan`.
    batch_size, backend, workers, dtype:
        As on :class:`InferenceSession`; ``None`` means "the spec's
        recorded value" when compiling a spec, the usual default
        otherwise.
    max_operator_bytes:
        Budget for the collapsed cascade operator (``None`` = the
        passes' 64 MiB default); plans over budget stay in FFT form.
    """
    from repro.engine.spec import SessionSpec

    if isinstance(model_or_spec, SessionSpec):
        spec = model_or_spec
        model = pickle.loads(spec.model_blob)
        batch_size = spec.batch_size if batch_size is None else batch_size
        backend = spec.backend if backend is None else backend
        workers = spec.workers if workers is None else workers
        dtype = spec.dtype if dtype is None else dtype
        optimize = spec.optimize if optimize is None else optimize
    else:
        model = model_or_spec
        batch_size = 64 if batch_size is None else batch_size
        backend = "auto" if backend is None else backend
        dtype = "complex128" if dtype is None else dtype
        optimize = "full" if optimize is None else optimize
    session = object.__new__(InferenceSession)
    session._init(
        model,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
        dtype=dtype,
        optimize=optimize,
        max_operator_bytes=max_operator_bytes,
    )
    return session


def compile_model(
    model,
    batch_size: int = 64,
    backend: str = "auto",
    workers: Optional[int] = None,
    dtype="complex128",
    optimize: str = "full",
) -> InferenceSession:
    """Functional alias for :func:`compile` (kept for API compatibility)."""
    return compile(
        model,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
        dtype=dtype,
        optimize=optimize,
    )
