"""Picklable session specs: ship a compiled-model recipe across processes.

A compiled :class:`~repro.engine.InferenceSession` is deliberately *not*
picklable -- its program is a chain of closures over cached kernel
arrays.  What crosses a process boundary instead is a
:class:`SessionSpec`: the pickled trained model plus the session options,
i.e. everything needed to run :func:`repro.engine.compile` again on the
other side.
``repro.cluster`` spawns replica workers from exactly this object; each
worker rebuilds its own session (and its own FFT plan/kernel caches,
which must live in the worker's address space anyway).

The round-trip is exact: models hold plain numpy parameter arrays, so
``spec.build()`` in another process compiles the *same* program and its
outputs match the originating session bit-for-bit (see
``tests/test_cluster.py::TestSessionSpec``).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SessionSpec"]

#: Canonical-serialization magic + format version.  Bump the version when
#: the header schema changes; old stores then fail loudly instead of
#: silently misparsing (``repro.store`` verifies hashes over these bytes).
_CANONICAL_MAGIC = b"repro-spec"
_CANONICAL_FORMAT = 1


@dataclass(frozen=True)
class SessionSpec:
    """A picklable recipe for rebuilding an :class:`InferenceSession`.

    Parameters mirror :class:`~repro.engine.InferenceSession`; the model
    itself travels as pickle bytes (``model_blob``) so the spec stays a
    plain value object that any ``multiprocessing`` start method --
    including ``spawn``, which re-imports everything -- can ship.

    Raises
    ------
    TypeError
        From :meth:`from_model` when the model cannot be pickled, and
        from :meth:`build` (via ``InferenceSession``) when the blob does
        not decode to a compilable model family.
    """

    model_blob: bytes = field(repr=False)
    model_type: str = "?"
    batch_size: int = 64
    backend: str = "auto"
    workers: Optional[int] = None
    dtype: str = "complex128"
    optimize: str = "full"

    @classmethod
    def from_model(
        cls,
        model,
        batch_size: int = 64,
        backend: str = "auto",
        workers: Optional[int] = None,
        dtype="complex128",
        optimize: str = "full",
    ) -> "SessionSpec":
        """Snapshot ``model`` (with session options) into a spec.

        The model's *current* parameters are captured; later training
        steps do not propagate into specs already taken.
        """
        try:
            blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"cannot build a SessionSpec from {type(model).__name__}: model failed to pickle ({exc})"
            ) from exc
        return cls(
            model_blob=blob,
            model_type=type(model).__name__,
            batch_size=int(batch_size),
            backend=str(backend),
            workers=workers,
            dtype=str(dtype),
            optimize=str(optimize),
        )

    def build(self):
        """Compile a fresh session from the spec (via :func:`repro.engine.compile`)."""
        from repro.engine.session import compile as engine_compile

        return engine_compile(self)

    # ------------------------------------------------------------------ #
    # Canonical serialization (what repro.store hashes and persists)
    # ------------------------------------------------------------------ #
    def canonical_bytes(self) -> bytes:
        """Deterministic byte serialization of this spec.

        Layout: ``magic \\0 header-json \\0 model_blob``, where the header
        carries every non-blob field with sorted keys -- so two specs with
        identical fields serialize to identical bytes, and
        :meth:`content_hash` is stable across processes and re-publishes.
        The model blob is included verbatim: it is already deterministic
        for a given trained model (plain numpy parameter arrays pickled at
        a fixed protocol).
        """
        header = {
            "format": _CANONICAL_FORMAT,
            "model_type": self.model_type,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "workers": self.workers,
            "dtype": self.dtype,
            "optimize": self.optimize,
        }
        header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return b"\x00".join((_CANONICAL_MAGIC, header_bytes, self.model_blob))

    def content_hash(self) -> str:
        """Hex SHA-256 of :meth:`canonical_bytes` -- the spec's identity.

        ``repro.store`` keys blobs by this digest (content addressing):
        publishing the same spec twice writes one blob, and a load whose
        bytes do not hash back to the manifest's digest is refused.
        """
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    @classmethod
    def from_canonical_bytes(cls, data: bytes) -> "SessionSpec":
        """Rebuild a spec from :meth:`canonical_bytes` output.

        Raises ``ValueError`` for bytes that are not a canonical spec
        serialization (wrong magic, undecodable header, unknown format) --
        the store wraps that into its integrity error.
        """
        magic, _, rest = bytes(data).partition(b"\x00")
        if magic != _CANONICAL_MAGIC or not rest:
            raise ValueError("not a canonical SessionSpec serialization (bad magic)")
        header_bytes, _, blob = rest.partition(b"\x00")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"canonical SessionSpec header is unreadable: {exc}") from exc
        if header.get("format") != _CANONICAL_FORMAT:
            raise ValueError(
                f"unsupported canonical SessionSpec format {header.get('format')!r} "
                f"(this build reads format {_CANONICAL_FORMAT})"
            )
        return cls(
            model_blob=blob,
            model_type=str(header["model_type"]),
            batch_size=int(header["batch_size"]),
            backend=str(header["backend"]),
            workers=header["workers"],
            dtype=str(header["dtype"]),
            optimize=str(header["optimize"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionSpec(model={self.model_type}, blob={len(self.model_blob)}B, "
            f"backend={self.backend!r}, dtype={self.dtype!r}, batch_size={self.batch_size})"
        )
