"""Picklable session specs: ship a compiled-model recipe across processes.

A compiled :class:`~repro.engine.InferenceSession` is deliberately *not*
picklable -- its program is a chain of closures over cached kernel
arrays.  What crosses a process boundary instead is a
:class:`SessionSpec`: the pickled trained model plus the session options,
i.e. everything needed to run :func:`repro.engine.compile` again on the
other side.
``repro.cluster`` spawns replica workers from exactly this object; each
worker rebuilds its own session (and its own FFT plan/kernel caches,
which must live in the worker's address space anyway).

The round-trip is exact: models hold plain numpy parameter arrays, so
``spec.build()`` in another process compiles the *same* program and its
outputs match the originating session bit-for-bit (see
``tests/test_cluster.py::TestSessionSpec``).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SessionSpec"]


@dataclass(frozen=True)
class SessionSpec:
    """A picklable recipe for rebuilding an :class:`InferenceSession`.

    Parameters mirror :class:`~repro.engine.InferenceSession`; the model
    itself travels as pickle bytes (``model_blob``) so the spec stays a
    plain value object that any ``multiprocessing`` start method --
    including ``spawn``, which re-imports everything -- can ship.

    Raises
    ------
    TypeError
        From :meth:`from_model` when the model cannot be pickled, and
        from :meth:`build` (via ``InferenceSession``) when the blob does
        not decode to a compilable model family.
    """

    model_blob: bytes = field(repr=False)
    model_type: str = "?"
    batch_size: int = 64
    backend: str = "auto"
    workers: Optional[int] = None
    dtype: str = "complex128"
    optimize: str = "full"

    @classmethod
    def from_model(
        cls,
        model,
        batch_size: int = 64,
        backend: str = "auto",
        workers: Optional[int] = None,
        dtype="complex128",
        optimize: str = "full",
    ) -> "SessionSpec":
        """Snapshot ``model`` (with session options) into a spec.

        The model's *current* parameters are captured; later training
        steps do not propagate into specs already taken.
        """
        try:
            blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"cannot build a SessionSpec from {type(model).__name__}: model failed to pickle ({exc})"
            ) from exc
        return cls(
            model_blob=blob,
            model_type=type(model).__name__,
            batch_size=int(batch_size),
            backend=str(backend),
            workers=workers,
            dtype=str(dtype),
            optimize=str(optimize),
        )

    def build(self):
        """Compile a fresh session from the spec (via :func:`repro.engine.compile`)."""
        from repro.engine.session import compile as engine_compile

        return engine_compile(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionSpec(model={self.model_type}, blob={len(self.model_blob)}B, "
            f"backend={self.backend!r}, dtype={self.dtype!r}, batch_size={self.batch_size})"
        )
