"""Optimization passes over the engine's :class:`~repro.engine.plan.Plan` IR.

The optical cascade alternates stages that are diagonal in the spatial
basis (phase modulations) with stages diagonal in the frequency basis
(diffraction transfer functions).  Between nonlinearities the whole
chain is linear, which licenses three rewrites:

``eliminate_dead_kernels``
    drop any ``PointwiseMul`` whose array is identically one (e.g. a
    zero-initialised phase mask: ``e^{j·0} = 1``).

``cancel_transform_pairs``
    an un-padded inverse FFT immediately followed by an un-padded
    forward FFT (or vice versa) is the identity — this is what makes
    diffraction→modulation→diffraction chains fold once the modulation
    between them is dead or fused away.

``fuse_pointwise``
    two adjacent element-wise multiplies are one multiply by the
    precomputed product: ``(x·a)·b = x·(a·b)``.

The passes run to a fixpoint (each one can expose work for the others),
recursing into skip-connection bodies.

``collapse_cascade`` is the big hammer for nonlinearity-free
classifiers: the entire Encode→…→Intensity→ReadIntensity program is
folded into **one precomputed operator pair** restricted to the pixels
the detector actually reads.  With ``A`` the cascade's linear map from
the input plane to those ``P`` detector pixels, the logits are::

    logits = ((amp @ Re Aᵀ)² + (amp @ Im Aᵀ)²) @ R[pixels]

two real GEMMs against ``(N², P)`` matrices — no FFTs, no complex
arithmetic (the encoded input field has constant phase, which detector
intensity cannot see).  ``A`` is built by the **adjoint method**: row
``p`` of ``A`` is the *transposed* op chain applied to the one-hot
detector field ``e_p``, so the build costs ``P`` pushes (typically a few
hundred) instead of ``N²``.  Transposition rules: the unnormalised DFT
matrix is symmetric (``Fᵀ = F``, ``(F⁻¹)ᵀ = F⁻¹``), pad and crop are
mutual transposes, ``fftshift``/``ifftshift`` are mutual transposes (so
the centred Fraunhofer FFT is self-transpose), and diagonal multiplies
are their own (plain, non-conjugate) transpose.

The collapse is gated: classifier plans only (segmentation needs the
full output plane, where a dense operator is a pessimization), and the
operator pair must fit ``max_operator_bytes`` (default 64 MiB) — big
grids with many read pixels stay in FFT form, which is cheaper there
anyway.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import (
    FFT,
    IFFT,
    Branch,
    Crop,
    DetectorOperator,
    Encode,
    Intensity,
    Op,
    Pad,
    Plan,
    PointwiseMul,
    ReadIntensity,
    Skip,
    count_ops,
    emit_ops,
)

__all__ = [
    "OPTIMIZE_LEVELS",
    "DEFAULT_OPERATOR_BUDGET",
    "eliminate_dead_kernels",
    "cancel_transform_pairs",
    "fuse_pointwise",
    "transpose_linear_ops",
    "collapse_cascade",
    "optimize_plan",
]

OPTIMIZE_LEVELS = ("none", "fuse", "full")

#: Per-branch cap on the collapsed operator pair (Re + Im), in bytes.
#: 64 MiB admits e.g. a 64x64 grid with a few hundred read pixels but
#: keeps 128x128-and-up grids in FFT form, where FFTs win anyway.
DEFAULT_OPERATOR_BUDGET = 64 * 1024 * 1024


# --------------------------------------------------------------------- #
# Local rewrites
# --------------------------------------------------------------------- #
def eliminate_dead_kernels(ops: Sequence[Op]) -> List[Op]:
    """Drop ``PointwiseMul`` ops whose array is exactly all-ones."""
    out: List[Op] = []
    for op in ops:
        if isinstance(op, PointwiseMul) and np.all(op.values == 1.0):
            continue
        if isinstance(op, Skip):
            op = Skip(
                body=eliminate_dead_kernels(op.body),
                through_amplitude=op.through_amplitude,
                bypass_amplitude=op.bypass_amplitude,
            )
        out.append(op)
    return out


def _cancels(first: Op, second: Op) -> bool:
    if isinstance(first, IFFT) and isinstance(second, FFT):
        return first.crop == 0 and second.pad == 0 and not second.centered
    if isinstance(first, FFT) and isinstance(second, IFFT):
        return first.pad == 0 and not first.centered and second.crop == 0
    return False


def cancel_transform_pairs(ops: Sequence[Op]) -> List[Op]:
    """Remove adjacent un-padded IFFT/FFT (or FFT/IFFT) identity pairs.

    Padded transforms never cancel: crop-then-pad zeroes the border, so
    it is *not* the identity.
    """
    out: List[Op] = []
    for op in ops:
        if isinstance(op, Skip):
            op = Skip(
                body=cancel_transform_pairs(op.body),
                through_amplitude=op.through_amplitude,
                bypass_amplitude=op.bypass_amplitude,
            )
        if out and _cancels(out[-1], op):
            out.pop()
            continue
        out.append(op)
    return out


def fuse_pointwise(ops: Sequence[Op]) -> List[Op]:
    """Fuse adjacent same-shape ``PointwiseMul`` ops into their product."""
    out: List[Op] = []
    for op in ops:
        if isinstance(op, Skip):
            op = Skip(
                body=fuse_pointwise(op.body),
                through_amplitude=op.through_amplitude,
                bypass_amplitude=op.bypass_amplitude,
            )
        if (
            out
            and isinstance(op, PointwiseMul)
            and isinstance(out[-1], PointwiseMul)
            and out[-1].values.shape == op.values.shape
        ):
            previous = out.pop()
            domain = previous.domain if previous.domain == op.domain else "mixed"
            label = "*".join(part for part in (previous.label, op.label) if part)
            out.append(PointwiseMul(values=previous.values * op.values, domain=domain, label=label))
            continue
        out.append(op)
    return out


def _simplify_branch(ops: Sequence[Op]) -> Tuple[List[Op], List[str]]:
    """Run the local rewrites to a fixpoint; return (ops, passes that fired)."""
    current = list(ops)
    applied: List[str] = []
    while True:
        size = _total_ops(current)
        for name, rewrite in (
            ("eliminate_dead_kernels", eliminate_dead_kernels),
            ("cancel_transform_pairs", cancel_transform_pairs),
            ("fuse_pointwise", fuse_pointwise),
        ):
            reduced = rewrite(current)
            if _total_ops(reduced) < _total_ops(current):
                applied.append(name)
                current = reduced
        if _total_ops(current) == size:
            return current, applied


def _total_ops(ops: Sequence[Op]) -> int:
    total = 0
    for op in ops:
        total += 1
        if isinstance(op, Skip):
            total += _total_ops(op.body)
    return total


# --------------------------------------------------------------------- #
# Cascade collapse (nonlinearity-free classifiers)
# --------------------------------------------------------------------- #
_LINEAR_OPS = (FFT, IFFT, Pad, Crop, PointwiseMul)


def _is_linear(op: Op) -> bool:
    if isinstance(op, _LINEAR_OPS):
        return True
    if isinstance(op, Skip):
        return all(_is_linear(inner) for inner in op.body)
    return False


def transpose_linear_ops(ops: Sequence[Op]) -> List[Op]:
    """Transpose a linear op chain (for the adjoint operator build).

    Returns ops computing ``Aᵀx`` where the input chain computes ``Ax``.
    Plain transpose, not conjugate-transpose — the adjoint build wants
    the rows of ``A`` itself.
    """
    transposed: List[Op] = []
    for op in reversed(list(ops)):
        if isinstance(op, FFT):
            if op.centered:
                transposed.append(FFT(centered=True))  # fftshift·F·ifftshift is self-transpose
            else:
                transposed.append(FFT(pad=0))
                if op.pad:
                    transposed.append(Crop(op.pad))
        elif isinstance(op, IFFT):
            if op.crop:
                transposed.append(Pad(op.crop))
            transposed.append(IFFT(crop=0))
        elif isinstance(op, Pad):
            transposed.append(Crop(op.width))
        elif isinstance(op, Crop):
            transposed.append(Pad(op.width))
        elif isinstance(op, PointwiseMul):
            transposed.append(op)
        elif isinstance(op, Skip):
            transposed.append(
                Skip(
                    body=transpose_linear_ops(op.body),
                    through_amplitude=op.through_amplitude,
                    bypass_amplitude=op.bypass_amplitude,
                )
            )
        else:
            raise TypeError(f"cannot transpose non-linear op {type(op).__name__}")
    return transposed


def _collapsible(plan: Plan) -> bool:
    if plan.kind != "classifier" or plan.read_matrix is None:
        return False
    if len(plan.tail) != 1 or not isinstance(plan.tail[0], ReadIntensity) or not plan.tail[0].from_plane:
        return False
    for branch in plan.branches:
        ops = branch.ops
        if len(ops) < 2 or not isinstance(ops[0], Encode) or ops[0].mode != "field":
            return False
        if not isinstance(ops[-1], Intensity):
            return False
        if not all(_is_linear(op) for op in ops[1:-1]):
            return False
    return True


def _build_detector_operator(linear_ops: Sequence[Op], plan: Plan, pixels: np.ndarray, fft) -> DetectorOperator:
    size = plan.grid.size
    count = pixels.shape[0]
    basis = np.zeros((count, size, size), dtype=plan.cdtype)
    basis[np.arange(count), pixels // size, pixels % size] = 1.0
    rows = emit_ops(transpose_linear_ops(linear_ops), fft, plan.cdtype)(basis)
    # rows[i] = Aᵀ e_{pixels[i]}, i.e. row pixels[i] of A; the emitted
    # matmul wants amp @ Aᵀ, so lay the operator out as (N², P).
    restricted = rows.reshape(count, size * size).T
    return DetectorOperator(
        op_real=np.ascontiguousarray(restricted.real),
        op_imag=np.ascontiguousarray(restricted.imag),
        pixels=pixels,
    )


def collapse_cascade(plan: Plan, fft, max_operator_bytes: Optional[int] = None) -> Optional[Plan]:
    """Fold a linear classifier plan into precomputed detector operators.

    Returns the collapsed plan, or ``None`` when the plan is ineligible
    (nonlinear, segmentation, or over the operator budget).
    """
    if max_operator_bytes is None:
        max_operator_bytes = DEFAULT_OPERATOR_BUDGET
    if not _collapsible(plan):
        return None
    pixels = np.flatnonzero(plan.read_matrix.any(axis=1))
    if pixels.size == 0:
        return None
    cells = plan.grid.size * plan.grid.size
    per_branch = 2 * plan.rdtype.itemsize * cells * int(pixels.size)
    if per_branch * len(plan.branches) > max_operator_bytes:
        return None

    branches: List[Branch] = []
    for branch in plan.branches:
        encode = branch.ops[0]
        operator = _build_detector_operator(branch.ops[1:-1], plan, pixels, fft)
        branches.append(
            Branch(
                ops=[
                    Encode(amplitude_factor=encode.amplitude_factor, scale=encode.scale, mode="amplitude"),
                    operator,
                ],
                channel=branch.channel,
            )
        )
    read_sub = np.ascontiguousarray(plan.read_matrix[pixels, :])
    return Plan(
        kind=plan.kind,
        grid=plan.grid,
        cdtype=plan.cdtype,
        branches=branches,
        tail=[ReadIntensity(matrix=read_sub, from_plane=False)],
        num_outputs=plan.num_outputs,
        num_channels=plan.num_channels,
        read_matrix=plan.read_matrix,
    )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #
def _fft_op_count(counts: dict) -> int:
    return counts.get("FFT", 0) + counts.get("IFFT", 0)


def optimize_plan(
    plan: Plan,
    optimize: str = "full",
    fft=None,
    max_operator_bytes: Optional[int] = None,
) -> Tuple[Plan, dict]:
    """Run the pass pipeline at the requested level.

    ``optimize`` is ``"none"`` (pass-through), ``"fuse"`` (local rewrites
    only) or ``"full"`` (local rewrites plus cascade collapse).  Returns
    ``(optimized_plan, report)``; the input plan is never mutated.  The
    FFT backend is only needed for ``"full"`` (the collapse executes the
    transposed chain to build the operator).
    """
    if optimize not in OPTIMIZE_LEVELS:
        raise ValueError(f"optimize must be one of {OPTIMIZE_LEVELS}, got {optimize!r}")
    before = count_ops(plan)
    report = {
        "optimize": optimize,
        "ops_before": before,
        "fft_ops_before": _fft_op_count(before),
        "passes": [],
        "collapsed": False,
    }
    result = plan
    if optimize != "none":
        applied: List[str] = []
        branches = []
        for branch in plan.branches:
            simplified, fired = _simplify_branch(branch.ops)
            applied.extend(name for name in fired if name not in applied)
            branches.append(Branch(ops=simplified, channel=branch.channel))
        result = Plan(
            kind=plan.kind,
            grid=plan.grid,
            cdtype=plan.cdtype,
            branches=branches,
            tail=list(plan.tail),
            num_outputs=plan.num_outputs,
            num_channels=plan.num_channels,
            read_matrix=plan.read_matrix,
        )
        report["passes"] = applied
        if optimize == "full":
            if fft is None:
                raise ValueError("optimize='full' needs the FFT backend to build the collapsed operator")
            collapsed = collapse_cascade(result, fft, max_operator_bytes)
            if collapsed is not None:
                result = collapsed
                report["passes"] = applied + ["collapse_cascade"]
                report["collapsed"] = True
    after = count_ops(result)
    report["ops_after"] = after
    report["fft_ops_after"] = _fft_op_count(after)
    return result, report
