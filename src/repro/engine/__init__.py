"""Inference engine: autograd-free batched serving of trained DONNs.

Public surface:

* :func:`compile` -- the one front door: lower a trained ``DONN`` /
  ``MultiChannelDONN`` / ``SegmentationDONN`` (or a
  :class:`SessionSpec`) to the :mod:`~repro.engine.plan` IR, run the
  :mod:`~repro.engine.passes` optimizations (fusion, FFT-pair
  cancellation, dead-kernel elimination, cascade collapse), and emit an
  :class:`InferenceSession`.
* :class:`InferenceSession` -- the thin executor over the emitted plan
  (batching, streaming, ``plan_summary()`` introspection).  Direct
  construction is deprecated in favor of :func:`compile`;
  :func:`compile_model` is a thin functional alias.
* :func:`get_fft_backend` / :func:`available_backends` -- the FFT
  dispatch layer (scipy with thread workers when installed, numpy
  fallback otherwise).
* :class:`SessionSpec` -- picklable recipe (``session.to_spec()`` /
  ``spec.build()``) that lets ``repro.cluster`` rebuild the session in a
  spawned worker process.
* :mod:`repro.engine.plan` / :mod:`repro.engine.passes` -- the plan IR
  (``lower`` / ``emit`` / ``format_plan``) and its optimization passes
  (``optimize_plan``), for tooling such as ``tools/dump_plan.py``.
"""

from repro.engine.backends import (
    NumpyFFTBackend,
    ScipyFFTBackend,
    available_backends,
    get_fft_backend,
)
from repro.engine.passes import OPTIMIZE_LEVELS, optimize_plan
from repro.engine.plan import Plan, count_ops, emit, format_plan, lower
from repro.engine.session import (
    COMPLEX64_LOGIT_ATOL,
    InferenceSession,
    compile,
    compile_model,
)
from repro.engine.spec import SessionSpec

__all__ = [
    "compile",
    "InferenceSession",
    "compile_model",
    "SessionSpec",
    "COMPLEX64_LOGIT_ATOL",
    "OPTIMIZE_LEVELS",
    "Plan",
    "lower",
    "emit",
    "count_ops",
    "format_plan",
    "optimize_plan",
    "available_backends",
    "get_fft_backend",
    "NumpyFFTBackend",
    "ScipyFFTBackend",
]
