"""Inference engine: autograd-free batched serving of trained DONNs.

Public surface:

* :class:`InferenceSession` / :func:`compile_model` -- compile a trained
  ``DONN`` / ``MultiChannelDONN`` / ``SegmentationDONN`` into a cached,
  streaming, autograd-free execution plan.
* :func:`get_fft_backend` / :func:`available_backends` -- the FFT
  dispatch layer (scipy with thread workers when installed, numpy
  fallback otherwise).
* :class:`SessionSpec` -- picklable recipe (``session.to_spec()`` /
  ``spec.build()``) that lets ``repro.cluster`` rebuild the session in a
  spawned worker process.
"""

from repro.engine.backends import (
    NumpyFFTBackend,
    ScipyFFTBackend,
    available_backends,
    get_fft_backend,
)
from repro.engine.session import COMPLEX64_LOGIT_ATOL, InferenceSession, compile_model
from repro.engine.spec import SessionSpec

__all__ = [
    "InferenceSession",
    "compile_model",
    "SessionSpec",
    "COMPLEX64_LOGIT_ATOL",
    "available_backends",
    "get_fft_backend",
    "NumpyFFTBackend",
    "ScipyFFTBackend",
]
