"""The inference engine's plan IR: typed ops between spec and backend.

The engine used to compile a model straight into closures inside
``InferenceSession.__init__``; there was no artefact *between* "trained
model" and "callable program" that optimization could inspect.  This
module introduces that artefact, in the spirit of tinygrad's
schedule/compile split: a declarative model (or
:class:`~repro.engine.SessionSpec`) is **lowered** to a :class:`Plan` —
a small list of typed ops per optical branch — which
:mod:`repro.engine.passes` rewrites (fusion, folding, dead-kernel
elimination, cascade collapse) before :func:`emit` turns it into the
numpy program the session executes.

The pipeline is::

    model / SessionSpec
        │ lower()                (snapshot eval-mode arrays, build ops)
        ▼
    Plan: [Encode, FFT, PointwiseMul, IFFT, PointwiseMul, ..., Intensity]
        │ passes.optimize_plan() (fuse / fold / eliminate / collapse)
        ▼
    Plan': e.g. [Encode, DetectorOperator]
        │ emit()                 (close ops over the FFT backend)
        ▼
    CompiledProgram              (what InferenceSession.run drives)

Op vocabulary
-------------

``Encode``          image batch -> complex field (or real amplitude)
``FFT`` / ``IFFT``  2-D transforms, with optional zero-pad / centre-crop
``Pad`` / ``Crop``  standalone border ops (produced by transposition)
``PointwiseMul``    element-wise multiply by a cached array (a diffraction
                    transfer function in the frequency domain, a phase
                    modulation or Fraunhofer prefactor in the spatial one)
``Nonlinear``       an optical nonlinearity's point-wise ndarray map
``Skip``            optical skip connection around a nested op list
``Intensity``       complex field -> ``|field|^2``
``DetectorOperator``fused linear cascade: real amplitude -> per-pixel
                    intensity at the detector read-out pixels (see
                    ``passes.collapse_cascade``)
``ReadIntensity``   intensity -> per-class logits via the read-out matrix

All arrays an op carries are plain ndarrays snapshotted in eval mode, so
a ``Plan`` is inert data: it can be printed (``format_plan``), counted
(``count_ops``), rewritten by passes, and emitted any number of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.layers.encoding import data_to_cplex, resize_images
from repro.layers.nonlinearity import NonlinearLayer
from repro.models.donn import DONN
from repro.models.multichannel import MultiChannelDONN
from repro.models.segmentation import SegmentationDONN
from repro.optics.propagation import FraunhoferPropagator, Propagator

__all__ = [
    "Op",
    "Encode",
    "FFT",
    "IFFT",
    "Pad",
    "Crop",
    "PointwiseMul",
    "Nonlinear",
    "Skip",
    "Intensity",
    "DetectorOperator",
    "ReadIntensity",
    "Branch",
    "Plan",
    "lower",
    "emit",
    "emit_ops",
    "count_ops",
    "format_plan",
]

FieldFn = Callable[[np.ndarray], np.ndarray]


def _real_dtype(cdtype: np.dtype) -> np.dtype:
    return np.dtype(np.float32 if np.dtype(cdtype) == np.complex64 else np.float64)


# --------------------------------------------------------------------- #
# Op vocabulary
# --------------------------------------------------------------------- #
@dataclass(eq=False)
class Op:
    """Base class for plan ops (carries nothing; subclasses hold arrays)."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(eq=False)
class Encode(Op):
    """Image batch -> input wavefield on the grid.

    ``mode="field"`` produces the complex field (``sqrt(I) * af * e^{j0}``,
    exactly :func:`~repro.layers.encoding.data_to_cplex`); the collapse
    pass rewrites it to ``mode="amplitude"``, the real amplitude only —
    valid because the encoded phase is a constant, which is invisible to
    detector intensity.  ``scale`` carries the multi-channel beam-splitter
    factor.
    """

    amplitude_factor: float = 1.0
    scale: float = 1.0
    mode: str = "field"  # "field" | "amplitude"

    def describe(self) -> str:
        extra = "" if self.mode == "field" else ", amplitude"
        scale = "" if self.scale == 1.0 else f", scale={self.scale:.4g}"
        return f"Encode(af={self.amplitude_factor:g}{scale}{extra})"


@dataclass(eq=False)
class FFT(Op):
    """Forward 2-D FFT; ``pad`` zero-pads the border first, ``centered``
    is the ``fftshift(fft2(ifftshift(.)))`` form used by Fraunhofer."""

    pad: int = 0
    centered: bool = False

    def describe(self) -> str:
        bits = [b for b in (f"pad={self.pad}" if self.pad else "", "centered" if self.centered else "") if b]
        return f"FFT({', '.join(bits)})"


@dataclass(eq=False)
class IFFT(Op):
    """Inverse 2-D FFT; ``crop`` removes a zero-pad border afterwards."""

    crop: int = 0

    def describe(self) -> str:
        return f"IFFT({f'crop={self.crop}' if self.crop else ''})"


@dataclass(eq=False)
class Pad(Op):
    """Standalone zero-pad border (appears in transposed linear chains)."""

    width: int = 0

    def describe(self) -> str:
        return f"Pad({self.width})"


@dataclass(eq=False)
class Crop(Op):
    """Standalone centre-crop border (appears in transposed linear chains)."""

    width: int = 0

    def describe(self) -> str:
        return f"Crop({self.width})"


@dataclass(eq=False)
class PointwiseMul(Op):
    """Element-wise multiply by a cached complex array.

    ``domain`` records which basis the multiply is diagonal in:
    ``"freq"`` for diffraction transfer functions (between FFT and IFFT)
    and ``"space"`` for phase modulations / the Fraunhofer prefactor.
    Fusion treats any two adjacent multiplies as one product; the domain
    tag is for introspection and plan dumps.
    """

    values: np.ndarray = None
    domain: str = "space"
    label: str = ""

    def describe(self) -> str:
        shape = "x".join(str(s) for s in self.values.shape)
        label = f" ({self.label})" if self.label else ""
        return f"PointwiseMul[{self.domain} {shape}]{label}"


@dataclass(eq=False)
class Nonlinear(Op):
    """A point-wise optical nonlinearity (compile barrier for fusion)."""

    layer: NonlinearLayer = None
    label: str = ""

    def describe(self) -> str:
        return f"Nonlinear({self.label or type(self.layer).__name__})"


@dataclass(eq=False)
class Skip(Op):
    """Optical skip connection: ``through * body(field) + bypass * field``."""

    body: List[Op] = dataclass_field(default_factory=list)
    through_amplitude: float = 1.0
    bypass_amplitude: float = 0.0

    def describe(self) -> str:
        return (
            f"Skip(through={self.through_amplitude:.4g}, bypass={self.bypass_amplitude:.4g}, "
            f"body={len(self.body)} ops)"
        )


@dataclass(eq=False)
class Intensity(Op):
    """Complex field -> real intensity ``|field|^2``."""


@dataclass(eq=False)
class DetectorOperator(Op):
    """A whole linear optical cascade folded to one precomputed operator.

    Maps the real input amplitude straight to the light intensity at the
    ``pixels`` the detector actually reads: with ``A`` the cascade's
    linear operator restricted to those output pixels,
    ``intensity = (amp @ Re A)^2 + (amp @ Im A)^2``.  Two real GEMMs
    replace every FFT round trip of the cascade.
    """

    op_real: np.ndarray = None  # (N*N, P)
    op_imag: np.ndarray = None  # (N*N, P)
    pixels: np.ndarray = None  # (P,) flat detector-plane indices

    def describe(self) -> str:
        cells, pix = self.op_real.shape
        return f"DetectorOperator({cells}->{pix} px)"


@dataclass(eq=False)
class ReadIntensity(Op):
    """Intensity -> per-class logits via the detector read-out matrix.

    ``from_plane`` distinguishes a full ``(..., N, N)`` intensity image
    (flattened before the matmul) from the already-flat per-pixel vector
    a :class:`DetectorOperator` produces.
    """

    matrix: np.ndarray = None  # (pixels, num_classes)
    from_plane: bool = True

    def describe(self) -> str:
        pixels, classes = self.matrix.shape
        return f"ReadIntensity({pixels} px -> {classes} classes)"


# --------------------------------------------------------------------- #
# Plan container
# --------------------------------------------------------------------- #
@dataclass(eq=False)
class Branch:
    """One optical path: ops from image batch to detector-plane intensity.

    ``channel`` selects the input slice for multi-channel models
    (``images[..., channel, :, :]``); ``None`` consumes the whole input.
    """

    ops: List[Op]
    channel: Optional[int] = None


@dataclass(eq=False)
class Plan:
    """A lowered model: branches of typed ops plus a shared read-out tail.

    Execution semantics (what :func:`emit` implements): every branch maps
    its input slice to a detector-plane intensity; branch intensities add
    (incoherent multi-channel detection); the ``tail`` ops map the summed
    intensity to the output (per-class logits for classifiers, nothing
    further for segmentation).
    """

    kind: str  # "classifier" | "segmentation"
    grid: object  # SpatialGrid
    cdtype: np.dtype
    branches: List[Branch]
    tail: List[Op]
    num_outputs: Optional[int] = None
    num_channels: Optional[int] = None
    read_matrix: Optional[np.ndarray] = None  # full-plane (N*N, C), rdtype

    @property
    def rdtype(self) -> np.dtype:
        return _real_dtype(self.cdtype)

    @property
    def collapsed(self) -> bool:
        """True when the cascade folded into precomputed operators."""
        return any(isinstance(op, DetectorOperator) for branch in self.branches for op in branch.ops)


def count_ops(plan: Plan) -> dict:
    """Op counts by type name, recursing into skip bodies (sorted keys)."""

    counts: dict = {}

    def visit(ops: Sequence[Op]) -> None:
        for op in ops:
            counts[type(op).__name__] = counts.get(type(op).__name__, 0) + 1
            if isinstance(op, Skip):
                visit(op.body)

    for branch in plan.branches:
        visit(branch.ops)
    visit(plan.tail)
    return dict(sorted(counts.items()))


def format_plan(plan: Plan, indent: str = "") -> str:
    """Human-readable op listing (what ``tools/dump_plan.py`` prints)."""

    lines: List[str] = []

    def visit(ops: Sequence[Op], depth: int) -> None:
        pad = indent + "  " * depth
        for op in ops:
            lines.append(f"{pad}{op.describe()}")
            if isinstance(op, Skip):
                visit(op.body, depth + 1)

    for index, branch in enumerate(plan.branches):
        if plan.num_channels is not None:
            lines.append(f"{indent}branch[channel={branch.channel}]:")
        elif len(plan.branches) > 1:  # pragma: no cover - no such family yet
            lines.append(f"{indent}branch[{index}]:")
        else:
            lines.append(f"{indent}branch:")
        visit(branch.ops, 1)
    if plan.tail:
        lines.append(f"{indent}tail:")
        visit(plan.tail, 1)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Lowering: model -> Plan
# --------------------------------------------------------------------- #
def _snapshot_modulation(layer, cdtype: np.dtype) -> np.ndarray:
    with no_grad():
        return np.ascontiguousarray(layer.modulation().data).astype(cdtype, copy=False)


def _lower_propagator(propagator: Propagator, cdtype: np.dtype) -> List[Op]:
    if isinstance(propagator, FraunhoferPropagator):
        prefactor = np.ascontiguousarray(propagator._prefactor_tensor().data).astype(cdtype, copy=False)
        return [
            FFT(centered=True),
            PointwiseMul(values=prefactor, domain="space", label="fraunhofer_prefactor"),
        ]
    transfer = np.ascontiguousarray(propagator.transfer_function).astype(cdtype, copy=False)
    pad = (propagator._work_grid.size - propagator.grid.size) // 2
    return [
        FFT(pad=pad),
        PointwiseMul(values=transfer, domain="freq", label=propagator.name),
        IFFT(crop=pad),
    ]


def _lower_nonlinearity(nonlinearity) -> Nonlinear:
    if isinstance(nonlinearity, NonlinearLayer) or hasattr(nonlinearity, "apply_numpy"):
        return Nonlinear(layer=nonlinearity, label=type(nonlinearity).__name__)
    raise TypeError(
        f"cannot compile nonlinearity {type(nonlinearity).__name__}: "
        "engine compilation needs a NonlinearLayer (or any module exposing apply_numpy)"
    )


def _lower_stack(layers, cdtype: np.dtype, nonlinearity=None) -> List[Op]:
    nonlinear_op = _lower_nonlinearity(nonlinearity) if nonlinearity is not None else None
    ops: List[Op] = []
    for layer in layers:
        ops.extend(_lower_propagator(layer.propagator, cdtype))
        ops.append(PointwiseMul(values=_snapshot_modulation(layer, cdtype), domain="space", label="modulation"))
        if nonlinear_op is not None:
            ops.append(Nonlinear(layer=nonlinear_op.layer, label=nonlinear_op.label))
    return ops


def _read_matrix(model, rdtype: np.dtype) -> np.ndarray:
    return np.ascontiguousarray(model.detector.read_matrix()).astype(rdtype, copy=False)


def _lower_donn(model: DONN, cdtype: np.dtype) -> Plan:
    config = model.config
    ops: List[Op] = [Encode(amplitude_factor=config.amplitude_factor)]
    ops.extend(_lower_stack(model.diffractive_layers, cdtype, model.nonlinearity))
    ops.extend(_lower_propagator(model.final_propagator, cdtype))
    ops.append(Intensity())
    read = _read_matrix(model, _real_dtype(cdtype))
    return Plan(
        kind="classifier",
        grid=config.grid,
        cdtype=cdtype,
        branches=[Branch(ops=ops)],
        tail=[ReadIntensity(matrix=read, from_plane=True)],
        num_outputs=model.detector.num_classes,
        read_matrix=read,
    )


def _lower_multichannel(model: MultiChannelDONN, cdtype: np.dtype) -> Plan:
    config = model.config
    branches: List[Branch] = []
    for index, channel in enumerate(model.channels):
        ops: List[Op] = [Encode(amplitude_factor=config.amplitude_factor, scale=model._channel_scale)]
        ops.extend(_lower_stack(channel, cdtype, model.nonlinearity))
        ops.extend(_lower_propagator(model.final_propagator, cdtype))
        ops.append(Intensity())
        branches.append(Branch(ops=ops, channel=index))
    read = _read_matrix(model, _real_dtype(cdtype))
    return Plan(
        kind="classifier",
        grid=config.grid,
        cdtype=cdtype,
        branches=branches,
        tail=[ReadIntensity(matrix=read, from_plane=True)],
        num_outputs=model.detector.num_classes,
        num_channels=model.num_channels,
        read_matrix=read,
    )


def _lower_segmentation(model: SegmentationDONN, cdtype: np.dtype) -> Plan:
    config = model.config
    nonlinearity = model.nonlinearity
    ops: List[Op] = [Encode(amplitude_factor=config.amplitude_factor)]
    ops.extend(_lower_stack([model.entry_layer], cdtype, nonlinearity))
    if model.use_skip:
        skip_weight = model.inner.skip_weight
        ops.append(
            Skip(
                body=_lower_stack(model.inner.body, cdtype, nonlinearity),
                through_amplitude=float(np.sqrt(1.0 - skip_weight)),
                bypass_amplitude=float(np.sqrt(skip_weight)),
            )
        )
    else:
        ops.extend(_lower_stack(model.inner, cdtype, nonlinearity))
    ops.extend(_lower_stack([model.exit_layer], cdtype, nonlinearity))
    ops.extend(_lower_propagator(model.final_propagator, cdtype))
    ops.append(Intensity())
    return Plan(
        kind="segmentation",
        grid=config.grid,
        cdtype=cdtype,
        branches=[Branch(ops=ops)],
        tail=[],
    )


def lower(model, dtype="complex128") -> Plan:
    """Lower a trained model to a :class:`Plan`, snapshotting in eval mode.

    The model's train/eval mode is restored afterwards; later parameter
    updates do **not** propagate into the plan's cached arrays.  Raises
    ``TypeError`` for anything but the three compilable model families.
    """
    cdtype = np.dtype(dtype)
    if isinstance(model, SegmentationDONN):
        lower_fn = _lower_segmentation
    elif isinstance(model, MultiChannelDONN):
        lower_fn = _lower_multichannel
    elif isinstance(model, DONN):
        lower_fn = _lower_donn
    else:
        raise TypeError(
            f"cannot compile {type(model).__name__}; expected DONN, MultiChannelDONN or SegmentationDONN"
        )
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            return lower_fn(model, cdtype)
    finally:
        model.train(was_training)


# --------------------------------------------------------------------- #
# Emission: Plan -> CompiledProgram
# --------------------------------------------------------------------- #
def _encode_amplitude(images: np.ndarray, grid, amplitude_factor: float, rdtype: np.dtype) -> np.ndarray:
    """The real amplitude :func:`data_to_cplex` would put on the wave.

    Identical numerics to the field encode with the constant phase
    dropped: ``sqrt(clip(I, 0, -)) * amplitude_factor``.
    """
    array = np.asarray(images, dtype=float)
    if array.shape[-1] != grid.size:
        array = resize_images(array, grid.size)
    amplitude = np.sqrt(np.clip(array, 0.0, None)) * amplitude_factor
    return amplitude.astype(rdtype, copy=False)


def _pad2d(field: np.ndarray, width: int) -> np.ndarray:
    widths = [(0, 0)] * (field.ndim - 2) + [(width, width), (width, width)]
    return np.pad(field, widths, mode="constant")


def _emit_op(op: Op, fft, cdtype: np.dtype) -> FieldFn:
    """Close one op over the FFT backend.

    Emitted pipelines own their intermediates: every array reaching a
    ``PointwiseMul`` was freshly allocated by an upstream op (or by the
    caller, for hand-built pipelines), so the in-place multiply is safe.
    """
    if isinstance(op, Encode):
        # Encode needs the plan's grid; CompiledProgram binds it directly.
        raise TypeError("Encode ops are emitted by CompiledProgram, not _emit_op")

    if isinstance(op, FFT):
        pad, centered = op.pad, op.centered
        if centered:

            def centered_fft(field: np.ndarray) -> np.ndarray:
                shifted = np.fft.ifftshift(field, axes=(-2, -1))
                return np.fft.fftshift(fft.fft2(shifted), axes=(-2, -1))

            return centered_fft

        def forward(field: np.ndarray) -> np.ndarray:
            if pad:
                field = _pad2d(field, pad)
            return fft.fft2(field)

        return forward

    if isinstance(op, IFFT):
        crop = op.crop

        def inverse(spectrum: np.ndarray) -> np.ndarray:
            out = fft.ifft2(spectrum)
            if crop:
                out = out[..., crop:-crop, crop:-crop]
            return out

        return inverse

    if isinstance(op, Pad):
        width = op.width
        return lambda field: _pad2d(field, width)

    if isinstance(op, Crop):
        width = op.width
        return lambda field: field[..., width:-width, width:-width]

    if isinstance(op, PointwiseMul):
        values = op.values

        def multiply(field: np.ndarray) -> np.ndarray:
            field *= values
            return field

        return multiply

    if isinstance(op, Nonlinear):
        return op.layer.apply_numpy

    if isinstance(op, Skip):
        body = _emit_chain(op.body, fft, cdtype)
        through, bypass = op.through_amplitude, op.bypass_amplitude

        def skip(field: np.ndarray) -> np.ndarray:
            processed = body((field * through).astype(cdtype, copy=False))
            return processed + (field * bypass).astype(cdtype, copy=False)

        return skip

    if isinstance(op, Intensity):
        return lambda field: (field * np.conj(field)).real

    if isinstance(op, DetectorOperator):
        op_real, op_imag = op.op_real, op.op_imag
        cells = op_real.shape[0]

        def fused(amplitude: np.ndarray) -> np.ndarray:
            flat = amplitude.reshape(amplitude.shape[:-2] + (cells,))
            real_part = flat @ op_real
            imag_part = flat @ op_imag
            real_part *= real_part
            imag_part *= imag_part
            real_part += imag_part
            return real_part

        return fused

    if isinstance(op, ReadIntensity):
        matrix = op.matrix
        if op.from_plane:

            def read_plane(intensity: np.ndarray) -> np.ndarray:
                pixels = intensity.shape[-2] * intensity.shape[-1]
                flat = intensity.reshape(intensity.shape[:-2] + (pixels,))
                return flat @ matrix

            return read_plane
        return lambda intensity: intensity @ matrix

    raise TypeError(f"cannot emit op {type(op).__name__}")  # pragma: no cover - guarded by lowering


def _emit_chain(ops: Sequence[Op], fft, cdtype: np.dtype) -> FieldFn:
    fns = [_emit_op(op, fft, cdtype) for op in ops]

    def run(field: np.ndarray) -> np.ndarray:
        for fn in fns:
            field = fn(field)
        return field

    return run


def emit_ops(ops: Sequence[Op], fft, cdtype) -> FieldFn:
    """Emit a bare op chain (no :class:`Encode`) as one callable.

    Used by the passes to *execute* a linear sub-chain while building the
    collapsed operator; the input array must be owned by the caller (the
    chain multiplies in place).
    """
    cdtype = np.dtype(cdtype)
    if any(isinstance(op, Encode) for op in ops):
        raise ValueError("emit_ops() emits bare chains; Encode needs the plan context (use emit())")
    return _emit_chain(ops, fft, cdtype)


class CompiledProgram:
    """An emitted plan: the flat numpy program ``InferenceSession`` drives.

    ``run`` maps an image batch to the model output (logits or intensity
    map).  ``intensity`` exposes the full detector-plane intensity and is
    ``None`` on collapsed programs (the fold computes only the read-out
    pixels); the session keeps an unoptimized reference program for that.
    """

    def __init__(self, plan: Plan, fft):
        self.plan = plan
        self.kind = plan.kind
        self.grid = plan.grid
        self.cdtype = plan.cdtype
        self.rdtype = plan.rdtype
        self.num_outputs = plan.num_outputs
        self.num_channels = plan.num_channels
        self.expects_channels = plan.num_channels is not None
        self.collapsed = plan.collapsed
        self.read_matrix = plan.read_matrix
        self._branches: List[Tuple[Optional[int], FieldFn]] = []
        for branch in plan.branches:
            encode_op = branch.ops[0]
            if not isinstance(encode_op, Encode):  # pragma: no cover - lowering invariant
                raise TypeError("every branch must start with an Encode op")
            chain = _emit_chain(branch.ops[1:], fft, plan.cdtype)
            self._branches.append((branch.channel, self._bind_encode(encode_op, chain)))
        self._tail = [_emit_op(op, fft, plan.cdtype) for op in plan.tail]

    def _bind_encode(self, op: Encode, chain: FieldFn) -> FieldFn:
        grid = self.grid
        cdtype, rdtype = self.cdtype, self.rdtype
        amplitude_factor, scale, mode = op.amplitude_factor, op.scale, op.mode

        if mode == "amplitude":

            def run_amplitude(images: np.ndarray) -> np.ndarray:
                amplitude = _encode_amplitude(images, grid, amplitude_factor, rdtype)
                if scale != 1.0:
                    amplitude = amplitude * rdtype.type(scale)
                return chain(amplitude)

            return run_amplitude

        def run_field(images: np.ndarray) -> np.ndarray:
            field = np.asarray(
                data_to_cplex(images, grid=grid, amplitude_factor=amplitude_factor).data
            ).astype(cdtype, copy=False)
            if scale != 1.0:
                field = field * scale
                field = field.astype(cdtype, copy=False)
            elif not field.flags.owndata:  # astype(copy=False) may alias the tensor
                field = field.copy()
            return chain(field)

        return run_field

    # ------------------------------------------------------------------ #
    def _branch_intensity(self, images: np.ndarray) -> np.ndarray:
        if self.expects_channels:
            if images.shape[-3] != self.num_channels:
                raise ValueError(f"expected {self.num_channels} channels, got {images.shape[-3]}")
            total: Optional[np.ndarray] = None
            for channel, branch_fn in self._branches:
                contribution = branch_fn(images[..., channel, :, :])
                total = contribution if total is None else total + contribution
            return total
        (_, branch_fn), = self._branches
        return branch_fn(images)

    def run(self, images: np.ndarray) -> np.ndarray:
        out = self._branch_intensity(images)
        for tail_fn in self._tail:
            out = tail_fn(out)
        return out

    @property
    def intensity(self):
        """Full detector-plane intensity fn, or ``None`` when collapsed."""
        if self.collapsed:
            return None
        return self._branch_intensity

    def read(self, intensity: np.ndarray) -> np.ndarray:
        """Integrate a full-plane intensity over the per-class regions."""
        pixels = intensity.shape[-2] * intensity.shape[-1]
        flat = intensity.reshape(intensity.shape[:-2] + (pixels,))
        return flat @ self.read_matrix


def emit(plan: Plan, fft) -> CompiledProgram:
    """Emit a plan into an executable :class:`CompiledProgram`."""
    return CompiledProgram(plan, fft)
