"""LightRidge-DSE: architectural design space exploration (Section 4).

* :mod:`~repro.dse.space` -- the DONN design space (diffraction unit size,
  diffraction distance, wavelength, system size, device precision), grid
  sweeps, and two design-point evaluators: full emulation training and a
  fast physics prior based on the maximum half-cone diffraction angle
  theory.
* :mod:`~repro.dse.gbr` -- gradient-boosted regression trees implemented
  from scratch (scikit-learn is unavailable offline), the analytical
  model family the paper uses.
* :mod:`~repro.dse.analytical` -- the analytical-model DSE engine: train
  on swept wavelengths, predict the design space at a new wavelength,
  recommend design points, and verify with a handful of emulation runs.
* :mod:`~repro.dse.sensitivity` -- single-parameter sensitivity analysis
  around the chosen design point (Table 3).
"""

from repro.dse.space import (
    DesignPoint,
    DesignSpace,
    physics_prior_accuracy,
    diffraction_spread_units,
    evaluate_design_point,
    sweep_design_space,
)
from repro.dse.gbr import DecisionTreeRegressor, GradientBoostingRegressor
from repro.dse.analytical import AnalyticalDSEModel, DSEResult, run_analytical_dse
from repro.dse.sensitivity import sensitivity_analysis, SensitivityRow

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "physics_prior_accuracy",
    "diffraction_spread_units",
    "evaluate_design_point",
    "sweep_design_space",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "AnalyticalDSEModel",
    "DSEResult",
    "run_analytical_dse",
    "sensitivity_analysis",
    "SensitivityRow",
]
