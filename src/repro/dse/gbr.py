"""Gradient-boosted regression trees, implemented from scratch.

The paper's analytical DSE model is a scikit-learn gradient boosting
regressor (n_estimators=3500, learning_rate=0.2, max_depth=3).  Offline,
scikit-learn is unavailable, so this module provides a compact but
faithful implementation: CART regression trees with exact split search on
(small) continuous feature matrices, boosted on the squared-error loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _Node:
    """A binary tree node; leaves carry a constant prediction."""

    value: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """A CART regression tree minimising squared error.

    Exact split search over every (feature, midpoint) candidate; intended
    for the small tabular datasets of DSE (hundreds of rows, a handful of
    features), not for large-scale learning.
    """

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 1):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).ravel()
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array (rows, columns)")
        if len(features) != len(targets):
            raise ValueError("features and targets disagree in length")
        self._root = self._grow(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree must be fitted before prediction")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        return np.array([self._predict_row(row) for row in features])

    # ------------------------------------------------------------------ #
    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        value = float(targets.mean())
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf or np.allclose(targets, value):
            return _Node(value=value)
        split = self._best_split(features, targets)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        mask = features[:, feature] <= threshold
        left = self._grow(features[mask], targets[mask], depth + 1)
        right = self._grow(features[~mask], targets[~mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, features: np.ndarray, targets: np.ndarray) -> Optional[Tuple[int, float]]:
        best_gain = 0.0
        best: Optional[Tuple[int, float]] = None
        total_sse = float(((targets - targets.mean()) ** 2).sum())
        for feature in range(features.shape[1]):
            column = features[:, feature]
            order = np.argsort(column)
            sorted_column = column[order]
            sorted_targets = targets[order]
            # Prefix sums allow O(n) evaluation of every split position.
            prefix_sum = np.cumsum(sorted_targets)
            prefix_sq = np.cumsum(sorted_targets**2)
            total_sum = prefix_sum[-1]
            total_sq = prefix_sq[-1]
            count = len(targets)
            for index in range(self.min_samples_leaf, count - self.min_samples_leaf + 1):
                if index < count and sorted_column[index - 1] == sorted_column[index]:
                    continue  # cannot split between equal feature values
                if index >= count:
                    continue
                left_n = index
                right_n = count - index
                left_sum = prefix_sum[index - 1]
                left_sq = prefix_sq[index - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                left_sse = left_sq - left_sum**2 / left_n
                right_sse = right_sq - right_sum**2 / right_n
                gain = total_sse - (left_sse + right_sse)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    threshold = 0.5 * (sorted_column[index - 1] + sorted_column[index])
                    best = (feature, float(threshold))
        return best


class GradientBoostingRegressor:
    """Least-squares gradient boosting over CART trees.

    Matches the interface subset the DSE engine needs: ``fit`` and
    ``predict`` with the paper's hyper-parameters (``n_estimators``,
    ``learning_rate``, ``max_depth``, ``random_state``).  ``random_state``
    controls optional row subsampling; with ``subsample=1.0`` the fit is
    deterministic regardless of the seed.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._base_prediction = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).ravel()
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        self._base_prediction = float(targets.mean())
        current = np.full_like(targets, self._base_prediction)
        for _ in range(self.n_estimators):
            residuals = targets - current
            if self.subsample < 1.0:
                chosen = rng.random(len(targets)) < self.subsample
                if chosen.sum() < 2 * self.min_samples_leaf:
                    chosen = np.ones(len(targets), dtype=bool)
            else:
                chosen = np.ones(len(targets), dtype=bool)
            tree = DecisionTreeRegressor(max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf)
            tree.fit(features[chosen], residuals[chosen])
            update = tree.predict(features)
            current = current + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model must be fitted before prediction")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        prediction = np.full(len(features), self._base_prediction)
        for tree in self._trees:
            prediction = prediction + self.learning_rate * tree.predict(features)
        return prediction

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R^2 (as in scikit-learn)."""
        targets = np.asarray(targets, dtype=float).ravel()
        prediction = self.predict(features)
        residual = float(((targets - prediction) ** 2).sum())
        total = float(((targets - targets.mean()) ** 2).sum())
        if total == 0:
            return 0.0 if residual > 0 else 1.0
        return 1.0 - residual / total
