"""Single-parameter sensitivity analysis around a chosen design point (Table 3).

The paper perturbs the DSE-selected best design by +/-5% and +/-10% in
wavelength, diffraction distance and diffraction unit size (one at a
time) and reports the resulting accuracy, finding the unit size to be the
most sensitive parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


from repro.dse.space import physics_prior_accuracy


@dataclass(frozen=True)
class SensitivityRow:
    """Accuracy of the system with one parameter shifted by a relative amount."""

    parameter: str
    shift: float
    value: float
    accuracy: float


def sensitivity_analysis(
    wavelength: float,
    unit_size: float,
    distance: float,
    shifts: Sequence[float] = (-0.10, -0.05, 0.0, 0.05, 0.10),
    evaluator: Callable[[float, float, float], float] | None = None,
) -> List[SensitivityRow]:
    """Evaluate accuracy under single-parameter relative shifts.

    ``evaluator(wavelength, unit_size, distance) -> accuracy`` defaults to
    the physics prior surrogate; pass a training-based closure for ground
    truth measurements.
    """
    evaluator = evaluator or (lambda wl, d, z: physics_prior_accuracy(wl, d, z))
    baseline = {"wavelength": wavelength, "unit_size": unit_size, "distance": distance}
    rows: List[SensitivityRow] = []
    for parameter in ("wavelength", "distance", "unit_size"):
        for shift in shifts:
            values = dict(baseline)
            values[parameter] = baseline[parameter] * (1.0 + shift)
            accuracy = float(evaluator(values["wavelength"], values["unit_size"], values["distance"]))
            rows.append(
                SensitivityRow(parameter=parameter, shift=float(shift), value=values[parameter], accuracy=accuracy)
            )
    return rows


def most_sensitive_parameter(rows: Sequence[SensitivityRow]) -> str:
    """The parameter whose +/-5% shifts cause the largest accuracy drop."""
    drops: Dict[str, float] = {}
    nominal = {row.parameter: row.accuracy for row in rows if row.shift == 0.0}
    for row in rows:
        if abs(abs(row.shift) - 0.05) < 1e-9:
            drop = nominal[row.parameter] - row.accuracy
            drops[row.parameter] = max(drops.get(row.parameter, 0.0), drop)
    return max(drops, key=drops.get)
