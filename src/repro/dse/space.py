"""The DONN design space and design-point evaluators.

The paper explores two physical architectural parameters under a fixed
laser wavelength: the diffraction unit size ``d`` and the diffraction
distance ``D`` (Figure 5), plus the spatial parameters (system size,
device precision).  Each candidate point can be scored two ways:

* :func:`evaluate_design_point` -- the ground truth: build a DONN with
  those parameters and train it briefly on a classification task (what
  the paper does for its 121-point grids, scaled down here).
* :func:`physics_prior_accuracy` -- a fast analytical surrogate derived
  from the maximum half-cone diffraction angle theory [Chen et al. 2021]
  the paper cites: accuracy is high when light from one unit spreads over
  a moderate neighbourhood of units on the next layer, and collapses when
  the spread is too small (no inter-unit connectivity) or too large
  (energy leaves the aperture).  The surrogate is used where the paper
  uses already-collected emulation data, keeping test and bench runtimes
  tractable; the Figure 5 bench cross-checks it against real training on
  a coarse grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.models.config import DONNConfig


@dataclass(frozen=True)
class DesignPoint:
    """One candidate DONN design and its (predicted or measured) accuracy."""

    wavelength: float
    unit_size: float
    distance: float
    accuracy: float

    def features(self) -> np.ndarray:
        """Feature vector used by the analytical regression model."""
        return np.array([self.wavelength, self.unit_size, self.distance], dtype=float)


@dataclass(frozen=True)
class DesignSpace:
    """A grid over (unit size, distance) at a fixed wavelength.

    The paper sweeps the unit size from 10 to 110 wavelengths and the
    distance from 0.1 m to 0.6 m on an 11 x 11 grid.
    """

    wavelength: float
    unit_sizes_in_wavelengths: Tuple[float, ...] = tuple(np.linspace(10, 110, 11))
    distances: Tuple[float, ...] = tuple(np.linspace(0.1, 0.6, 11))

    def unit_sizes(self) -> np.ndarray:
        """Absolute unit sizes in metres."""
        return np.asarray(self.unit_sizes_in_wavelengths) * self.wavelength

    def grid(self) -> List[Tuple[float, float]]:
        """All (unit_size, distance) pairs of the grid, row-major."""
        return [(float(d), float(z)) for d in self.unit_sizes() for z in self.distances]

    @property
    def num_points(self) -> int:
        return len(self.unit_sizes_in_wavelengths) * len(self.distances)


def diffraction_spread_units(wavelength: float, unit_size: float, distance: float) -> float:
    """Half-cone diffraction spread at the next layer, in units of ``unit_size``.

    A single diffraction unit of size ``d`` diffracts light into a cone of
    half angle ``theta`` with ``sin(theta) ~= lambda / (2 d)``; after a
    distance ``D`` the illuminated radius is ``D tan(theta)``, i.e. the
    light from one unit reaches roughly ``D tan(theta) / d`` neighbouring
    units.  This connectivity number is the quantity the half-cone theory
    says must be "right" for a DONN to learn.
    """
    if unit_size <= 0 or distance <= 0 or wavelength <= 0:
        raise ValueError("wavelength, unit_size and distance must be positive")
    sine = min(1.0, wavelength / (2.0 * unit_size))
    theta = np.arcsin(sine)
    spread = distance * np.tan(theta)
    return float(spread / unit_size)


def physics_prior_accuracy(
    wavelength: float,
    unit_size: float,
    distance: float,
    system_size: int = 200,
    best_accuracy: float = 0.97,
    floor_accuracy: float = 0.10,
    optimal_spread: float = 30.0,
    tolerance_decades: float = 0.55,
) -> float:
    """Analytical accuracy surrogate over the (lambda, d, D) design space.

    The surrogate is a log-normal bump in the connectivity number returned
    by :func:`diffraction_spread_units`, clipped from below at chance
    level, and attenuated when the spread exceeds the system aperture
    (light walks off the edge of the simulated window).
    """
    spread = diffraction_spread_units(wavelength, unit_size, distance)
    if spread <= 0:
        return floor_accuracy
    deviation = np.log10(spread / optimal_spread) / tolerance_decades
    score = np.exp(-0.5 * deviation**2)
    # Penalise spreads so large that the cone leaves the simulated aperture.
    aperture_units = system_size / 2.0
    if spread > aperture_units:
        score *= aperture_units / spread
    return float(floor_accuracy + (best_accuracy - floor_accuracy) * score)


def evaluate_design_point(
    config: DONNConfig,
    train_images: np.ndarray,
    train_labels: np.ndarray,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    epochs: int = 2,
    learning_rate: float = 0.3,
    batch_size: int = 32,
    amplitude_target: float = 1.0,
) -> float:
    """Ground-truth evaluation: train a DONN with this config and report accuracy."""
    # Imported lazily to keep the DSE package import-light.
    from repro.baselines.regularization import calibrate_amplitude_factor
    from repro.models.donn import DONN
    from repro.train.loop import Trainer

    model = DONN(config)
    gamma = calibrate_amplitude_factor(model, train_images[: min(8, len(train_images))], target=amplitude_target)
    model = DONN(config.with_updates(amplitude_factor=gamma))
    trainer = Trainer(model, num_classes=config.num_classes, learning_rate=learning_rate, batch_size=batch_size)
    result = trainer.fit(train_images, train_labels, epochs=epochs, test_images=test_images, test_labels=test_labels)
    return result.final_test_accuracy


def sweep_design_space(
    space: DesignSpace,
    evaluator: Optional[Callable[[float, float, float], float]] = None,
    system_size: int = 200,
) -> List[DesignPoint]:
    """Score every grid point of a design space.

    ``evaluator(wavelength, unit_size, distance) -> accuracy`` defaults to
    the physics prior; pass a training-based closure for ground truth.
    """
    evaluator = evaluator or (
        lambda wl, d, z: physics_prior_accuracy(wl, d, z, system_size=system_size)
    )
    points = []
    for unit_size, distance in space.grid():
        accuracy = float(evaluator(space.wavelength, unit_size, distance))
        points.append(
            DesignPoint(wavelength=space.wavelength, unit_size=unit_size, distance=distance, accuracy=accuracy)
        )
    return points
